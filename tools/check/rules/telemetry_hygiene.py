"""Telemetry hot-path hygiene.

Observability code runs on every request and inside lock-sensitive
teardown paths, so it must never itself block:

- A span class's ``__exit__`` runs on the hot path of every traced
  operation, sometimes while the caller still holds locks.  It must not
  acquire locks (``with``-statements, ``.acquire()``) or perform I/O
  (``open``/``print``/``.write``/``.flush``/``.send``/``.sendall``/
  ``.recv``) — a GIL-atomic ring append is the budget.
- Gauge callbacks registered via ``.set_function(...)`` are invoked
  during every scrape while the registry lock is held.  A lambda passed
  there must stay a pure read: no ``with`` blocks, and only allowlisted
  bare builtins called (``len``, ``int``, ...).  Anything richer (slot
  iteration, dict lookups with defaults) belongs in a named reader
  function where the non-trivial body is visible in review.
- Any class with a ``_resolve`` routing table (the HTTP handler shape
  ``route-auth`` already polices) must also record a request metric on
  every route: each handler ``_resolve`` returns needs the ``@measured``
  decorator, or the route silently vanishes from ``/metrics``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Project, SourceModule, Violation, expr_key

#: Bare builtins a gauge lambda may call; everything else must move to a
#: named reader ``def`` where reviewers see the body.
ALLOWED_LAMBDA_CALLS = {
    "len",
    "int",
    "float",
    "sum",
    "min",
    "max",
    "bool",
    "abs",
    "getattr",
}

#: Attribute calls that block (I/O or locking) — forbidden in __exit__.
BLOCKING_ATTR_CALLS = {
    "acquire",
    "write",
    "flush",
    "send",
    "sendall",
    "recv",
    "stats",
}

#: Bare-name calls that block — forbidden in __exit__.
BLOCKING_NAME_CALLS = {"open", "print"}


class TelemetryHygieneRule:
    id = "telemetry-hygiene"
    summary = (
        "span __exit__ and gauge callbacks must be non-blocking; every "
        "_resolve() route handler must be @measured"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Violation]:
        out: list[Violation] = []
        for classdef in module.class_defs():
            if classdef.name == "Span" or classdef.name.endswith("Span"):
                out.extend(self._check_span_exit(module, classdef))
            out.extend(self._check_measured(module, classdef))
        out.extend(self._check_gauge_lambdas(module))
        return out

    # ------------------------------------------------------------------
    def _check_span_exit(
        self, module: SourceModule, classdef: ast.ClassDef
    ) -> Iterable[Violation]:
        for stmt in classdef.body:
            if (
                not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                or stmt.name != "__exit__"
            ):
                continue
            for node in ast.walk(stmt):
                problem = None
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    problem = "acquires a lock (with-statement)"
                elif isinstance(node, ast.Call):
                    if (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr in BLOCKING_ATTR_CALLS
                    ):
                        problem = f"calls blocking '.{node.func.attr}()'"
                    elif (
                        isinstance(node.func, ast.Name)
                        and node.func.id in BLOCKING_NAME_CALLS
                    ):
                        problem = f"calls blocking '{node.func.id}()'"
                if problem:
                    yield Violation(
                        self.id,
                        module.display,
                        node.lineno,
                        node.col_offset,
                        f"'{classdef.name}.__exit__' {problem}; span exit "
                        "runs on every traced hot path and may execute "
                        "while callers hold locks",
                    )

    # ------------------------------------------------------------------
    def _check_gauge_lambdas(
        self, module: SourceModule
    ) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "set_function"
            ):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if not isinstance(arg, ast.Lambda):
                    continue
                for sub in ast.walk(arg.body):
                    problem = None
                    if isinstance(sub, (ast.With, ast.AsyncWith)):
                        problem = "acquires a lock (with-statement)"
                    elif isinstance(sub, ast.Call):
                        if not (
                            isinstance(sub.func, ast.Name)
                            and sub.func.id in ALLOWED_LAMBDA_CALLS
                        ):
                            called = expr_key(sub.func) or "<expr>"
                            problem = (
                                f"calls '{called}()' (only "
                                f"{sorted(ALLOWED_LAMBDA_CALLS)} allowed)"
                            )
                    if problem:
                        yield Violation(
                            self.id,
                            module.display,
                            sub.lineno,
                            sub.col_offset,
                            f"gauge callback lambda {problem}; scrape-time "
                            "callbacks run under the registry lock — move "
                            "non-trivial reads to a named reader function",
                        )

    # ------------------------------------------------------------------
    def _check_measured(
        self, module: SourceModule, classdef: ast.ClassDef
    ) -> Iterable[Violation]:
        methods = {
            stmt.name: stmt
            for stmt in classdef.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        resolve = methods.get("_resolve")
        if resolve is None:
            return
        referenced: set[str] = set()
        for node in ast.walk(resolve):
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                    ):
                        referenced.add(sub.attr)
        for name in sorted(referenced):
            handler = methods.get(name)
            if handler is None:
                continue
            decorators = {
                (expr_key(d) or "").rsplit(".", 1)[-1]
                for d in handler.decorator_list
            }
            if "measured" in decorators:
                continue
            yield Violation(
                self.id,
                module.display,
                handler.lineno,
                handler.col_offset,
                f"route handler '{classdef.name}.{name}' is returned by "
                "_resolve() but carries no @measured decorator — the "
                "route would be invisible in /metrics",
            )
