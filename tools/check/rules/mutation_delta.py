"""Mutation-delta completeness for dataframe classes.

Any method of a ``DataFrame``-derived class that writes the frame's
internal state (``_data`` / ``_column_order`` / ``_index`` — by
assignment, deletion, or a mutating container call) must notify observers
with an explicit column-level delta: ``self._notify_mutation(op, delta)``
with a non-None delta argument.  A silent write leaves the computation
cache, the precompute engine, and the versioned store reasoning about
data that already moved.

Constructors and the internal wrap/expiry helpers are exempt — they run
before the frame is shared or *are* the notification path.  Writes
through a local alias (``target = self; target._data[...] = ...``) are an
accepted false negative; the repo's mutators all write ``self.*``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Project, SourceModule, Violation

WATCHED = {"_data", "_column_order", "_index"}
MUTATOR_METHODS = {
    "append",
    "clear",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
}
EXEMPT_METHODS = {
    "__init__",
    "_expire",
    "_init_derived",
    "_notify_mutation",
    "_setup_lux_state",
    "_wrap",
}


def _flatten_targets(target: ast.expr) -> Iterable[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    else:
        yield target


def _is_watched_self(expr: ast.expr) -> bool:
    """True for ``self.<watched>`` or a subscript of it."""
    if isinstance(expr, ast.Subscript):
        return _is_watched_self(expr.value)
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in WATCHED
    )


def _writes(method: ast.AST) -> list[ast.AST]:
    hits: list[ast.AST] = []
    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                for leaf in _flatten_targets(target):
                    if _is_watched_self(leaf):
                        hits.append(node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if _is_watched_self(target):
                    hits.append(node)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_METHODS
            and _is_watched_self(node.func.value)
        ):
            hits.append(node)
    return hits


def _notifies_with_delta(method: ast.AST) -> bool:
    for node in ast.walk(method):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
            and node.func.attr == "_notify_mutation"
        ):
            continue
        delta: ast.expr | None = None
        if len(node.args) >= 2:
            delta = node.args[1]
        else:
            for keyword in node.keywords:
                if keyword.arg == "delta":
                    delta = keyword.value
        if delta is not None and not (
            isinstance(delta, ast.Constant) and delta.value is None
        ):
            return True
    return False


class MutationDeltaRule:
    id = "mutation-delta"
    summary = (
        "DataFrame methods writing internal state must call "
        "_notify_mutation with a Delta"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Violation]:
        out: list[Violation] = []
        for classdef in module.class_defs():
            if not project.derives_from(classdef.name, "DataFrame"):
                continue
            for stmt in classdef.body:
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if stmt.name in EXEMPT_METHODS:
                    continue
                writes = _writes(stmt)
                if not writes or _notifies_with_delta(stmt):
                    continue
                first = min(writes, key=lambda n: n.lineno)
                out.append(
                    Violation(
                        self.id,
                        module.display,
                        first.lineno,
                        first.col_offset,
                        f"'{classdef.name}.{stmt.name}' mutates frame state "
                        "without calling self._notify_mutation(op, delta) "
                        "with a column-level Delta",
                    )
                )
        return out
