"""Unstable identity keying: no ``id(...)`` as a dict/cache key.

``id()`` is recycled the moment its object is collected, so a raw-id key
silently aliases a cache entry onto an unrelated object (the PR-1 cache
bug).  The rule flags ``id(...)`` used directly as a subscript key, as
the key argument of ``.get``/``.pop``/``.setdefault``, or in an
``in``/``not in`` membership test — and, per scope, any
``name = id(...)`` whose name is later used as a key the same way.

Legitimate uses pair the id key with a weakref that both validates
identity on every read and evicts the entry on collection; those sites
carry a ``check: ignore[unstable-key]`` with that justification.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Project, SourceModule, Violation, walk_scope

KEY_METHODS = {"get", "pop", "setdefault"}

_SCOPE_NODES = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


class UnstableKeyRule:
    id = "unstable-key"
    summary = "no id(...) used as a dict/cache key (ids are recycled)"

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Violation]:
        out: list[Violation] = []
        scopes = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, _SCOPE_NODES)
        ]
        for scope in scopes:
            out.extend(self._check_scope(module, scope))
        return out

    def _check_scope(
        self, module: SourceModule, scope: ast.AST
    ) -> list[Violation]:
        tainted: dict[str, ast.AST] = {}
        for node in walk_scope(scope):
            if isinstance(node, ast.Assign) and _is_id_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted[target.id] = node

        direct: list[ast.AST] = []
        used_tainted: set[str] = set()

        def inspect_key_expr(expr: ast.AST) -> None:
            for sub in ast.walk(expr):
                if _is_id_call(sub):
                    direct.append(sub)
                elif isinstance(sub, ast.Name) and sub.id in tainted:
                    used_tainted.add(sub.id)

        for node in walk_scope(scope):
            if isinstance(node, ast.Subscript):
                inspect_key_expr(node.slice)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in KEY_METHODS
                and node.args
            ):
                inspect_key_expr(node.args[0])
            elif isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
            ):
                inspect_key_expr(node.left)

        out: list[Violation] = []
        seen: set[tuple[int, int]] = set()
        for hit in direct:
            anchor = (hit.lineno, hit.col_offset)
            if anchor in seen:
                continue
            seen.add(anchor)
            out.append(
                Violation(
                    self.id,
                    module.display,
                    hit.lineno,
                    hit.col_offset,
                    "id(...) used directly as a mapping key; ids are "
                    "recycled after collection (key on a weakref-validated "
                    "identity instead)",
                )
            )
        for name in sorted(used_tainted):
            assign = tainted[name]
            out.append(
                Violation(
                    self.id,
                    module.display,
                    assign.lineno,
                    assign.col_offset,
                    f"'{name}' holds id(...) and is used as a mapping key; "
                    "ids are recycled after collection (key on a weakref-"
                    "validated identity instead)",
                )
            )
        return out
