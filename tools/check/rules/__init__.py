"""Rule registry: one instance per rule, in reporting order."""

from .config_mutation import ConfigMutationRule
from .footprint import FootprintRule
from .guarded_by import GuardedByRule, ResultUnderLockRule
from .mutation_delta import MutationDeltaRule
from .route_auth import RouteAuthRule
from .sql_hygiene import SqlHygieneRule
from .telemetry_hygiene import TelemetryHygieneRule
from .unstable_key import UnstableKeyRule

ALL_RULES = [
    GuardedByRule(),
    ResultUnderLockRule(),
    MutationDeltaRule(),
    FootprintRule(),
    ConfigMutationRule(),
    SqlHygieneRule(),
    UnstableKeyRule(),
    RouteAuthRule(),
    TelemetryHygieneRule(),
]

__all__ = ["ALL_RULES"]
