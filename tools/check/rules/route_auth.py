"""Route authentication coverage for the HTTP API.

Any class with a ``_resolve`` routing method (the dispatch table shape
``http_api._Handler`` uses) must declare an authentication posture on
every route handler ``_resolve`` can return: either ``@authenticated``
(bearer-token check runs before the handler) or ``@public`` (explicitly
reviewed as unauthenticated, e.g. ``/healthz``).  An undecorated handler
is a route that silently bypasses auth — exactly the regression this
rule exists to stop.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Project, SourceModule, Violation, expr_key

AUTH_DECORATORS = {"authenticated", "public"}


class RouteAuthRule:
    id = "route-auth"
    summary = (
        "every handler a _resolve() routing table returns must be "
        "@authenticated or @public"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Violation]:
        out: list[Violation] = []
        for classdef in module.class_defs():
            methods = {
                stmt.name: stmt
                for stmt in classdef.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            resolve = methods.get("_resolve")
            if resolve is None:
                continue
            referenced: set[str] = set()
            for node in ast.walk(resolve):
                if isinstance(node, ast.Return) and node.value is not None:
                    for sub in ast.walk(node.value):
                        if (
                            isinstance(sub, ast.Attribute)
                            and isinstance(sub.value, ast.Name)
                            and sub.value.id == "self"
                        ):
                            referenced.add(sub.attr)
            for name in sorted(referenced):
                handler = methods.get(name)
                if handler is None:
                    continue
                decorators = {
                    (expr_key(d) or "").rsplit(".", 1)[-1]
                    for d in handler.decorator_list
                }
                if decorators & AUTH_DECORATORS:
                    continue
                out.append(
                    Violation(
                        self.id,
                        module.display,
                        handler.lineno,
                        handler.col_offset,
                        f"route handler '{classdef.name}.{name}' is returned "
                        "by _resolve() but carries neither @authenticated "
                        "nor @public",
                    )
                )
        return out
