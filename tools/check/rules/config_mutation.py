"""Overlay-only config: no direct mutation of the config singleton.

Sessions, benchmarks, and tests must scope settings with
``config_overlay(...)`` / ``thread_overlay(...)``; assigning
``config.field = ...`` (or ``setattr(config, ...)``) leaks state across
threads and sessions — exactly the clobbering the overlay machinery was
built to end.  Only ``core/config.py`` itself (the overlay internals and
``apply_condition``/``restore``) may touch the singleton's base state.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Project, SourceModule, Violation

ALLOWED_SUFFIXES = ("core/config.py",)


def _is_config(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id == "config"
    if isinstance(expr, ast.Attribute):
        return expr.attr == "config"
    return False


class ConfigMutationRule:
    id = "config-mutation"
    summary = (
        "no 'config.x = ...' outside core/config.py; use config_overlay()"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Violation]:
        if module.display.endswith(ALLOWED_SUFFIXES):
            return []
        out: list[Violation] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute) and _is_config(
                        target.value
                    ):
                        out.append(
                            Violation(
                                self.id,
                                module.display,
                                node.lineno,
                                node.col_offset,
                                f"direct mutation 'config.{target.attr} = ...'"
                                " leaks across threads/sessions; use "
                                "config_overlay()/thread_overlay()",
                            )
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "setattr"
                and node.args
                and _is_config(node.args[0])
            ):
                out.append(
                    Violation(
                        self.id,
                        module.display,
                        node.lineno,
                        node.col_offset,
                        "setattr(config, ...) mutates the shared singleton; "
                        "use config_overlay()/thread_overlay()",
                    )
                )
        return out
