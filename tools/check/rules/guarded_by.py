"""Lock discipline: ``guarded-by`` annotations and result-under-lock.

``guarded-by``
    A field initialized with a trailing ``# guarded-by: <lock>`` comment
    (``self.X = ...`` in a method, or a module-global assignment) may only
    be read or written while the declared lock is held: lexically inside
    ``with self.<lock>`` / ``with <lock>``, or inside a function whose
    ``def`` line carries ``# requires-lock: <lock>``.  ``__init__`` is
    exempt for instance fields (no concurrent access before construction
    completes), and module-level initialization is exempt for globals.
    Closures do NOT inherit the enclosing function's locks — they may run
    later on another thread (the pool's done-callback bug).

``result-under-lock``
    No blocking ``.result()`` call while any lock is held (lexically
    inside a ``with`` over a lock-ish expression, or in a
    ``requires-lock`` function).  The shared worker pool is bounded;
    blocking on a future while serializing other workers behind a lock is
    the classic self-deadlock shape.

Cross-object accesses (``other.field``) are deliberately out of scope:
the checker reasons about ``self`` and module globals only, which keeps
it exact where it claims coverage.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Project, SourceModule, Violation, expr_key


def _is_lockish(key: str) -> bool:
    return "lock" in key.rsplit(".", 1)[-1].lower()


def _assign_targets(node: ast.AST) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return [node.target]
    return []


def _module_guards(module: SourceModule) -> dict[str, str]:
    """Module-global name -> lock, from annotated top-level assignments."""
    guards: dict[str, str] = {}
    for node in module.tree.body:
        lock = module.guard_lines.get(node.lineno)
        if lock is None:
            continue
        for target in _assign_targets(node):
            if isinstance(target, ast.Name):
                guards[target.id] = lock
    return guards


def _class_guards(classdef: ast.ClassDef, module: SourceModule) -> dict[str, str]:
    """Instance-field name -> lock, from annotated ``self.X = ...`` lines."""
    guards: dict[str, str] = {}
    for node in ast.walk(classdef):
        lock = module.guard_lines.get(getattr(node, "lineno", -1))
        if lock is None:
            continue
        for target in _assign_targets(node):
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                guards[target.attr] = lock
    return guards


class GuardedByRule:
    id = "guarded-by"
    summary = (
        "fields/globals annotated '# guarded-by: <lock>' must only be "
        "accessed under that lock"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Violation]:
        out: list[Violation] = []
        guards = _module_guards(module)
        if guards:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Name) or node.id not in guards:
                    continue
                func = module.nearest_function(node)
                if func is None:
                    continue  # module-level initialization
                lock = guards[node.id]
                if lock in module.requires_of(func):
                    continue
                if lock in module.held_locks(node):
                    continue
                out.append(
                    Violation(
                        self.id,
                        module.display,
                        node.lineno,
                        node.col_offset,
                        f"global '{node.id}' is guarded by '{lock}' but "
                        f"accessed outside 'with {lock}'",
                    )
                )
        for classdef in module.class_defs():
            field_guards = _class_guards(classdef, module)
            if not field_guards:
                continue
            for node in ast.walk(classdef):
                if not (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in field_guards
                ):
                    continue
                func = module.nearest_function(node)
                if func is None:
                    continue  # class-body level
                if (
                    isinstance(func, ast.FunctionDef)
                    and func.name == "__init__"
                    and module.parent(func) is classdef
                ):
                    continue
                lock = field_guards[node.attr]
                if lock in module.requires_of(func):
                    continue
                if f"self.{lock}" in module.held_locks(node):
                    continue
                out.append(
                    Violation(
                        self.id,
                        module.display,
                        node.lineno,
                        node.col_offset,
                        f"'self.{node.attr}' is guarded by 'self.{lock}' "
                        f"but accessed outside 'with self.{lock}'",
                    )
                )
        return out


class ResultUnderLockRule:
    id = "result-under-lock"
    summary = "no blocking Future.result() call while holding a lock"

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Violation]:
        out: list[Violation] = []
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "result"
            ):
                continue
            held = {k for k in module.held_locks(node) if _is_lockish(k)}
            func = module.nearest_function(node)
            held |= module.requires_of(func)
            if not held:
                continue
            receiver = expr_key(node.func.value) or "<expr>"
            out.append(
                Violation(
                    self.id,
                    module.display,
                    node.lineno,
                    node.col_offset,
                    f"blocking '{receiver}.result()' while holding "
                    f"{sorted(held)} can deadlock the shared pool",
                )
            )
        return out
