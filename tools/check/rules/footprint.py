"""Footprint coverage for recommendation actions.

Every concrete ``Action`` subclass must either define ``footprint()``
(itself or via an ancestor below ``Action``) or carry an explicit
``footprint_unknown = True`` class attribute.  The base class's default
(unknown footprint: depends on everything) is deliberately NOT enough —
silently inheriting it makes the incremental precompute engine rerun the
action on every mutation, and that cost must be a visible, reviewed
decision, not an accident of omission.

A defined ``footprint()`` must additionally decide *candidate*
granularity: every ``Footprint(...)`` it constructs must pass the
``candidates=`` keyword — a list of entries for candidate-level reruns,
or an explicit ``candidates=None`` meaning the whole action reruns as a
unit (required for actions that override ``generate()``, whose partial
reruns the engine cannot stitch).  Omitting the keyword silently pins the
action to whole-action granularity, re-imposing the incremental floor the
candidate API exists to remove — same policy, one level finer.

Classes with their own abstract methods are treated as bases and skipped.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Project, SourceModule, Violation, expr_key

ABSTRACT_DECORATORS = {"abstractmethod", "abstractproperty"}


def _is_abstract(classdef: ast.ClassDef) -> bool:
    for stmt in classdef.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in stmt.decorator_list:
                key = expr_key(decorator)
                if key and key.rsplit(".", 1)[-1] in ABSTRACT_DECORATORS:
                    return True
    return False


def _footprint_method(classdef: ast.ClassDef) -> "ast.FunctionDef | None":
    for stmt in classdef.body:
        if (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == "footprint"
        ):
            return stmt
    return None


def _undecided_footprint_calls(method: ast.AST) -> "list[ast.Call]":
    """``Footprint(...)`` constructions missing the ``candidates=`` keyword."""
    out: list[ast.Call] = []
    for node in ast.walk(method):
        if not isinstance(node, ast.Call):
            continue
        key = expr_key(node.func)
        if key is None or key.rsplit(".", 1)[-1] != "Footprint":
            continue
        if not any(kw.arg == "candidates" for kw in node.keywords):
            out.append(node)
    return out


class FootprintRule:
    id = "footprint"
    summary = (
        "concrete Action subclasses must define footprint() (deciding "
        "candidate granularity via candidates=) or set "
        "footprint_unknown = True"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Violation]:
        out: list[Violation] = []
        for classdef in module.class_defs():
            name = classdef.name
            if name == "Action" or not project.derives_from(name, "Action"):
                continue
            if _is_abstract(classdef):
                continue
            unknown = project.inherits_member(
                name, "footprint_unknown", stop="Action"
            )
            if project.inherits_member(name, "footprint", stop="Action"):
                # Defined footprints must decide candidate granularity in
                # every Footprint they construct (checked on the defining
                # class so inheritors are covered transitively).
                method = _footprint_method(classdef)
                if method is not None and not unknown:
                    for call in _undecided_footprint_calls(method):
                        out.append(
                            Violation(
                                self.id,
                                module.display,
                                call.lineno,
                                call.col_offset,
                                f"action '{name}' builds a Footprint without "
                                "the candidates= keyword; pass per-candidate "
                                "entries (or an explicit candidates=None for "
                                "whole-action granularity)",
                            )
                        )
                continue
            if unknown:
                continue
            out.append(
                Violation(
                    self.id,
                    module.display,
                    classdef.lineno,
                    classdef.col_offset,
                    f"action '{name}' neither defines footprint() nor sets "
                    "footprint_unknown = True; the incremental engine would "
                    "silently rerun it on every mutation",
                )
            )
        return out
