"""Footprint coverage for recommendation actions.

Every concrete ``Action`` subclass must either define ``footprint()``
(itself or via an ancestor below ``Action``) or carry an explicit
``footprint_unknown = True`` class attribute.  The base class's default
(unknown footprint: depends on everything) is deliberately NOT enough —
silently inheriting it makes the incremental precompute engine rerun the
action on every mutation, and that cost must be a visible, reviewed
decision, not an accident of omission.

Classes with their own abstract methods are treated as bases and skipped.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Project, SourceModule, Violation, expr_key

ABSTRACT_DECORATORS = {"abstractmethod", "abstractproperty"}


def _is_abstract(classdef: ast.ClassDef) -> bool:
    for stmt in classdef.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in stmt.decorator_list:
                key = expr_key(decorator)
                if key and key.rsplit(".", 1)[-1] in ABSTRACT_DECORATORS:
                    return True
    return False


class FootprintRule:
    id = "footprint"
    summary = (
        "concrete Action subclasses must define footprint() or set "
        "footprint_unknown = True"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Violation]:
        out: list[Violation] = []
        for classdef in module.class_defs():
            name = classdef.name
            if name == "Action" or not project.derives_from(name, "Action"):
                continue
            if _is_abstract(classdef):
                continue
            if project.inherits_member(name, "footprint", stop="Action"):
                continue
            if project.inherits_member(name, "footprint_unknown", stop="Action"):
                continue
            out.append(
                Violation(
                    self.id,
                    module.display,
                    classdef.lineno,
                    classdef.col_offset,
                    f"action '{name}' neither defines footprint() nor sets "
                    "footprint_unknown = True; the incremental engine would "
                    "silently rerun it on every mutation",
                )
            )
        return out
