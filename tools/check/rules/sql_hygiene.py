"""SQL string hygiene: no ad-hoc interpolation into SQL text.

Building SQL by f-string, ``%`` formatting, ``str.format``, or ``+``
concatenation is only allowed inside the two executor modules that own
the quoting helpers (``sql_compile.py`` builds every fragment through
``quote()``/``sql_literal()``; ``sql_exec.py`` composes those fragments).
Anywhere else, a string literal containing SQL keywords combined with
runtime values is flagged — the injection-shaped bug class, and also the
place where unquoted identifiers silently break on exotic column names.

Detection is keyword-based on the *literal* parts (uppercase SQL verbs),
so JSON/vega-lite/string templating elsewhere in the repo stays out of
scope.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ..engine import Project, SourceModule, Violation

ALLOWED_SUFFIXES = ("sql_compile.py", "sql_exec.py")

SQL_RE = re.compile(
    r"\b(SELECT|INSERT INTO|DELETE FROM|CREATE TABLE|DROP TABLE|"
    r"UNION ALL|GROUP BY|ORDER BY|WHERE)\b"
)


def _sqlish(value: object) -> bool:
    return isinstance(value, str) and SQL_RE.search(value) is not None


def _binop_leaves(node: ast.expr) -> Iterable[ast.expr]:
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        yield from _binop_leaves(node.left)
        yield from _binop_leaves(node.right)
    else:
        yield node


class SqlHygieneRule:
    id = "sql-hygiene"
    summary = (
        "SQL text may only be composed via the quoting helpers in "
        "sql_compile.py"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Violation]:
        if module.display.endswith(ALLOWED_SUFFIXES):
            return []
        out: list[Violation] = []

        def flag(node: ast.expr, how: str) -> None:
            out.append(
                Violation(
                    self.id,
                    module.display,
                    node.lineno,
                    node.col_offset,
                    f"SQL text composed via {how}; route identifiers and "
                    "literals through repro.core.executor.sql_compile",
                )
            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.JoinedStr):
                has_values = any(
                    isinstance(part, ast.FormattedValue) for part in node.values
                )
                has_sql = any(
                    isinstance(part, ast.Constant) and _sqlish(part.value)
                    for part in node.values
                )
                if has_values and has_sql:
                    flag(node, "f-string interpolation")
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                if isinstance(node.left, ast.Constant) and _sqlish(
                    node.left.value
                ):
                    flag(node, "%-formatting")
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
                parent = module.parent(node)
                if isinstance(parent, ast.BinOp) and isinstance(
                    parent.op, ast.Add
                ):
                    continue  # only flag the outermost chain once
                leaves = list(_binop_leaves(node))
                has_sql = any(
                    isinstance(leaf, ast.Constant) and _sqlish(leaf.value)
                    for leaf in leaves
                )
                has_values = any(
                    not isinstance(leaf, ast.Constant) for leaf in leaves
                )
                if has_sql and has_values:
                    flag(node, "'+' concatenation")
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "format"
                and isinstance(node.func.value, ast.Constant)
                and _sqlish(node.func.value.value)
            ):
                flag(node, "str.format()")
        return out
