"""Repo-specific static analysis (``python -m tools.check``).

Enforces the concurrency and invariant contracts the codebase depends on
but no general-purpose linter knows about: guarded-by lock discipline,
mutation-delta completeness, action footprint coverage, overlay-only
config mutation, SQL string hygiene, unstable identity keying, and route
authentication.  See ``tools/check/README.md`` for the rule catalogue and
the annotation/suppression conventions.
"""

from .engine import Report, Violation, run_paths

__all__ = ["Report", "Violation", "run_paths"]
