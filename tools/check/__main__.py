"""CLI for the repo checker: ``python -m tools.check [paths...]``.

Exit codes: 0 clean, 1 violations found, 2 parse/usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .engine import run_paths
from .rules import ALL_RULES


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools.check",
        description=(
            "AST-based checker for this repo's concurrency and invariant "
            "contracts (guarded-by locks, mutation deltas, footprints, "
            "overlay-only config, SQL hygiene, identity keying, route auth)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--json",
        dest="json_out",
        metavar="FILE",
        help="write a machine-readable report to FILE",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the summary line"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id:18} {rule.summary}")
        return 0

    select = None
    if args.select:
        select = {r.strip() for r in args.select.split(",") if r.strip()}
        known = {rule.id for rule in ALL_RULES}
        unknown = sorted(select - known)
        if unknown:
            print(
                f"tools.check: unknown rule(s) {unknown}; "
                f"known: {sorted(known)}",
                file=sys.stderr,
            )
            return 2

    report = run_paths(args.paths, select=select)
    for error in report.errors:
        print(f"tools.check: error: {error}", file=sys.stderr)
    for violation in report.violations:
        print(violation.render())
    if not args.quiet:
        print(
            f"tools.check: {len(report.violations)} violation(s), "
            f"{report.suppressed} suppressed, "
            f"{report.files_checked} file(s) checked"
        )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if report.errors:
        return 2
    return 1 if report.violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
