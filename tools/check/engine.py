"""Core engine for the repo's static analyzer.

The engine owns everything rule-independent: loading and parsing source
files, the comment conventions (suppressions and lock annotations), parent
maps and scope queries over the AST, the cross-file class index, and the
runner that applies the registered rules and folds suppressions into a
:class:`Report`.

Comment conventions (scanned line-by-line from the raw source):

- ``check: ignore[rule-a, rule-b]`` inside a comment suppresses those
  rules on that line; a comment-only line suppresses the line below it
  too, so justifications fit without blowing the line length.
- ``guarded-by: <lock>`` on a field- or global-initializing assignment
  declares that every read/write of that name must hold ``<lock>``
  (``with self.<lock>`` for instance fields, ``with <lock>`` for module
  globals).
- ``requires-lock: <lock>`` on a ``def`` line declares that callers hold
  ``<lock>`` around every call, exempting the function body itself.

Scope semantics: a ``with`` block protects only code lexically inside it
*within the same function*.  Nested ``def``/``lambda`` bodies deliberately
do NOT inherit the enclosing function's locks — closures may run later on
another thread (this is exactly how the pool's done-callback race slipped
in), so they must take the lock themselves.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

__all__ = [
    "ClassInfo",
    "Project",
    "Report",
    "SourceModule",
    "Violation",
    "expr_key",
    "run_paths",
    "walk_scope",
]

SUPPRESS_RE = re.compile(r"#.*?\bcheck:\s*ignore\[([^\]]+)\]")
GUARD_RE = re.compile(r"#.*?\bguarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
REQUIRES_RE = re.compile(r"#.*?\brequires-lock:\s*([A-Za-z_][A-Za-z0-9_]*)")

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass(frozen=True)
class Violation:
    """One rule hit, anchored to a source line."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule}: {self.message}"


def expr_key(expr: ast.AST) -> Optional[str]:
    """A canonical dotted key for a with-item/lock expression.

    ``self._lock`` -> ``"self._lock"``, ``_LOCK`` -> ``"_LOCK"``,
    ``slot.lock`` -> ``"slot.lock"``; calls and subscripts key on their
    base so ``locks[i]`` and ``acquire_lock()`` still look lock-ish.
    """
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = expr_key(expr.value)
        return f"{base}.{expr.attr}" if base else expr.attr
    if isinstance(expr, ast.Call):
        return expr_key(expr.func)
    if isinstance(expr, ast.Subscript):
        base = expr_key(expr.value)
        return f"{base}[]" if base else None
    return None


def walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested functions/lambdas.

    Used by rules whose reasoning is per-scope (taint tracking, lock
    holding): a nested closure is its own scope with its own rules.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _FUNCTION_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


class SourceModule:
    """One parsed source file plus its comment annotations."""

    def __init__(self, path: Path, display: str, text: str) -> None:
        self.path = path
        self.display = display
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        #: line -> rules suppressed on that line.
        self.suppressions: dict[int, set[str]] = {}
        #: line -> lock name a field/global initialized there is guarded by.
        self.guard_lines: dict[int, str] = {}
        #: line -> lock name a ``def`` on that line requires from callers.
        self.requires_lines: dict[int, str] = {}
        for lineno, line in enumerate(self.lines, start=1):
            suppress = SUPPRESS_RE.search(line)
            if suppress:
                rules = {
                    r.strip() for r in suppress.group(1).split(",") if r.strip()
                }
                self.suppressions.setdefault(lineno, set()).update(rules)
                if line.lstrip().startswith("#"):
                    # Comment-only line: the suppression covers the next
                    # line (where the flagged code actually lives).
                    self.suppressions.setdefault(lineno + 1, set()).update(rules)
            guard = GUARD_RE.search(line)
            if guard:
                self.guard_lines[lineno] = guard.group(1)
            requires = REQUIRES_RE.search(line)
            if requires:
                self.requires_lines[lineno] = requires.group(1)

    # ------------------------------------------------------------------
    # Scope queries
    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def nearest_function(self, node: ast.AST) -> Optional[ast.AST]:
        """Innermost enclosing function/lambda, or None at module level."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, _FUNCTION_NODES):
                return ancestor
        return None

    def held_locks(self, node: ast.AST) -> set[str]:
        """Keys of every ``with`` item held at ``node``.

        Stops at the innermost function boundary: a closure does not
        inherit the locks of the function that defines it (it may run
        later, on another thread, with no lock held at all).
        """
        held: set[str] = set()
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    key = expr_key(item.context_expr)
                    if key is not None:
                        held.add(key)
            if isinstance(ancestor, _FUNCTION_NODES):
                break
        return held

    def requires_of(self, func: Optional[ast.AST]) -> set[str]:
        """Locks a function's ``requires-lock`` annotation declares held."""
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            lock = self.requires_lines.get(func.lineno)
            if lock is not None:
                return {lock}
        return set()

    def class_defs(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node


@dataclass
class ClassInfo:
    """Cross-file class facts: bases by name, members defined locally."""

    name: str
    module: str
    lineno: int
    bases: list[str] = field(default_factory=list)
    members: set[str] = field(default_factory=set)
    node: Optional[ast.ClassDef] = None


class Project:
    """All modules under analysis plus a name-keyed class index.

    Resolution is by *name*, not import graph: the repo has no duplicate
    class names across its hierarchy roots, and name-level resolution
    keeps the analyzer independent of import-time side effects.
    """

    def __init__(self, modules: list[SourceModule]) -> None:
        self.modules = modules
        self.classes: dict[str, ClassInfo] = {}
        for module in modules:
            for node in module.class_defs():
                info = ClassInfo(node.name, module.display, node.lineno, node=node)
                for base in node.bases:
                    key = expr_key(base)
                    if key is not None:
                        info.bases.append(key.rsplit(".", 1)[-1])
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info.members.add(stmt.name)
                    elif isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                info.members.add(target.id)
                    elif isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        info.members.add(stmt.target.id)
                self.classes.setdefault(node.name, info)

    def derives_from(self, name: str, root: str) -> bool:
        """True when class ``name`` is ``root`` or transitively extends it."""
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current == root:
                return True
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is not None:
                stack.extend(info.bases)
        return False

    def inherits_member(
        self, name: str, member: str, stop: Optional[str] = None
    ) -> bool:
        """Does ``name`` (or an ancestor below ``stop``) define ``member``?"""
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen or current == stop:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if member in info.members:
                return True
            stack.extend(info.bases)
        return False


@dataclass
class Report:
    """Outcome of one analyzer run."""

    violations: list[Violation]
    suppressed: int
    files_checked: int
    errors: list[str]

    @property
    def ok(self) -> bool:
        return not self.violations and not self.errors

    def to_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "errors": list(self.errors),
            "violations": [
                {
                    "rule": v.rule,
                    "path": v.path,
                    "line": v.line,
                    "col": v.col,
                    "message": v.message,
                }
                for v in self.violations
            ],
        }


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    out: list[Path] = []
    seen: set[Path] = set()
    for path in paths:
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen and candidate.suffix == ".py":
                seen.add(resolved)
                out.append(candidate)
    return out


def run_paths(
    paths: Iterable[str],
    select: Optional[set[str]] = None,
    root: Optional[Path] = None,
) -> Report:
    """Run every (selected) rule over the python files under ``paths``."""
    from .rules import ALL_RULES

    root = (root or Path.cwd()).resolve()
    modules: list[SourceModule] = []
    errors: list[str] = []
    for file_path in iter_python_files([Path(p) for p in paths]):
        try:
            display = file_path.resolve().relative_to(root).as_posix()
        except ValueError:
            display = file_path.as_posix()
        try:
            text = file_path.read_text(encoding="utf-8")
            modules.append(SourceModule(file_path, display, text))
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{display}: {exc}")
    project = Project(modules)
    rules = [r for r in ALL_RULES if select is None or r.id in select]
    kept: list[Violation] = []
    suppressed = 0
    for module in modules:
        for rule in rules:
            for violation in rule.check(module, project):
                if rule.id in module.suppressions.get(violation.line, set()):
                    suppressed += 1
                else:
                    kept.append(violation)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return Report(kept, suppressed, len(modules), errors)
