"""Intent language gallery — the paper's queries Q1-Q7 (§5.2), runnable.

Each block shows the paper's query, the one-line repro equivalent, and the
resulting visualization(s), demonstrating how far a partial intent goes
compared to imperative chart code (Figure 6).

Run:  python examples/intent_gallery.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import Clause, Vis, VisList
from repro.data import MiniFaker


def make_employees(n: int = 600) -> repro.LuxDataFrame:
    """An HR-style table matching the attribute names used in §5.2."""
    faker = MiniFaker(4)
    rng = faker.rng
    return repro.LuxDataFrame(
        {
            "Age": np.round(rng.normal(38, 9, n), 0),
            "Education": rng.choice(
                ["High School", "Bachelors", "Masters", "Doctorate"], n
            ).tolist(),
            "EducationField": rng.choice(
                ["Life Sciences", "Medical", "Marketing", "Technical"], n
            ).tolist(),
            "Department": rng.choice(["Sales", "R&D", "HR"], n, p=[0.4, 0.5, 0.1]).tolist(),
            "Attrition": rng.choice(["Yes", "No"], n, p=[0.16, 0.84]).tolist(),
            "MonthlyIncome": np.round(rng.lognormal(8.6, 0.5, n), 0),
            "HourlyRate": np.round(rng.uniform(30, 100, n), 0),
            "DailyRate": np.round(rng.uniform(100, 1500, n), 0),
            "MonthlyRate": np.round(rng.uniform(2000, 27000, n), 0),
            "Country": rng.choice(["USA", "Japan", "Germany", "Brazil"], n).tolist(),
        }
    )


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    df = make_employees()

    # Q1 — set columns of interest on the dataframe itself.
    banner('Q1  df.intent = ["Age", "Education"]')
    df.intent = [
        Clause(attribute="Age"),
        Clause(attribute="Education"),
    ]
    # ... equivalently: df.intent = ["Age", "Education"]
    print("Actions steered by the intent:", df.recommendations.keys())

    # Q2 — compose an axis with a filter.
    banner('Q2  df.intent = ["Age", "Department=Sales"]')
    df.intent = ["Age", "Department=Sales"]
    current = df.recommendations["Current Vis"][0]
    print(current.to_ascii())

    # Q3 — construct a visualization directly.
    banner('Q3  Vis(["Age", "Education"], df)')
    vis = Vis(["Age", "Education"], df)
    print(vis.to_ascii())

    # Q4 — override the default aggregation with numpy.var.
    banner('Q4  Vis([Clause("MonthlyIncome", aggregation=numpy.var), "Attrition"], df)')
    vis = Vis([Clause("MonthlyIncome", aggregation=np.var), "Attrition"], df)
    print(vis.to_ascii())

    # Q5 — a VisList over a union of rate attributes.
    banner('Q5  VisList(["EducationField", rates], df)')
    rates = ["HourlyRate", "DailyRate", "MonthlyRate"]
    vl = VisList(["EducationField", rates], df)
    for v in vl:
        print(f"  {v!r}")

    # Q6 — wildcard: browse all quantitative pairs.
    banner('Q6  VisList([Clause("?", data_type="quantitative")] * 2, df)')
    any_q = Clause("?", data_type="quantitative")
    vl = VisList([any_q, any_q], df)
    print(f"{len(vl)} scatterplots generated; top 3 by correlation:")
    for v in list(vl.sort())[:3]:
        print(f"  {v!r}")

    # Q7 — filter wildcard: Age distribution per country.
    banner('Q7  VisList(["Age", "Country=?"], df)')
    vl = VisList(["Age", "Country=?"], df)
    for v in vl:
        print(f"  {v!r}")
    print()
    print(vl[0].to_ascii())


if __name__ == "__main__":
    main()
