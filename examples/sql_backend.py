"""SQL execution backend — the same recommendations from a relational DB.

The paper's execution engine runs "either as a series of dataframe
operations in pandas or equivalently in SQL queries in relational
databases" (§7, Fig. 8).  This example switches the executor to sqlite3,
shows the generated SQL for each visualization type (Table 2), and checks
that both backends agree.

Run:  python examples/sql_backend.py
"""

from __future__ import annotations

import repro
from repro import Vis, config
from repro.core.executor.sql_exec import translate_vis_to_sql
from repro.data import make_airbnb


def main() -> None:
    df = make_airbnb(20_000)

    queries = {
        "bar (group-by agg)": ["price", "room_type"],
        "colored bar (2-D group-by)": ["room_type", "price", "neighbourhood_group"],
        "choropleth (geo group-by)": ["neighbourhood_group", "price"],
        "scatter (selection)": ["price", "number_of_reviews"],
        "heatmap (2-D bin+count)": ["room_type", "borough-stub"],
    }

    print("== Generated SQL per visualization type (Table 2) ==\n")
    config.executor = "dataframe"
    for label, intent in queries.items():
        if "borough-stub" in intent:
            intent = ["room_type", "minimum_nights"]
        vis = Vis(intent, df)
        sql = translate_vis_to_sql(vis.spec, df)
        print(f"-- {label}")
        print(sql)
        print()

    print("== Backend parity check ==\n")
    intent = ["price", "room_type"]
    config.executor = "dataframe"
    df_vis = Vis(intent, df)
    config.executor = "sql"
    sql_vis = Vis(intent, df)
    config.executor = "dataframe"

    df_result = {r["room_type"]: r["price"] for r in df_vis.data}
    sql_result = {r["room_type"]: r["price"] for r in sql_vis.data}
    for key in df_result:
        delta = abs(df_result[key] - sql_result[key])
        print(f"  {key:<18} dataframe={df_result[key]:10.3f}  "
              f"sql={sql_result[key]:10.3f}  |delta|={delta:.2e}")
        assert delta < 1e-6

    print("\n== Full recommendation pass on the SQL backend ==\n")
    config.executor = "sql"
    recs = df.recommendations
    print("Actions:", recs.keys())
    print()
    print(recs["Occurrence"][0].to_ascii())
    config.executor = "dataframe"


if __name__ == "__main__":
    main()
