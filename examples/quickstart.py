"""Quickstart: always-on visualization recommendations in five minutes.

Mirrors the first contact a user has with Lux: load a CSV, print the
dataframe, browse recommendations, set an intent, and export a chart.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os
import tempfile

import repro
from repro.data import make_hpi


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Load data.  ``repro.read_csv`` returns a LuxDataFrame — a drop-in
    #    dataframe that additionally tracks intent, metadata, and history.
    # ------------------------------------------------------------------
    csv_path = os.path.join(tempfile.gettempdir(), "hpi.csv")
    make_hpi().to_csv(csv_path)
    df = repro.read_csv(csv_path)
    print(f"Loaded {df.shape[0]} rows x {df.shape[1]} columns")
    print("Inferred semantic types:", df.data_types, "\n")

    # ------------------------------------------------------------------
    # 2. "Print" the dataframe.  In a notebook this renders the widget;
    #    here the repr carries the always-on recommendation summary.
    # ------------------------------------------------------------------
    print(df)
    print()

    # ------------------------------------------------------------------
    # 3. Browse a recommendation tab (Figure 1 of the paper).
    # ------------------------------------------------------------------
    recs = df.recommendations
    print("Actions:", recs.keys())
    top_correlation = recs["Correlation"][0]
    print("\nTop correlation recommendation:")
    print(top_correlation.to_ascii())
    print()

    # ------------------------------------------------------------------
    # 4. Steer with an intent (Figure 2): one line, no chart code.
    # ------------------------------------------------------------------
    df.intent = ["AvrgLifeExpectancy", "Inequality"]
    recs = df.recommendations
    print("With intent set, actions become:", recs.keys())
    print("\nCurrent visualization:")
    print(recs["Current Vis"][0].to_ascii())
    print()

    # ------------------------------------------------------------------
    # 5. Export: pull a chart out of the widget as code you can tweak.
    # ------------------------------------------------------------------
    vis = df.export("Current Vis", 0)
    print("Exported Altair code:\n")
    print(vis.to_altair_code())

    # ------------------------------------------------------------------
    # 6. Save the full interactive widget for sharing.
    # ------------------------------------------------------------------
    out = os.path.join(tempfile.gettempdir(), "lux_widget.html")
    df.save_as_html(out)
    print(f"\nInteractive widget written to {out}")


if __name__ == "__main__":
    main()
