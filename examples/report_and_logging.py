"""Downstream reports and usage logging (§10.3 / §10.1 infrastructure).

- ``df.to_report()`` writes a static, self-contained HTML report of every
  recommendation — the sharing workflow the paper added after per-chart
  code export "quickly became unsustainable";
- ``repro.usage_log`` is the lux-logger analogue: it records prints,
  intent changes, and exports, and can compute the think-time statistics
  the paper's async design is based on (§8.2's 2.8 s median).

Run:  python examples/report_and_logging.py
"""

from __future__ import annotations

import os
import tempfile
import time

import repro
from repro import usage_log
from repro.data import make_airbnb, make_hpi
from repro.vis.report import render_report


def main() -> None:
    usage_log.enable()

    # Explore two datasets the way an analyst would.
    hpi = make_hpi()
    airbnb = make_airbnb(8_000)

    repr(hpi)                                   # print #1
    hpi.intent = ["AvrgLifeExpectancy", "Inequality"]
    repr(hpi)                                   # print #2
    time.sleep(0.05)                            # "think time"
    repr(airbnb)                                # print #3
    hpi.export("Current Vis", 0)

    # ------------------------------------------------------------------
    # Usage log: what happened this session?
    # ------------------------------------------------------------------
    log = usage_log.get_log()
    summary = log.summary()
    print("== Session usage summary (lux-logger analogue) ==")
    print("event counts:", summary["counts"])
    print(f"median think time between prints: "
          f"{summary['median_think_time']:.3f} s over {summary['n_gaps']} gaps")

    jsonl = os.path.join(tempfile.gettempdir(), "lux_usage.jsonl")
    log.to_jsonl(jsonl)
    print(f"raw event log written to {jsonl}")

    # ------------------------------------------------------------------
    # One-shot multi-frame report for stakeholders without Python.
    # ------------------------------------------------------------------
    html = render_report(
        {"Happy Planet Index": hpi, "Airbnb listings": airbnb},
        title="Exploration report — world development & listings",
        charts_per_action=3,
    )
    out = os.path.join(tempfile.gettempdir(), "lux_report.html")
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(html)
    print(f"\nstatic HTML report written to {out} "
          f"({len(html) // 1024} KiB, self-contained)")

    # Single-frame shorthand:
    single = os.path.join(tempfile.gettempdir(), "hpi_report.html")
    hpi.to_report(single, title="HPI overview")
    print(f"single-frame report written to {single}")

    usage_log.disable()


if __name__ == "__main__":
    main()
