"""Structure- and history-based recommendations (§6) — the paper's novel
dataframe-workflow signals.

Demonstrates:
- Series visualizations (printing a single column);
- Index visualizations of a pivoted time-series frame (Figure 7's
  COVID-cases-by-state example);
- Pre-aggregate recommendations after a multi-key groupby;
- Pre-filter recommendations when a filter leaves too few rows (e.g. after
  ``head()``), where Lux shows the *parent* dataframe instead.

Run:  python examples/structure_history.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.data import make_airbnb


def covid_cases_by_state() -> repro.LuxDataFrame:
    """A long-format table of daily case percentages per state (Fig. 7)."""
    rng = np.random.default_rng(9)
    states = ["California", "Alabama", "New York", "Texas"]
    dates = [f"2020-03-{d:02d}" for d in range(1, 15)]
    rows = {"state": [], "Date": [], "cases": []}
    for s_i, state in enumerate(states):
        level = 0.0
        for date in dates:
            level += abs(rng.normal(0.5 + 0.3 * s_i, 0.3))
            rows["state"].append(state)
            rows["Date"].append(date)
            rows["cases"].append(round(level, 2))
    return repro.LuxDataFrame(rows)


def main() -> None:
    # ------------------------------------------------------------------
    # Series visualization: printing a column shows its univariate chart.
    # ------------------------------------------------------------------
    df = make_airbnb(5_000)
    print("== Printing a Series shows its chart ==")
    print(df["room_type"])
    print()

    # ------------------------------------------------------------------
    # Index visualization of a pivot result (Figure 7).
    # ------------------------------------------------------------------
    print("== Pivot + print: row-wise time series per state ==")
    cases = covid_cases_by_state()
    pivoted = cases.pivot(index="state", columns="Date", values="cases")
    recs = pivoted.recommendations
    print("Actions on the pivoted frame:", recs.keys())
    for vis in recs["Index"]:
        print(f"  {vis!r}")
    print()
    print(recs["Index"][0].to_ascii())
    print()

    # ------------------------------------------------------------------
    # Pre-aggregate: a multi-key groupby result is visualized by its keys.
    # ------------------------------------------------------------------
    print("== Multi-key groupby -> Pre-aggregate recommendations ==")
    agg = df.groupby(["neighbourhood_group", "room_type"]).mean()
    recs = agg.recommendations
    print("Actions:", recs.keys())
    if "Pre-aggregate" in recs.keys():
        print(recs["Pre-aggregate"][0].to_ascii())
    print()

    # ------------------------------------------------------------------
    # Pre-filter: head() leaves too few rows; Lux recommends on the parent.
    # ------------------------------------------------------------------
    print("== head() -> Pre-filter shows the unfiltered dataframe ==")
    tiny = df.head(3)
    recs = tiny.recommendations
    print("Actions on the 3-row frame:", recs.keys())
    prefilter = recs["Pre-filter"]
    print(f"Pre-filter recommends {len(prefilter)} charts from the parent "
          f"({len(df)} rows):")
    print(prefilter[0].to_ascii())


if __name__ == "__main__":
    main()
