"""Custom actions — extending the recommendation registry with UDFs (§7.2).

Implements the two custom actions the paper's field-study participants
asked for (§10.2):

- P3's "Influence": the top dataframe columns with the most influence over
  a chosen predictive variable;
- P2's "Even Split": categorical bar charts that look *even* (near-equal
  class likelihoods), i.e. the inverse of the default unevenness ranking.

Run:  python examples/custom_actions.py
"""

from __future__ import annotations


import repro
from repro import Vis, VisList, register_action, remove_action
from repro.data import make_airbnb


TARGET = "price"


def influence_action(ldf: repro.LuxDataFrame) -> VisList:
    """Columns most predictive of TARGET, ranked by |correlation|."""
    visualizations = []
    for attr in ldf.metadata.measures:
        if attr == TARGET:
            continue
        vis = Vis([attr, TARGET], ldf)
        vis.compute_score()  # |Pearson r| for measure pairs
        visualizations.append(vis)
    vl = VisList(visualizations=visualizations, source=ldf)
    return vl.top_k(10)


def even_split_action(ldf: repro.LuxDataFrame) -> VisList:
    """Categorical attributes whose class frequencies are nearly equal."""
    visualizations = []
    for attr in ldf.metadata.columns_of_type("nominal"):
        if ldf.metadata[attr].cardinality > repro.config.max_cardinality_for_axis:
            continue  # not representable as a bar chart
        vis = Vis([attr], ldf)
        # Invert the default unevenness score: even bars rank first.
        vis.compute_score()
        vis.score = 1.0 - (vis.score or 0.0)
        visualizations.append(vis)
    vl = VisList(visualizations=visualizations, source=ldf)
    vl._visualizations.sort(key=lambda v: -(v.score or 0))
    return vl


def main() -> None:
    df = make_airbnb(10_000)

    register_action(
        "Influence",
        influence_action,
        condition=lambda ldf: TARGET in ldf.columns,
        description=f"Columns with the most influence over {TARGET!r}.",
    )
    register_action(
        "Even Split",
        even_split_action,
        condition=lambda ldf: bool(ldf.metadata.columns_of_type("nominal")),
        description="Categorical attributes with near-equal class balance.",
    )
    try:
        recs = df.recommendations
        print("Actions now include the custom ones:", recs.keys())

        print("\n== Influence over price ==")
        for vis in recs["Influence"]:
            print(f"  {vis!r}")
        print()
        print(recs["Influence"][0].to_ascii())

        print("\n== Most even categorical splits ==")
        for vis in recs["Even Split"]:
            print(f"  {vis!r}")
        print()
        print(recs["Even Split"][0].to_ascii())
    finally:
        remove_action("Influence")
        remove_action("Even Split")


if __name__ == "__main__":
    main()
