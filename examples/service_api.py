"""The always-on service: sessions, background precompute, HTTP API.

Walks the full always-on lifecycle in-process — create isolated sessions,
mutate a frame, let the background engine precompute during the idle gap,
and read recommendations as a store lookup — then does the same over the
stdlib HTTP JSON API.

Run:  PYTHONPATH=src python examples/service_api.py
"""

from __future__ import annotations

import json
import time
import urllib.request

from repro import config
from repro.data import make_hpi
from repro.service import SessionManager, make_server


def main() -> None:
    config.precompute_debounce_s = 0.01

    # ------------------------------------------------------------------
    # 1. In-process: sessions isolate analysts.  Each gets a frozen config
    #    overlay — different top_k here — without touching global config.
    # ------------------------------------------------------------------
    manager = SessionManager()
    alice = manager.create(make_hpi(), overrides={"top_k": 3})
    bob = manager.create(make_hpi(), overrides={"top_k": 8})

    # A mutation triggers the background pass; by the time the analyst
    # looks, the answer is a store lookup (origin == "precompute").
    alice.frame["WellbeingPerCapita"] = (
        alice.frame["Wellbeing"] / alice.frame["Population"]
    )
    manager.engine.wait_idle()
    start = time.perf_counter()
    response = alice.recommendations()
    elapsed_ms = (time.perf_counter() - start) * 1e3
    print(f"alice read: {response['freshness']['origin']} in {elapsed_ms:.2f} ms")
    for action, payload in response["actions"].items():
        print(f"  {action}: {payload['count']} chart(s)")

    # Bob's session is untouched by Alice's mutation and overlay.
    print("bob columns:", manager.get(bob.id).frame.columns[:4], "...")
    manager.shutdown()

    # ------------------------------------------------------------------
    # 2. Over HTTP: the same machinery behind a stdlib JSON API.
    # ------------------------------------------------------------------
    server = make_server().serve_background()
    created = _call(server.address, "POST", "/sessions",
                    {"dataset": "hpi", "config": {"top_k": 4}})
    session_id = created["session"]
    server.manager.engine.wait_idle()
    recs = _call(server.address, "GET",
                 f"/sessions/{session_id}/recommendations")
    print(f"HTTP read: {recs['freshness']['origin']}, "
          f"actions={list(recs['actions'])}")
    health = _call(server.address, "GET", "/healthz")
    print("healthz:", {k: health[k] for k in ("status", "sessions")})
    server.manager.shutdown()
    server.stop()


def _call(base: str, method: str, path: str, body: dict | None = None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


if __name__ == "__main__":
    main()
