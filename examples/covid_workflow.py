"""Alice's COVID-19 policy analysis — the paper's §3 walkthrough, end to end.

Reproduces every step of the example workflow (Figures 1-4): always-on
overview of the Happy Planet Index, intent steering, loading and joining
the COVID stringency data, qcut binning into Low/High response levels, the
stringency_level breakdown revealing the public-health separation, and the
outlier investigation that surfaces Afghanistan, Pakistan, and Rwanda.

Run:  python examples/covid_workflow.py
"""

from __future__ import annotations

import repro
from repro.data import make_covid_stringency, make_hpi
from repro.dataframe import qcut


def main() -> None:
    # ------------------------------------------------------------------
    # Figure 1 — always-on dataframe visualization.
    # ------------------------------------------------------------------
    df = make_hpi()
    print("== Step 1: print the HPI dataframe (always-on overview) ==")
    recs = df.recommendations
    print("Recommendation tabs:", recs.keys())
    top = recs["Correlation"][0]
    print(f"\nTop Correlation chart (score={top.score:.2f}):")
    print(top.to_ascii())
    assert {top.spec.x.field, top.spec.y.field} == {
        "AvrgLifeExpectancy", "Inequality",
    }, "the headline negative correlation should rank first"

    # ------------------------------------------------------------------
    # Figure 2 — steering analysis with intent.
    # ------------------------------------------------------------------
    print("\n== Step 2: steer with intent ==")
    df.intent = ["AvrgLifeExpectancy", "Inequality"]
    enhance = df.recommendations["Enhance"]
    print("Enhance recommendations (add one attribute):")
    for vis in list(enhance)[:4]:
        print(f"  {vis!r}")
    g10_vis = next(
        v for v in enhance if v.spec.color is not None and v.spec.color.field == "G10"
    )
    print("\nBreakdown by G10 membership (industrialized countries cluster")
    print("at low inequality / high life expectancy):")
    print(g10_vis.to_ascii())

    # ------------------------------------------------------------------
    # Figure 3 — seamless integration with cleaning and transformation.
    # ------------------------------------------------------------------
    print("\n== Step 3: load + join the COVID stringency data ==")
    covid = make_covid_stringency()
    result = covid.merge(
        df, left_on=["Entity", "Code"], right_on=["Country", "iso3"]
    )
    print(f"Joined: {result.shape[0]} countries x {result.shape[1]} columns")

    result.intent = ["stringency"]
    current = result.recommendations["Current Vis"][0]
    print("\nStringency distribution (heavily right-skewed):")
    print(current.to_ascii())

    print("\n== Step 4: bin stringency into Low/High (qcut) ==")
    result["stringency_level"] = qcut(
        result["stringency"], 2, labels=["Low", "High"]
    )
    result = result.drop("stringency")
    counts = result["stringency_level"].value_counts()
    print(
        "stringency_level counts:",
        dict(zip(counts.index.to_list(), counts.to_list())),
    )

    # ------------------------------------------------------------------
    # Figure 4 — the separation and the outliers.
    # ------------------------------------------------------------------
    print("\n== Step 5: revisit the correlation, broken down by response ==")
    result.intent = ["AvrgLifeExpectancy", "Inequality"]
    enhance = result.recommendations["Enhance"]
    breakdown = next(
        v for v in enhance
        if v.spec.color is not None and v.spec.color.field == "stringency_level"
    )
    print(breakdown.to_ascii())
    print("Strict-response countries sit at high life expectancy / low")
    print("inequality — evidence of developed public-health infrastructure.")

    print("\n== Step 6: who defies the trend? ==")
    outliers = result[
        (result["Inequality"] > 0.35) & (result["stringency_level"] == "High")
    ]
    names = outliers["Country"].to_list()
    print("High-inequality countries with strict early response:", names)
    assert {"Afghanistan", "Pakistan", "Rwanda"} <= set(names)

    print("\n== Step 7: export the chart to share with colleagues ==")
    vis = result.export("Enhance", list(enhance).index(breakdown))
    print(vis.to_matplotlib_code())


if __name__ == "__main__":
    main()
