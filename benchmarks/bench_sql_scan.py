"""SQL shared-scan benchmark: consolidated batches vs per-spec queries.

Measures the same 41-candidate recommendation pass as
``bench_shared_scan.py`` — group-by bars/lines, histograms, heatmaps, and
filtered variants — executed through the ``SQLExecutor`` backend under two
conditions:

- ``per_spec``: one round-trip query per candidate (``execute`` in a
  loop), the pre-batching path — O(candidates) scans of the base table.
- ``batched``:  ``SQLExecutor.execute_many`` compiles each filter group
  into one shared-WHERE CTE + UNION ALL pass (one scan per GROUP BY
  shape, one MIN/MAX stats scan per group with histograms) on a
  connection resolved once for the whole batch.

Every run emits a ``BENCH_sql_scan.json`` trajectory artifact (timings,
speedup, candidate count, sqlite version) and gates on it:

- batched results must be bit-identical to the per-spec results;
- the batch speedup must not regress against the committed baseline
  (``benchmarks/baselines/BENCH_sql_scan.json``), falling back to the
  2x acceptance floor when no comparable baseline exists.

Unlike the dataframe benchmark there is no parallel condition: sqlite
serializes per-connection, so the win here is scan consolidation, which
is core-count independent.

Run directly (CI runs ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_sql_scan.py \\
        [--quick] [--rows N] [--out PATH] [--update-baseline]
"""

from __future__ import annotations

import argparse
import contextlib
import json
import platform
import sqlite3
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_shared_scan import build_candidates, build_frame, load_baseline  # noqa: E402

from repro import config, config_overlay  # noqa: E402
from repro.core.executor.cache import computation_cache  # noqa: E402
from repro.core.executor.sql_exec import SQLExecutor  # noqa: E402
from repro.dataframe import DataFrame  # noqa: E402

#: Allowed fraction of the baseline speedup before the gate trips.
TOLERANCE = 0.6

#: Acceptance floor when no comparable baseline exists (the PR-3 bar).
BATCH_FLOOR = 2.0

BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_sql_scan.json"

CONDITIONS = ("per_spec", "batched")


def run_pass(frame: DataFrame, condition: str) -> tuple[float, list]:
    """One timed candidate-set execution; returns (seconds, results)."""
    computation_cache.clear()
    specs = build_candidates()
    executor = SQLExecutor()
    start = time.perf_counter()
    if condition == "per_spec":
        results = [executor.execute(spec, frame) for spec in specs]
    else:
        results = executor.execute_many(specs, frame)
    elapsed = time.perf_counter() - start
    assert all(s.data is not None for s in specs)
    return elapsed, results


def comparable(baseline: dict | None, report: dict) -> bool:
    """Whether the committed baseline measured the same workload shape."""
    return (
        baseline is not None
        and baseline.get("benchmark") == report["benchmark"]
        and baseline.get("mode") == report["mode"]
        and baseline.get("rows") == report["rows"]
        and baseline.get("candidates") == report["candidates"]
    )


def gate(report: dict, baseline: dict | None) -> list[str]:
    """Evaluate every acceptance gate; returns the list of failures."""
    failures: list[str] = []
    speedup = report["speedups"]["batch"]

    if not report["identical"]:
        failures.append("batched results differ from per-spec results")

    if comparable(baseline, report):
        base = baseline["speedups"]["batch"]
        threshold = base * TOLERANCE
        if speedup < threshold:
            failures.append(
                f"batch speedup {speedup:.2f}x regressed below "
                f"{TOLERANCE:.0%} of baseline {base:.2f}x"
            )
    elif speedup < BATCH_FLOOR:
        failures.append(
            f"batch speedup {speedup:.2f}x below the "
            f"{BATCH_FLOOR}x floor (no comparable baseline)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=50_000,
                        help="frame size (default 50k)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed rounds per condition; best is reported")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run for CI (20k rows, 2 rounds)")
    parser.add_argument("--out", type=Path, default=Path("BENCH_sql_scan.json"),
                        help="trajectory artifact path")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH,
                        help="committed baseline to gate against")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the committed baseline from this run")
    args = parser.parse_args(argv)
    if args.quick:
        args.rows, args.rounds = 20_000, 2

    with contextlib.ExitStack() as stack:
        # config_overlay() rolls back every knob the run mutates on exit
        # (the old hand-rolled snapshot/restore); the cache clear runs
        # after it, exactly like the old finally block.
        stack.callback(computation_cache.clear)
        stack.enter_context(config_overlay())
        config.sql_batch_execute = True
        frame = build_frame(args.rows)
        candidates = len(build_candidates())
        # Load the frame into sqlite outside the timed region: both
        # conditions share the connection cache, and the benchmark
        # measures query execution, not bulk insert.
        SQLExecutor()._connection(frame)
        print(f"sql-scan: {candidates} candidates, {args.rows} rows, "
              f"best of {args.rounds}, sqlite {sqlite3.sqlite_version}")

        best: dict[str, float] = {}
        results: dict[str, list] = {}
        for condition in CONDITIONS:
            times = []
            for _ in range(args.rounds):
                elapsed, out = run_pass(frame, condition)
                times.append(elapsed)
            best[condition] = min(times)
            results[condition] = out
            print(f"  {condition:<16}: {best[condition] * 1e3:9.1f} ms")

        identical = results["batched"] == results["per_spec"]
        speedup = (
            best["per_spec"] / best["batched"]
            if best["batched"] > 0
            else float("inf")
        )

        report = {
            "schema": 1,
            "benchmark": "sql_scan",
            "mode": "quick" if args.quick else "full",
            "rows": args.rows,
            "candidates": candidates,
            "rounds": args.rounds,
            "python": platform.python_version(),
            "sqlite": sqlite3.sqlite_version,
            "timings_ms": {k: round(v * 1e3, 3) for k, v in best.items()},
            "speedups": {"batch": round(speedup, 3)},
            "identical": identical,
        }
        print(f"  batch speedup   : {speedup:9.2f}x")
        print(f"  identical       : {identical}")

        args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"  wrote {args.out}")

        if not identical:
            # Correctness precedes every mode, including --update-baseline:
            # a baseline refresh must never go green while recording a
            # batched-vs-serial divergence.
            print("  GATE FAILED: batched results differ from per-spec results")
            return 1

        if args.update_baseline:
            args.baseline.parent.mkdir(parents=True, exist_ok=True)
            args.baseline.write_text(
                json.dumps(report, indent=2) + "\n", encoding="utf-8"
            )
            print(f"  wrote baseline {args.baseline}")
            return 0

        baseline = load_baseline(args.baseline)
        if not comparable(baseline, report):
            print("  no comparable baseline; gating on absolute floors")
        failures = gate(report, baseline)
        for failure in failures:
            print(f"  GATE FAILED: {failure}")
        if not failures:
            print("  all gates passed")
        return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
