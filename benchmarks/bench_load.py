"""Production load harness: concurrent HTTP clients over a scenario matrix.

Drives N concurrent sessions against the **real HTTP API** (an in-process
``ThreadingHTTPServer`` on an ephemeral port — real sockets, real JSON,
real handler threads) with a mixed workload per session: column mutations
(touch writes), intent changes, and recommendation reads.  The frame
shapes come from the adversarial scenario matrix in
``repro.data.synthetic.SCENARIOS``:

- ``wide``       500+ columns (capped quantitative share),
- ``highcard``   nominal cardinality approaching the row count,
- ``skewed``     lognormal measures + Zipf category frequencies,
- ``datetime``   temporal-dominant at wildly different spans,
- ``nullheavy``  30-70% masked values per column.

Per scenario the harness reports read-latency percentiles (p50/p95/p99),
the precompute backlog depth over time (sampled from ``/healthz`` by a
monitor thread), and cross-session fairness as Jain's index over
per-session completed reads — the macro check on the pool's per-tag
round-robin.  Two focused sections ride along:

- ``saturation``: with ``config.precompute_queue_limit`` forced to 2 and
  a debounce window wide enough to hold timers armed, concurrent writes
  must be answered **429 + Retry-After** instead of queueing unboundedly;
  the sampled backlog must respect the bound; and once the backlog
  drains, recommendations served over HTTP must be **bit-identical** to
  an unloaded foreground computation of the same frame.
- ``eviction``: the same workload against a store whose byte budget is a
  few payloads wide — evictions must actually occur and reads must keep
  succeeding (foreground fallback, not errors).

Every run emits a ``BENCH_load.json`` trajectory artifact and gates:

- **hard** (correctness, even under ``--update-baseline``): at least one
  429 with a sane ``Retry-After`` under forced saturation, sampled
  backlog depth never above the bound, post-drain payloads identical to
  the unloaded reference, at least one store eviction under pressure,
  zero transport/HTTP errors in the mixed workload;
- **floor**: Jain fairness >= ``FAIRNESS_FLOOR`` across the session set;
- **trajectory**: aggregate read p95 must not exceed the committed
  baseline's (``benchmarks/baselines/BENCH_load.json``) by more than
  ``MAX_SLOWDOWN`` when one is comparable.

Run directly (CI runs ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_load.py \\
        [--quick] [--sessions N] [--duration S] [--out PATH] \\
        [--update-baseline]
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import random
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_shared_scan import load_baseline  # noqa: E402

from repro import config, config_overlay  # noqa: E402
from repro.core.executor.cache import computation_cache  # noqa: E402
from repro.data.synthetic import SCENARIOS, make_scenario  # noqa: E402
from repro.service import ResultStore, SessionManager, make_server  # noqa: E402
from repro.service.session import Session  # noqa: E402

#: Latency trajectory gate: aggregate read p95 may grow at most this much
#: over the committed baseline before the gate trips (lenient — shared CI
#: runners are noisy and the worst scenario's p95 is tail-of-the-tail;
#: the hard gates are the correctness ones).
MAX_SLOWDOWN = 4.0

#: Jain's-index floor over per-session read totals summed across the
#: whole scenario matrix.  Per-scenario indices are reported but not
#: gated: on a 1-core box one multi-second foreground pass skews any
#: single 2-second window, while the matrix-wide totals are stable.
FAIRNESS_FLOOR = 0.5

BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_load.json"

#: Mixed-workload op mix (cumulative probability thresholds).
P_MUTATE = 0.15       # touch write: bumps the version, arms precompute
P_INTENT = 0.25       # set / clear intent (re-keys the whole pass)

#: Scenario frame sizes, (quick, full).  ``wide`` keeps its 500 columns
#: in both modes — width is the point — and scales rows instead.
SCENARIO_ROWS = {
    "wide": (300, 1500),
    "highcard": (800, 5000),
    "skewed": (800, 5000),
    "datetime": (800, 5000),
    "nullheavy": (800, 5000),
}


# ----------------------------------------------------------------------
# Tiny HTTP client (urllib, keep-alive not required)
# ----------------------------------------------------------------------
def call(
    base: str,
    method: str,
    path: str,
    body: dict | None = None,
) -> tuple[int, dict, dict]:
    """One API call -> (status, headers, parsed JSON body)."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return (
                response.status,
                dict(response.headers),
                json.loads(response.read().decode("utf-8")),
            )
    except urllib.error.HTTPError as exc:
        payload = exc.read().decode("utf-8")
        try:
            parsed = json.loads(payload)
        except ValueError:
            parsed = {"error": payload}
        return exc.code, dict(exc.headers), parsed


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over a pre-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[rank]


def jain(counts: list[int]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = one hog."""
    if not counts or sum(counts) == 0:
        return 0.0
    total = sum(counts)
    return (total * total) / (len(counts) * sum(c * c for c in counts))


# ----------------------------------------------------------------------
# Backlog monitor: polls /healthz like an operator's dashboard would
# ----------------------------------------------------------------------
class Monitor:
    """Samples backlog depth / store bytes from ``/healthz`` on a thread."""

    def __init__(self, base: str, interval_s: float = 0.05) -> None:
        self.base = base
        self.interval_s = interval_s
        self.backlog: list[int] = []
        self.store_bytes: list[int] = []
        self.queued: list[int] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                _, _, health = call(self.base, "GET", "/healthz")
            except OSError:
                break
            self.backlog.append(int(health["precompute"]["backlog_depth"]))
            self.store_bytes.append(int(health["store"]["bytes"]))
            queues = health["pool"].get("queues", {})
            self.queued.append(
                sum(sum(band.values()) for band in queues.values())
            )
            self._stop.wait(self.interval_s)

    def __enter__(self) -> "Monitor":
        self._thread.start()
        return self

    def __exit__(self, *_exc: object) -> None:
        self._stop.set()
        self._thread.join(timeout=5)

    def summary(self) -> dict:
        samples = self.backlog or [0]
        return {
            "samples": len(self.backlog),
            "backlog_peak": max(samples),
            "backlog_mean": round(sum(samples) / len(samples), 2),
            "pool_queued_peak": max(self.queued or [0]),
        }


# ----------------------------------------------------------------------
# Mixed workload
# ----------------------------------------------------------------------
class Worker:
    """One session's client: seeded op mix until the shared deadline."""

    def __init__(
        self, base: str, session: dict, seed: int, deadline: float
    ) -> None:
        self.base = base
        self.session_id = session["session"]
        self.columns = session["columns"]
        self.rng = random.Random(seed)
        self.deadline = deadline
        self.read_latencies: list[float] = []
        self.ops = {"reads": 0, "mutates": 0, "intents": 0, "rejected": 0}
        self.errors: list[str] = []

    def run(self) -> None:
        sid = self.session_id
        while time.perf_counter() < self.deadline:
            roll = self.rng.random()
            if roll < P_MUTATE:
                column = self.rng.choice(self.columns)
                status, headers, _ = call(
                    self.base,
                    "POST",
                    f"/sessions/{sid}/mutate",
                    {"column": column},
                )
                self._account("mutates", status, headers)
            elif roll < P_INTENT:
                intent = (
                    [self.rng.choice(self.columns)]
                    if self.rng.random() < 0.7
                    else None
                )
                status, headers, _ = call(
                    self.base,
                    "POST",
                    f"/sessions/{sid}/intent",
                    {"intent": intent},
                )
                self._account("intents", status, headers)
            else:
                start = time.perf_counter()
                status, _, _ = call(
                    self.base, "GET", f"/sessions/{sid}/recommendations"
                )
                if status == 200:
                    self.read_latencies.append(time.perf_counter() - start)
                    self.ops["reads"] += 1
                else:
                    self.errors.append(f"read -> {status}")

    def _account(self, op: str, status: int, headers: dict) -> None:
        if status == 200:
            self.ops[op] += 1
        elif status == 429:
            # Backpressure is an expected, non-error answer: note it,
            # yield briefly (the real Retry-After would stall the whole
            # bench), and move on.
            self.ops["rejected"] += 1
            if "Retry-After" not in headers:
                self.errors.append("429 without Retry-After")
            time.sleep(0.02)
        else:
            self.errors.append(f"{op} -> {status}")


def run_scenario(
    base: str,
    name: str,
    rows: int,
    n_sessions: int,
    duration_s: float,
    seed: int,
) -> dict:
    """Mixed workload for one scenario; returns its report section."""
    sessions = []
    for i in range(n_sessions):
        status, _, info = call(
            base,
            "POST",
            "/sessions",
            {"dataset": f"synthetic-{name}", "rows": rows,
             "config": {"top_k": 3}},
        )
        assert status == 201, f"create {name} session -> {status}: {info}"
        sessions.append(info)

    deadline = time.perf_counter() + duration_s
    workers = [
        Worker(base, session, seed * 1000 + i, deadline)
        for i, session in enumerate(sessions)
    ]
    with Monitor(base) as monitor:
        threads = [
            threading.Thread(target=worker.run, daemon=True)
            for worker in workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    for session in sessions:
        call(base, "DELETE", f"/sessions/{session['session']}")

    latencies = sorted(
        latency for worker in workers for latency in worker.read_latencies
    )
    read_counts = [worker.ops["reads"] for worker in workers]
    ops = {
        key: sum(worker.ops[key] for worker in workers)
        for key in ("reads", "mutates", "intents", "rejected")
    }
    errors = [error for worker in workers for error in worker.errors]
    return {
        "rows": rows,
        "columns": len(sessions[0]["columns"]),
        "sessions": n_sessions,
        "ops": ops,
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50) * 1e3, 3),
            "p95": round(percentile(latencies, 0.95) * 1e3, 3),
            "p99": round(percentile(latencies, 0.99) * 1e3, 3),
        },
        "reads_per_s": round(ops["reads"] / duration_s, 1),
        "fairness_jain": round(jain(read_counts), 3),
        "reads_per_session": read_counts,
        "backlog": monitor.summary(),
        "errors": errors[:10],
        "error_count": len(errors),
    }


# ----------------------------------------------------------------------
# Saturation: forced backpressure + post-drain identity
# ----------------------------------------------------------------------
def run_saturation(base: str, manager: SessionManager, rows: int) -> dict:
    """Force 429s at queue_limit=2, then prove the drain loses nothing.

    Base-mutates ``precompute_queue_limit`` / ``precompute_debounce_s``
    (base, not an overlay: the writes arrive on HTTP handler threads,
    which a caller-thread overlay would never reach) and restores both
    before returning.  A wide debounce keeps each write's timer armed,
    so three sessions' writes in quick succession must push the backlog
    to the bound and get the third rejected with 429 + Retry-After.
    After the drain, every session's recommendations over HTTP must be
    byte-identical to an unloaded in-process foreground pass over the
    same deterministic frame.
    """
    scenario = "skewed"
    sessions = []
    for _ in range(3):
        status, _, info = call(
            base,
            "POST",
            "/sessions",
            {"dataset": f"synthetic-{scenario}", "rows": rows,
             "config": {"top_k": 3}},
        )
        assert status == 201, f"saturation create -> {status}: {info}"
        sessions.append(info["session"])
    # Session creation schedules an immediate first pass; let those clear
    # (and do so *before* tightening the limit — a create's own admission
    # check must not trip on its siblings') so the saturation below is
    # exactly the writes we issue.
    assert manager.engine.wait_idle(120), "initial passes never settled"
    prior_limit = config.precompute_queue_limit
    prior_debounce = config.precompute_debounce_s
    config.precompute_queue_limit = 2
    config.precompute_debounce_s = 1.0

    rejected = 0
    retry_after = None
    backlog_peak = 0
    statuses = []
    try:
        with Monitor(base, interval_s=0.02) as monitor:
            for sid in sessions:
                status, headers, _ = call(
                    base,
                    "POST",
                    f"/sessions/{sid}/mutate",
                    {"column": "heavy_tail"},
                )
                statuses.append(status)
                if status == 429:
                    rejected += 1
                    retry_after = headers.get("Retry-After")
            backlog_now = manager.engine.stats()["backlog_depth"]
            # Drain: armed timers fire after the debounce, passes run dry.
            assert manager.engine.wait_idle(300), "saturation drain stalled"
            backlog_peak = max(monitor.backlog + [backlog_now])

        # The rejected write was refused before any state changed:
        # retrying it after the drain must succeed and precompute
        # normally (still at the tight limit — the backlog is empty now).
        retry_status, _, _ = call(
            base,
            "POST",
            f"/sessions/{sessions[-1]}/mutate",
            {"column": "heavy_tail"},
        )
        assert manager.engine.wait_idle(300), "post-retry drain stalled"
    finally:
        config.precompute_queue_limit = prior_limit
        config.precompute_debounce_s = prior_debounce

    # Identity: unloaded reference — same deterministic frame, same
    # overrides, pure foreground pass, no server, no store.
    reference = Session(
        "reference",
        make_scenario(scenario, n_rows=rows),
        overrides={"top_k": 3},
    ).recommendations()
    identical = True
    for sid in sessions:
        status, _, response = call(
            base, "GET", f"/sessions/{sid}/recommendations"
        )
        if status != 200 or response["actions"] != reference["actions"]:
            identical = False
    for sid in sessions:
        call(base, "DELETE", f"/sessions/{sid}")
    retry_after_int = int(retry_after) if retry_after else 0
    return {
        "queue_limit": 2,
        "write_statuses": statuses,
        "rejected": rejected,
        "retry_after_s": retry_after_int,
        "retry_after_valid": 1 <= retry_after_int <= 60,
        "backlog_peak": backlog_peak,
        "backlog_within_limit": backlog_peak <= 2,
        "retry_succeeded": retry_status == 200,
        "identical": identical,
    }


# ----------------------------------------------------------------------
# Eviction: the store under memory pressure
# ----------------------------------------------------------------------
def run_eviction(rows: int, n_sessions: int, rounds: int) -> dict:
    """Mutate/read loop against a store a few payloads wide.

    Uses a dedicated in-process manager with an explicit tiny byte
    budget (the config knob is MB-granular) so evictions are guaranteed;
    reads must keep succeeding via the foreground fallback.
    """
    store = ResultStore(budget_bytes=96 * 1024)
    manager = SessionManager(store=store)
    reads_ok = True
    try:
        sessions = [
            manager.create(
                make_scenario("highcard", n_rows=rows, seed=i),
                overrides={"top_k": 3},
            )
            for i in range(n_sessions)
        ]
        for _ in range(rounds):
            for session in sessions:
                session.mutate(session.frame.columns[0])
            manager.engine.wait_idle(120)
            for session in sessions:
                response = session.recommendations()
                reads_ok = reads_ok and bool(response["actions"])
        stats = store.stats()
    finally:
        manager.shutdown()
    return {
        "budget_bytes": stats["budget_bytes"],
        "bytes_peak": stats["bytes_peak"],
        "evictions": stats["evictions"],
        "reads_ok": reads_ok,
    }


# ----------------------------------------------------------------------
# Gating
# ----------------------------------------------------------------------
def comparable(baseline: dict | None, report: dict) -> bool:
    return (
        baseline is not None
        and baseline.get("benchmark") == report["benchmark"]
        and baseline.get("mode") == report["mode"]
        and baseline.get("sessions") == report["sessions"]
    )


def hard_failures(report: dict) -> list[str]:
    """Correctness gates — these refuse even ``--update-baseline``."""
    failures: list[str] = []
    saturation = report["saturation"]
    if saturation["rejected"] < 1:
        failures.append("forced saturation produced no 429")
    if not saturation["retry_after_valid"]:
        failures.append(
            f"Retry-After {saturation['retry_after_s']!r} outside [1, 60]"
        )
    if not saturation["backlog_within_limit"]:
        failures.append(
            f"backlog peaked at {saturation['backlog_peak']} above the "
            f"limit of {saturation['queue_limit']}"
        )
    if not saturation["retry_succeeded"]:
        failures.append("retried write after drain did not return 200")
    if not saturation["identical"]:
        failures.append(
            "post-drain recommendations differ from the unloaded reference"
        )
    if report["eviction"]["evictions"] < 1:
        failures.append("store under pressure evicted nothing")
    if not report["eviction"]["reads_ok"]:
        failures.append("reads failed under store eviction pressure")
    errors = sum(s["error_count"] for s in report["scenarios"].values())
    if errors:
        failures.append(f"{errors} transport/HTTP errors in mixed workload")
    return failures


def gate(report: dict, baseline: dict | None) -> list[str]:
    failures = hard_failures(report)
    fairness = report["aggregate"]["fairness_jain"]
    if fairness < FAIRNESS_FLOOR:
        failures.append(
            f"matrix-wide fairness {fairness:.3f} below the "
            f"{FAIRNESS_FLOOR} floor"
        )
    if comparable(baseline, report):
        base_p95 = baseline["aggregate"]["latency_ms"]["p95"]
        p95 = report["aggregate"]["latency_ms"]["p95"]
        if base_p95 > 0 and p95 > base_p95 * MAX_SLOWDOWN:
            failures.append(
                f"aggregate read p95 {p95:.1f} ms exceeds "
                f"{MAX_SLOWDOWN}x baseline {base_p95:.1f} ms"
            )
    return failures


# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=4,
                        help="concurrent sessions per scenario (default 4)")
    parser.add_argument("--duration", type=float, default=6.0,
                        help="seconds of mixed workload per scenario")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run for CI (smaller frames, "
                        "2s per scenario)")
    parser.add_argument("--scenarios", default=None,
                        help="comma-separated subset of "
                        f"{sorted(SCENARIOS)} (default: all)")
    parser.add_argument("--out", type=Path, default=Path("BENCH_load.json"))
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument("--update-baseline", action="store_true")
    args = parser.parse_args(argv)
    if args.quick:
        args.duration = 2.0
    names = (
        args.scenarios.split(",") if args.scenarios else sorted(SCENARIOS)
    )
    for name in names:
        if name not in SCENARIOS:
            parser.error(f"unknown scenario {name!r}")

    with contextlib.ExitStack() as stack:
        stack.callback(computation_cache.clear)
        # Base mutation (rolled back when the overlay exits), NOT an
        # overlay kwarg: the workload arrives on HTTP handler threads,
        # which never see the caller thread's overlay.
        stack.enter_context(config_overlay())
        config.precompute_debounce_s = 0.05
        manager = SessionManager()
        stack.callback(manager.shutdown)
        server = make_server(manager)
        stack.callback(server.stop)
        server.serve_background()
        base = server.address

        cpu_count = os.cpu_count() or 1
        mode = "quick" if args.quick else "full"
        print(f"load: {args.sessions} sessions x {args.duration}s per "
              f"scenario ({mode}), {cpu_count} cores, serving on {base}")

        scenarios: dict[str, dict] = {}
        for name in names:
            rows = SCENARIO_ROWS[name][0 if args.quick else 1]
            section = run_scenario(
                base, name, rows, args.sessions, args.duration, args.seed
            )
            scenarios[name] = section
            lat = section["latency_ms"]
            print(f"  {name:10s} rows={rows:<6d} reads={section['ops']['reads']:<5d} "
                  f"p50={lat['p50']:8.1f} ms p95={lat['p95']:8.1f} ms "
                  f"p99={lat['p99']:8.1f} ms jain={section['fairness_jain']:.3f} "
                  f"backlog_peak={section['backlog']['backlog_peak']}")

        print("  saturating (queue_limit=2)...")
        saturation = run_saturation(
            base, manager, rows=300 if args.quick else 800
        )
        print(f"  saturation  statuses={saturation['write_statuses']} "
              f"retry_after={saturation['retry_after_s']}s "
              f"backlog_peak={saturation['backlog_peak']} "
              f"identical={saturation['identical']}")

        eviction = run_eviction(
            rows=300 if args.quick else 800,
            n_sessions=3,
            rounds=2 if args.quick else 4,
        )
        print(f"  eviction    evictions={eviction['evictions']} "
              f"bytes_peak={eviction['bytes_peak']} "
              f"reads_ok={eviction['reads_ok']}")

        # Aggregate latency takes the worst scenario per percentile — a
        # conservative "no scenario may regress" stance that stays
        # meaningful when the matrix mixes fast and slow frame shapes.
        # Fairness aggregates per-session read totals across the whole
        # matrix (session i of every scenario sums into slot i): stable
        # where any single scenario's 2-second window is not.
        totals = [
            sum(s["reads_per_session"][i] for s in scenarios.values())
            for i in range(args.sessions)
        ]
        aggregate = {
            "reads": sum(s["ops"]["reads"] for s in scenarios.values()),
            "latency_ms": {
                "p50": max(s["latency_ms"]["p50"] for s in scenarios.values()),
                "p95": max(s["latency_ms"]["p95"] for s in scenarios.values()),
                "p99": max(s["latency_ms"]["p99"] for s in scenarios.values()),
            },
            "fairness_jain": round(jain(totals), 3),
            "fairness_jain_min": min(
                s["fairness_jain"] for s in scenarios.values()
            ),
        }

        report = {
            "schema": 1,
            "benchmark": "load",
            "mode": mode,
            "sessions": args.sessions,
            "duration_s": args.duration,
            "seed": args.seed,
            "cpu_count": cpu_count,
            "python": platform.python_version(),
            "scenarios": scenarios,
            "aggregate": aggregate,
            "saturation": saturation,
            "eviction": eviction,
        }
        args.out.write_text(json.dumps(report, indent=2) + "\n",
                            encoding="utf-8")
        print(f"  wrote {args.out}")

        blockers = hard_failures(report)
        if blockers:
            # Correctness precedes every mode, including --update-baseline.
            for failure in blockers:
                print(f"  GATE FAILED: {failure}")
            return 1

        if args.update_baseline:
            args.baseline.parent.mkdir(parents=True, exist_ok=True)
            args.baseline.write_text(
                json.dumps(report, indent=2) + "\n", encoding="utf-8"
            )
            print(f"  wrote baseline {args.baseline}")
            return 0

        baseline = load_baseline(args.baseline)
        if not comparable(baseline, report):
            print("  no comparable baseline; gating on absolute floors")
        failures = gate(report, baseline)
        for failure in failures:
            print(f"  GATE FAILED: {failure}")
        if not failures:
            print("  all gates passed")
        return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
