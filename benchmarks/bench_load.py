"""Production load harness: concurrent HTTP clients over a scenario matrix.

Drives N concurrent sessions against the **real HTTP API** (an in-process
``ThreadingHTTPServer`` on an ephemeral port — real sockets, real JSON,
real handler threads) with a mixed workload per session: column mutations
(touch writes), intent changes, and recommendation reads.  The frame
shapes come from the adversarial scenario matrix in
``repro.data.synthetic.SCENARIOS``:

- ``wide``       500+ columns (capped quantitative share),
- ``highcard``   nominal cardinality approaching the row count,
- ``skewed``     lognormal measures + Zipf category frequencies,
- ``datetime``   temporal-dominant at wildly different spans,
- ``nullheavy``  30-70% masked values per column.

Per scenario the harness reports read-latency percentiles (p50/p95/p99),
the precompute backlog depth over time (sampled from ``/healthz`` by a
monitor thread), and cross-session fairness as Jain's index over
per-session completed reads — the macro check on the pool's per-tag
round-robin.  Two focused sections ride along:

- ``saturation``: with ``config.precompute_queue_limit`` forced to 2 and
  a debounce window wide enough to hold timers armed, concurrent writes
  must be answered **429 + Retry-After** instead of queueing unboundedly;
  the sampled backlog must respect the bound; and once the backlog
  drains, recommendations served over HTTP must be **bit-identical** to
  an unloaded foreground computation of the same frame.
- ``eviction``: the same workload against a store whose byte budget is a
  few payloads wide — evictions must actually occur and reads must keep
  succeeding (foreground fallback, not errors).

Every run emits a ``BENCH_load.json`` trajectory artifact and gates:

- **hard** (correctness, even under ``--update-baseline``): at least one
  429 with a sane ``Retry-After`` under forced saturation, sampled
  backlog depth never above the bound, post-drain payloads identical to
  the unloaded reference, at least one store eviction under pressure,
  zero transport/HTTP errors in the mixed workload;
- **floor**: Jain fairness >= ``FAIRNESS_FLOOR`` across the session set;
- **trajectory**: aggregate read p95 must not exceed the committed
  baseline's (``benchmarks/baselines/BENCH_load.json``) by more than
  ``MAX_SLOWDOWN`` when one is comparable.

Run directly (CI runs ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_load.py \\
        [--quick] [--sessions N] [--duration S] [--out PATH] \\
        [--update-baseline]

``--fault`` switches to the fault-injection scenario
(``BENCH_load_fault.json``): the same mixed workload runs over the
*sharded multi-process tier* (2 workers + snapshot persistence behind
the real HTTP router) while one worker is SIGKILLed mid-workload and
restarted.  Hard gates (no baseline): requests routed to the dead shard
answer **503 + Retry-After** (never errors on the live shard), the
restarted worker recovers **warm** from session snapshots — its first
read is a store hit **>= 10x** faster than an unloaded cold foreground
pass and bit-identical to the pre-kill payload — and after the drain
every session's recommendations match the unloaded single-process
reference byte-for-byte.
"""

from __future__ import annotations

import argparse
import bisect
import contextlib
import itertools
import json
import os
import platform
import random
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_shared_scan import load_baseline  # noqa: E402

from repro import config, config_overlay  # noqa: E402
from repro.core import telemetry  # noqa: E402
from repro.core.executor.cache import computation_cache  # noqa: E402
from repro.data.synthetic import SCENARIOS, make_scenario  # noqa: E402
from repro.service import ResultStore, SessionManager, make_server  # noqa: E402
from repro.service import metrics as service_metrics  # noqa: E402
from repro.service.session import Session  # noqa: E402

#: Latency trajectory gate: aggregate read p95 may grow at most this much
#: over the committed baseline before the gate trips (lenient — shared CI
#: runners are noisy and the worst scenario's p95 is tail-of-the-tail;
#: the hard gates are the correctness ones).
MAX_SLOWDOWN = 4.0

#: Jain's-index floor over per-session read totals summed across the
#: whole scenario matrix.  Per-scenario indices are reported but not
#: gated: on a 1-core box one multi-second foreground pass skews any
#: single 2-second window, while the matrix-wide totals are stable.
FAIRNESS_FLOOR = 0.5

BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_load.json"

#: ``--fault`` recovery gate: the restarted worker's first canary read
#: (a store hit rehydrated from its session snapshot) must beat an
#: unloaded cold foreground pass over the same frame by at least this
#: factor.  Mirrors ``bench_service.py``'s RECOVERY_FLOOR.
RECOVERY_FLOOR = 10.0

#: Mixed-workload op mix (cumulative probability thresholds).
P_MUTATE = 0.15       # touch write: bumps the version, arms precompute
P_INTENT = 0.25       # set / clear intent (re-keys the whole pass)

#: Scenario frame sizes, (quick, full).  ``wide`` keeps its 500 columns
#: in both modes — width is the point — and scales rows instead.
SCENARIO_ROWS = {
    "wide": (300, 1500),
    "highcard": (800, 5000),
    "skewed": (800, 5000),
    "datetime": (800, 5000),
    "nullheavy": (800, 5000),
}


# ----------------------------------------------------------------------
# Tiny HTTP client (urllib, keep-alive not required)
# ----------------------------------------------------------------------
def call(
    base: str,
    method: str,
    path: str,
    body: dict | None = None,
) -> tuple[int, dict, dict]:
    """One API call -> (status, headers, parsed JSON body)."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return (
                response.status,
                dict(response.headers),
                json.loads(response.read().decode("utf-8")),
            )
    except urllib.error.HTTPError as exc:
        payload = exc.read().decode("utf-8")
        try:
            parsed = json.loads(payload)
        except ValueError:
            parsed = {"error": payload}
        return exc.code, dict(exc.headers), parsed


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over a pre-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[rank]


def jain(counts: list[int]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = one hog."""
    if not counts or sum(counts) == 0:
        return 0.0
    total = sum(counts)
    return (total * total) / (len(counts) * sum(c * c for c in counts))


def latency_histogram(latencies: list[float]) -> dict:
    """Client-side read latencies in the server's exact bucket layout.

    Same fixed power-of-two edges as every process's
    ``lux_http_request_seconds`` histogram, so per-bucket counts compare
    directly against the server's exposition at the end of the run.
    """
    bounds = telemetry.bucket_bounds(int(config.telemetry_histogram_buckets))
    counts = [0] * (len(bounds) + 1)
    for value in latencies:
        counts[bisect.bisect_left(bounds, value)] += 1
    return {"bounds": bounds, "counts": counts}


def scrape_metrics(base: str) -> str:
    """Raw Prometheus exposition from the server's ``/metrics``."""
    with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
        return response.read().decode("utf-8")


def cross_check_metrics(text: str, client_hist: dict) -> list[str]:
    """Server's recommendation-route histogram must dominate the client's.

    Two invariants tie the two views of the same requests together:

    - identical bucket bounds (both sides derive them from
      ``config.telemetry_histogram_buckets``), and
    - per-bound cumulative counts on the server **>= ** the client's:
      handler time is a lower bound on client RTT (so each read lands in
      the same-or-lower bucket server-side), and the server additionally
      counts reads the saturation/eviction sections issued.

    Violations mean the exposition pipeline is lying — a hard failure.
    """
    failures: list[str] = []
    try:
        samples = service_metrics.parse_exposition(text)
    except ValueError as exc:
        return [f"/metrics scrape unparseable: {exc}"]
    if not samples:
        return ["/metrics scrape contained no samples"]
    server_by_bound: dict[float, float] = {}
    server_inf = None
    for name, labels, value in samples:
        if (
            name == "lux_http_request_seconds_bucket"
            and labels.get("route") == "recommendations"
        ):
            if labels.get("le") == "+Inf":
                server_inf = value
            else:
                server_by_bound[float(labels["le"])] = value
    if server_inf is None:
        return [
            "no lux_http_request_seconds_bucket samples for "
            "route=recommendations in the scrape"
        ]
    bounds = client_hist["bounds"]
    if sorted(server_by_bound) != [float(b) for b in bounds]:
        return [
            f"server histogram has {len(server_by_bound)} finite buckets, "
            f"client has {len(bounds)} — bucket layouts diverged"
        ]
    client_cumulative = list(itertools.accumulate(client_hist["counts"]))
    for i, bound in enumerate(bounds):
        if server_by_bound[float(bound)] < client_cumulative[i]:
            failures.append(
                f"server cumulative count {server_by_bound[float(bound)]:.0f} "
                f"below client's {client_cumulative[i]} at le={bound}"
            )
    if server_inf < client_cumulative[-1]:
        failures.append(
            f"server total {server_inf:.0f} below client total "
            f"{client_cumulative[-1]}"
        )
    return failures


# ----------------------------------------------------------------------
# Backlog monitor: polls /healthz like an operator's dashboard would
# ----------------------------------------------------------------------
class Monitor:
    """Samples backlog depth / store bytes from ``/healthz`` on a thread."""

    def __init__(self, base: str, interval_s: float = 0.05) -> None:
        self.base = base
        self.interval_s = interval_s
        self.backlog: list[int] = []
        self.store_bytes: list[int] = []
        self.queued: list[int] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                _, _, health = call(self.base, "GET", "/healthz")
            except OSError:
                break
            self.backlog.append(int(health["precompute"]["backlog_depth"]))
            self.store_bytes.append(int(health["store"]["bytes"]))
            queues = health["pool"].get("queues", {})
            self.queued.append(
                sum(sum(band.values()) for band in queues.values())
            )
            self._stop.wait(self.interval_s)

    def __enter__(self) -> "Monitor":
        self._thread.start()
        return self

    def __exit__(self, *_exc: object) -> None:
        self._stop.set()
        self._thread.join(timeout=5)

    def summary(self) -> dict:
        samples = self.backlog or [0]
        return {
            "samples": len(self.backlog),
            "backlog_peak": max(samples),
            "backlog_mean": round(sum(samples) / len(samples), 2),
            "pool_queued_peak": max(self.queued or [0]),
        }


# ----------------------------------------------------------------------
# Mixed workload
# ----------------------------------------------------------------------
class Worker:
    """One session's client: seeded op mix until the shared deadline."""

    def __init__(
        self, base: str, session: dict, seed: int, deadline: float
    ) -> None:
        self.base = base
        self.session_id = session["session"]
        self.columns = session["columns"]
        self.rng = random.Random(seed)
        self.deadline = deadline
        self.read_latencies: list[float] = []
        self.ops = {"reads": 0, "mutates": 0, "intents": 0, "rejected": 0}
        self.errors: list[str] = []

    def run(self) -> None:
        sid = self.session_id
        while time.perf_counter() < self.deadline:
            roll = self.rng.random()
            if roll < P_MUTATE:
                column = self.rng.choice(self.columns)
                status, headers, _ = call(
                    self.base,
                    "POST",
                    f"/sessions/{sid}/mutate",
                    {"column": column},
                )
                self._account("mutates", status, headers)
            elif roll < P_INTENT:
                intent = (
                    [self.rng.choice(self.columns)]
                    if self.rng.random() < 0.7
                    else None
                )
                status, headers, _ = call(
                    self.base,
                    "POST",
                    f"/sessions/{sid}/intent",
                    {"intent": intent},
                )
                self._account("intents", status, headers)
            else:
                start = time.perf_counter()
                status, _, _ = call(
                    self.base, "GET", f"/sessions/{sid}/recommendations"
                )
                if status == 200:
                    self.read_latencies.append(time.perf_counter() - start)
                    self.ops["reads"] += 1
                else:
                    self.errors.append(f"read -> {status}")

    def _account(self, op: str, status: int, headers: dict) -> None:
        if status == 200:
            self.ops[op] += 1
        elif status == 429:
            # Backpressure is an expected, non-error answer: note it,
            # yield briefly (the real Retry-After would stall the whole
            # bench), and move on.
            self.ops["rejected"] += 1
            if "Retry-After" not in headers:
                self.errors.append("429 without Retry-After")
            time.sleep(0.02)
        else:
            self.errors.append(f"{op} -> {status}")


def run_scenario(
    base: str,
    name: str,
    rows: int,
    n_sessions: int,
    duration_s: float,
    seed: int,
) -> dict:
    """Mixed workload for one scenario; returns its report section."""
    sessions = []
    for i in range(n_sessions):
        status, _, info = call(
            base,
            "POST",
            "/sessions",
            {"dataset": f"synthetic-{name}", "rows": rows,
             "config": {"top_k": 3}},
        )
        assert status == 201, f"create {name} session -> {status}: {info}"
        sessions.append(info)

    deadline = time.perf_counter() + duration_s
    workers = [
        Worker(base, session, seed * 1000 + i, deadline)
        for i, session in enumerate(sessions)
    ]
    with Monitor(base) as monitor:
        threads = [
            threading.Thread(target=worker.run, daemon=True)
            for worker in workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    for session in sessions:
        call(base, "DELETE", f"/sessions/{session['session']}")

    latencies = sorted(
        latency for worker in workers for latency in worker.read_latencies
    )
    read_counts = [worker.ops["reads"] for worker in workers]
    ops = {
        key: sum(worker.ops[key] for worker in workers)
        for key in ("reads", "mutates", "intents", "rejected")
    }
    errors = [error for worker in workers for error in worker.errors]
    return {
        "rows": rows,
        "columns": len(sessions[0]["columns"]),
        "sessions": n_sessions,
        "ops": ops,
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50) * 1e3, 3),
            "p95": round(percentile(latencies, 0.95) * 1e3, 3),
            "p99": round(percentile(latencies, 0.99) * 1e3, 3),
        },
        "latency_histogram": latency_histogram(latencies),
        "reads_per_s": round(ops["reads"] / duration_s, 1),
        "fairness_jain": round(jain(read_counts), 3),
        "reads_per_session": read_counts,
        "backlog": monitor.summary(),
        "errors": errors[:10],
        "error_count": len(errors),
    }


# ----------------------------------------------------------------------
# Saturation: forced backpressure + post-drain identity
# ----------------------------------------------------------------------
def run_saturation(base: str, manager: SessionManager, rows: int) -> dict:
    """Force 429s at queue_limit=2, then prove the drain loses nothing.

    Base-mutates ``precompute_queue_limit`` / ``precompute_debounce_s``
    (base, not an overlay: the writes arrive on HTTP handler threads,
    which a caller-thread overlay would never reach) and restores both
    before returning.  A wide debounce keeps each write's timer armed,
    so three sessions' writes in quick succession must push the backlog
    to the bound and get the third rejected with 429 + Retry-After.
    After the drain, every session's recommendations over HTTP must be
    byte-identical to an unloaded in-process foreground pass over the
    same deterministic frame.
    """
    scenario = "skewed"
    sessions = []
    for _ in range(3):
        status, _, info = call(
            base,
            "POST",
            "/sessions",
            {"dataset": f"synthetic-{scenario}", "rows": rows,
             "config": {"top_k": 3}},
        )
        assert status == 201, f"saturation create -> {status}: {info}"
        sessions.append(info["session"])
    # Session creation schedules an immediate first pass; let those clear
    # (and do so *before* tightening the limit — a create's own admission
    # check must not trip on its siblings') so the saturation below is
    # exactly the writes we issue.
    assert manager.engine.wait_idle(120), "initial passes never settled"
    prior_limit = config.precompute_queue_limit
    prior_debounce = config.precompute_debounce_s
    config.precompute_queue_limit = 2
    config.precompute_debounce_s = 1.0

    rejected = 0
    retry_after = None
    backlog_peak = 0
    statuses = []
    try:
        with Monitor(base, interval_s=0.02) as monitor:
            for sid in sessions:
                status, headers, _ = call(
                    base,
                    "POST",
                    f"/sessions/{sid}/mutate",
                    {"column": "heavy_tail"},
                )
                statuses.append(status)
                if status == 429:
                    rejected += 1
                    retry_after = headers.get("Retry-After")
            backlog_now = manager.engine.stats()["backlog_depth"]
            # Drain: armed timers fire after the debounce, passes run dry.
            assert manager.engine.wait_idle(300), "saturation drain stalled"
            backlog_peak = max(monitor.backlog + [backlog_now])

        # The rejected write was refused before any state changed:
        # retrying it after the drain must succeed and precompute
        # normally (still at the tight limit — the backlog is empty now).
        retry_status, _, _ = call(
            base,
            "POST",
            f"/sessions/{sessions[-1]}/mutate",
            {"column": "heavy_tail"},
        )
        assert manager.engine.wait_idle(300), "post-retry drain stalled"
    finally:
        config.precompute_queue_limit = prior_limit
        config.precompute_debounce_s = prior_debounce

    # Identity: unloaded reference — same deterministic frame, same
    # overrides, pure foreground pass, no server, no store.
    reference = Session(
        "reference",
        make_scenario(scenario, n_rows=rows),
        overrides={"top_k": 3},
    ).recommendations()
    identical = True
    for sid in sessions:
        status, _, response = call(
            base, "GET", f"/sessions/{sid}/recommendations"
        )
        if status != 200 or response["actions"] != reference["actions"]:
            identical = False
    for sid in sessions:
        call(base, "DELETE", f"/sessions/{sid}")
    retry_after_int = int(retry_after) if retry_after else 0
    return {
        "queue_limit": 2,
        "write_statuses": statuses,
        "rejected": rejected,
        "retry_after_s": retry_after_int,
        "retry_after_valid": 1 <= retry_after_int <= 60,
        "backlog_peak": backlog_peak,
        "backlog_within_limit": backlog_peak <= 2,
        "retry_succeeded": retry_status == 200,
        "identical": identical,
    }


# ----------------------------------------------------------------------
# Eviction: the store under memory pressure
# ----------------------------------------------------------------------
def run_eviction(rows: int, n_sessions: int, rounds: int) -> dict:
    """Mutate/read loop against a store a few payloads wide.

    Uses a dedicated in-process manager with an explicit tiny byte
    budget (the config knob is MB-granular) so evictions are guaranteed;
    reads must keep succeeding via the foreground fallback.
    """
    store = ResultStore(budget_bytes=96 * 1024)
    manager = SessionManager(store=store)
    reads_ok = True
    try:
        sessions = [
            manager.create(
                make_scenario("highcard", n_rows=rows, seed=i),
                overrides={"top_k": 3},
            )
            for i in range(n_sessions)
        ]
        for _ in range(rounds):
            for session in sessions:
                session.mutate(session.frame.columns[0])
            manager.engine.wait_idle(120)
            for session in sessions:
                response = session.recommendations()
                reads_ok = reads_ok and bool(response["actions"])
        stats = store.stats()
    finally:
        manager.shutdown()
    return {
        "budget_bytes": stats["budget_bytes"],
        "bytes_peak": stats["bytes_peak"],
        "evictions": stats["evictions"],
        "reads_ok": reads_ok,
    }


# ----------------------------------------------------------------------
# Fault injection: kill/restart a shard worker mid-workload
# ----------------------------------------------------------------------
def fault_failures(report: dict) -> list[str]:
    """Hard gates for ``--fault`` — all correctness, no baseline."""
    failures: list[str] = []
    if report["ops"]["unavailable"] < 1:
        failures.append("killing a worker produced no 503 on its shard")
    if not report["retry_after_valid"]:
        failures.append("503 during the outage lacked a sane Retry-After")
    fault = report["fault"]
    if fault.get("degraded_status") != "degraded":
        failures.append(
            f"healthz reported {fault.get('degraded_status')!r} during the "
            "outage, expected 'degraded'"
        )
    if fault.get("victim_stanza") != "worker_unreachable":
        failures.append(
            "healthz lacked the worker_unreachable stanza for the dead shard"
        )
    if not fault.get("survivor_ok"):
        failures.append("surviving worker not 'ok' in degraded healthz")
    if report["error_count"]:
        failures.append(
            f"{report['error_count']} workload errors "
            f"(first: {report['errors'][:3]})"
        )
    recovery = report["recovery"]
    if recovery["warm_origin"] in (None, "foreground"):
        failures.append(
            f"post-restart canary read origin {recovery['warm_origin']!r} "
            "— not served from the restored snapshot pass"
        )
    if not report["identity"]["canary"]:
        failures.append(
            "post-restart canary payload differs from the pre-kill payload "
            "or the unloaded reference"
        )
    if not report["identity"]["post_drain"]:
        failures.append(
            "post-drain recommendations differ from the unloaded "
            "single-process reference"
        )
    if recovery["speedup"] < RECOVERY_FLOOR:
        failures.append(
            f"warm recovery {recovery['speedup']:.1f}x below the "
            f"{RECOVERY_FLOOR}x floor (cold {recovery['cold_ms']} ms, "
            f"warm {recovery['warm_ms']} ms)"
        )
    return failures


def run_fault(args: argparse.Namespace) -> int:
    """Mixed workload over the sharded tier with a mid-run worker kill.

    Two spawned workers behind the real HTTP router, snapshots on.
    Quiescent *canary* sessions sit on the victim shard while workload
    sessions hammer both shards with mutates and reads.  At 40% of the
    duration the victim worker is SIGKILLed (requests to its shard must
    answer 503 + Retry-After; the live shard must never fail); at 70% it
    is restarted and restores its sessions from snapshots.  Each
    canary's first read after the tier is healthy again must be warm —
    served from the restored pass and bit-identical to the pre-kill
    payload — and the fastest of them at least ``RECOVERY_FLOOR``x
    quicker than an unloaded cold foreground pass over the same frame.
    After the drain every session must match the unloaded
    single-process reference byte-for-byte.
    """
    import shutil
    import tempfile

    from repro.service import Supervisor, shard_for

    scenario = "skewed"
    # Large frames on purpose: the warm path (snapshot rehydration + one
    # store hit over RPC/HTTP) is near-constant in rows while a cold
    # foreground pass scales with them — small frames would measure the
    # transport, not the recovery.
    rows = 30_000 if args.quick else 60_000
    duration = max(args.duration, 6.0)
    n_workers = 2
    cpu_count = os.cpu_count() or 1
    mode = "quick" if args.quick else "full"
    snapshot_dir = tempfile.mkdtemp(prefix="lux-bench-fault-")
    with contextlib.ExitStack() as stack:
        stack.callback(computation_cache.clear)
        stack.callback(
            lambda: shutil.rmtree(snapshot_dir, ignore_errors=True)
        )
        stack.enter_context(config_overlay())
        # Worker processes inherit a snapshot of the *base* config taken
        # when the supervisor spawns them — mutate the base (rolled back
        # by the overlay above) before building the tier.
        config.precompute_debounce_s = 0.25
        supervisor = Supervisor(
            n_workers=n_workers, snapshot_dir=snapshot_dir
        )
        stack.callback(supervisor.stop)
        server = make_server(supervisor=supervisor)
        stack.callback(server.stop)
        server.serve_background()
        base = server.address
        print(
            f"load --fault: {n_workers} workers, {rows} rows, "
            f"{duration:.0f}s workload ({mode}), {cpu_count} cores, "
            f"serving on {base}"
        )

        def create() -> dict:
            status, _, info = call(
                base,
                "POST",
                "/sessions",
                {"dataset": f"synthetic-{scenario}", "rows": rows,
                 "config": {"top_k": 3}},
            )
            assert status == 201, f"fault create -> {status}: {info}"
            return info

        # Canaries: quiescent sessions whose warm first-read after the
        # restart we time.  Session ids are random, so create six and
        # pick the shard that owns the most as the victim — one-shot
        # timings on a noisy 1-core CI box flake, so the warm number is
        # the minimum over several genuine hydrating first reads.
        canaries = [create()["session"] for _ in range(6)]
        by_shard: dict[int, list[str]] = {}
        for cid in canaries:
            by_shard.setdefault(shard_for(cid, n_workers), []).append(cid)
        victim = max(by_shard, key=lambda s: len(by_shard[s]))
        victim_canaries = by_shard[victim]
        assert len(victim_canaries) >= 2  # pigeonhole: 6 ids, 2 shards

        # Keep creating workload sessions until every shard owns at
        # least two — the outage must be *observed* (503s on the victim
        # shard) for the gates to mean anything.
        sessions: list[dict] = []
        shard_counts = [0] * n_workers
        for _ in range(20):
            info = create()
            shard_counts[shard_for(info["session"], n_workers)] += 1
            sessions.append(info)
            if len(sessions) >= 4 and min(shard_counts) >= 2:
                break
        assert min(shard_counts) >= 1, "a shard ended up with no sessions"
        assert supervisor.wait_idle(600), "initial passes never settled"

        references: dict[str, dict] = {}
        for cid in victim_canaries:
            status, _, response = call(
                base, "GET", f"/sessions/{cid}/recommendations"
            )
            assert status == 200, f"canary reference read -> {status}"
            assert response["freshness"]["origin"] != "foreground"
            references[cid] = response

        # Unloaded cold reference: what recovering *without* snapshots
        # would cost — rebuild the frame from source and run a foreground
        # pass (the same cold-start definition ``bench_service.py``'s
        # recovery section gates on).  Best of two, computation cache
        # cleared in between so the second pass is genuinely cold too.
        cold_samples = []
        for _ in range(2):
            computation_cache.clear()
            start = time.perf_counter()
            cold_reference = Session(
                "cold-reference",
                make_scenario(scenario, n_rows=rows),
                overrides={"top_k": 3},
            ).recommendations()
            cold_samples.append(time.perf_counter() - start)
        cold_s = min(cold_samples)

        lock = threading.Lock()
        ops = {"reads": 0, "mutates": 0, "rejected": 0, "unavailable": 0}
        errors: list[str] = []
        retry_after_valid = [True]
        deadline = time.perf_counter() + duration

        def account(
            kind: str, shard: int, status: int, headers: dict
        ) -> None:
            with lock:
                if status == 200:
                    ops[kind] += 1
                elif status == 429:
                    ops["rejected"] += 1
                elif status == 503 and shard == victim:
                    # The expected outage answer on the dead shard.
                    ops["unavailable"] += 1
                    retry = headers.get("Retry-After", "")
                    if not (retry.isdigit() and 1 <= int(retry) <= 60):
                        retry_after_valid[0] = False
                elif status == 503:
                    errors.append(f"{kind} -> 503 on live shard {shard}")
                else:
                    errors.append(f"{kind} -> {status}")
            if status in (429, 503):
                time.sleep(0.02)

        def work(info: dict, seed: int) -> None:
            rng = random.Random(seed)
            sid = info["session"]
            shard = shard_for(sid, n_workers)
            columns = info["columns"]
            while time.perf_counter() < deadline:
                # Mutates and reads only — no intent changes, so the
                # post-drain state must equal the intentless reference.
                if rng.random() < P_MUTATE:
                    status, headers, _ = call(
                        base,
                        "POST",
                        f"/sessions/{sid}/mutate",
                        {"column": rng.choice(columns)},
                    )
                    account("mutates", shard, status, headers)
                else:
                    status, headers, _ = call(
                        base, "GET", f"/sessions/{sid}/recommendations"
                    )
                    account("reads", shard, status, headers)

        fault_log: dict = {}

        def inject() -> None:
            time.sleep(duration * 0.4)
            supervisor.kill_worker(victim)
            fault_log["killed_at_pct"] = 40
            # /healthz must answer *during* the outage, flag the dead
            # shard, and keep reporting the survivor as healthy.
            _, _, health = call(base, "GET", "/healthz")
            stanzas = {
                w.get("shard"): w for w in health.get("workers", [])
            }
            fault_log["degraded_status"] = health.get("status")
            fault_log["victim_stanza"] = stanzas.get(victim, {}).get(
                "status"
            )
            fault_log["survivor_ok"] = all(
                stanzas.get(s, {}).get("status") == "ok"
                for s in range(n_workers)
                if s != victim
            )
            time.sleep(duration * 0.3)
            restarted = time.perf_counter()
            supervisor.restart_worker(victim)
            # Ready = the tier is healthy again; the worker restores its
            # shard's snapshots before serving its first RPC, so this
            # also bounds the restore.  (Includes interpreter spawn —
            # reported, not gated.)
            ready_deadline = time.perf_counter() + 120
            while time.perf_counter() < ready_deadline:
                _, _, health = call(base, "GET", "/healthz")
                if health.get("status") == "ok":
                    break
                time.sleep(0.1)
            fault_log["restart_to_ready_s"] = round(
                time.perf_counter() - restarted, 2
            )

        threads = [
            threading.Thread(
                target=work, args=(info, args.seed * 1000 + i), daemon=True
            )
            for i, info in enumerate(sessions)
        ]
        injector = threading.Thread(target=inject, daemon=True)
        with Monitor(base) as monitor:
            for thread in threads:
                thread.start()
            injector.start()
            for thread in threads:
                thread.join()
            injector.join()

        # Warm recovery: each quiescent canary's first read after the
        # restart is exactly the restored-snapshot path — lazy results
        # rehydration plus a store hit, never a recomputation.  Timed
        # after the workload drain so warm and cold are both measured
        # unloaded, and at the supervisor RPC layer: that is the tier's
        # recovery path, while the extra HTTP hop plus the bench client's
        # own megabyte ``json.loads`` would measure the harness.  The
        # router path is still verified below via an HTTP identity read.
        assert supervisor.wait_idle(600), "post-fault drain stalled"
        warm_samples: list[float] = []
        warm_payloads: dict[str, dict] = {}
        for cid in victim_canaries:
            start = time.perf_counter()
            raw = supervisor.recommendations(cid)
            warm_samples.append(time.perf_counter() - start)
            warm_payloads[cid] = json.loads(raw)
        warm_s = min(warm_samples)
        origins = {
            p["freshness"]["origin"] for p in warm_payloads.values()
        }
        warm_origin = (
            "foreground" if "foreground" in origins else origins.pop()
        )
        speedup = cold_s / warm_s if warm_s > 0 else 0.0
        status, _, warm_http = call(
            base, "GET", f"/sessions/{victim_canaries[0]}/recommendations"
        )
        ref_actions = cold_reference["actions"]
        canary_identical = (
            status == 200
            and warm_http["actions"] == ref_actions
            and all(
                warm_payloads[cid]["actions"] == ref_actions
                and references[cid]["actions"] == ref_actions
                for cid in victim_canaries
            )
        )
        post_drain = True
        for info in sessions:
            read_status, _, response = call(
                base, "GET", f"/sessions/{info['session']}/recommendations"
            )
            if read_status != 200 or response["actions"] != ref_actions:
                post_drain = False

        report = {
            "schema": 1,
            "benchmark": "load_fault",
            "mode": mode,
            "workers": n_workers,
            "sessions": len(sessions) + len(canaries),
            "canaries_on_victim": len(victim_canaries),
            "rows": rows,
            "duration_s": duration,
            "seed": args.seed,
            "cpu_count": cpu_count,
            "python": platform.python_version(),
            "victim_shard": victim,
            "workload_sessions_per_shard": shard_counts,
            "ops": ops,
            "retry_after_valid": retry_after_valid[0],
            "fault": fault_log,
            "backlog": monitor.summary(),
            "recovery": {
                "cold_ms": round(cold_s * 1e3, 1),
                "warm_ms": round(warm_s * 1e3, 1),
                "cold_samples_ms": [round(s * 1e3, 1) for s in cold_samples],
                "warm_samples_ms": [round(s * 1e3, 1) for s in warm_samples],
                "speedup": round(speedup, 1),
                "warm_origin": warm_origin,
            },
            "identity": {
                "canary": canary_identical,
                "post_drain": post_drain,
            },
            "errors": errors[:10],
            "error_count": len(errors),
        }
        args.out.write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
        print(
            f"  workload  ops={ops} shard_sessions={shard_counts} "
            f"victim={victim}"
        )
        print(
            f"  outage    healthz={fault_log.get('degraded_status')!r} "
            f"victim_stanza={fault_log.get('victim_stanza')!r} "
            f"503s={ops['unavailable']} "
            f"restart_to_ready={fault_log.get('restart_to_ready_s')}s"
        )
        print(
            f"  recovery  cold {report['recovery']['cold_ms']} ms, warm "
            f"{report['recovery']['warm_ms']} ms "
            f"({report['recovery']['speedup']:.1f}x, "
            f"origin={warm_origin!r}) canary_identical={canary_identical} "
            f"post_drain_identical={post_drain}"
        )
        print(f"  wrote {args.out}")

        failures = fault_failures(report)
        for failure in failures:
            print(f"  GATE FAILED: {failure}")
        if not failures:
            print("  all gates passed")
        return 1 if failures else 0


# ----------------------------------------------------------------------
# Gating
# ----------------------------------------------------------------------
def comparable(baseline: dict | None, report: dict) -> bool:
    return (
        baseline is not None
        and baseline.get("benchmark") == report["benchmark"]
        and baseline.get("mode") == report["mode"]
        and baseline.get("sessions") == report["sessions"]
    )


def hard_failures(report: dict) -> list[str]:
    """Correctness gates — these refuse even ``--update-baseline``."""
    failures: list[str] = []
    saturation = report["saturation"]
    if saturation["rejected"] < 1:
        failures.append("forced saturation produced no 429")
    if not saturation["retry_after_valid"]:
        failures.append(
            f"Retry-After {saturation['retry_after_s']!r} outside [1, 60]"
        )
    if not saturation["backlog_within_limit"]:
        failures.append(
            f"backlog peaked at {saturation['backlog_peak']} above the "
            f"limit of {saturation['queue_limit']}"
        )
    if not saturation["retry_succeeded"]:
        failures.append("retried write after drain did not return 200")
    if not saturation["identical"]:
        failures.append(
            "post-drain recommendations differ from the unloaded reference"
        )
    if report["eviction"]["evictions"] < 1:
        failures.append("store under pressure evicted nothing")
    if not report["eviction"]["reads_ok"]:
        failures.append("reads failed under store eviction pressure")
    errors = sum(s["error_count"] for s in report["scenarios"].values())
    if errors:
        failures.append(f"{errors} transport/HTTP errors in mixed workload")
    failures.extend(report.get("metrics_check", {}).get("failures", []))
    return failures


def gate(report: dict, baseline: dict | None) -> list[str]:
    failures = hard_failures(report)
    fairness = report["aggregate"]["fairness_jain"]
    if fairness < FAIRNESS_FLOOR:
        failures.append(
            f"matrix-wide fairness {fairness:.3f} below the "
            f"{FAIRNESS_FLOOR} floor"
        )
    if comparable(baseline, report):
        base_p95 = baseline["aggregate"]["latency_ms"]["p95"]
        p95 = report["aggregate"]["latency_ms"]["p95"]
        if base_p95 > 0 and p95 > base_p95 * MAX_SLOWDOWN:
            failures.append(
                f"aggregate read p95 {p95:.1f} ms exceeds "
                f"{MAX_SLOWDOWN}x baseline {base_p95:.1f} ms"
            )
    return failures


# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=4,
                        help="concurrent sessions per scenario (default 4)")
    parser.add_argument("--duration", type=float, default=6.0,
                        help="seconds of mixed workload per scenario")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run for CI (smaller frames, "
                        "2s per scenario)")
    parser.add_argument("--scenarios", default=None,
                        help="comma-separated subset of "
                        f"{sorted(SCENARIOS)} (default: all)")
    parser.add_argument("--fault", action="store_true",
                        help="fault-injection mode: mixed workload over "
                        "the sharded multi-process tier with a mid-run "
                        "worker kill/restart (hard gates, no baseline)")
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument("--metrics-out", type=Path, default=None,
                        help="also write the end-of-run /metrics scrape "
                        "(Prometheus text) to this path")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument("--update-baseline", action="store_true")
    args = parser.parse_args(argv)
    if args.quick:
        args.duration = 2.0
    if args.out is None:
        args.out = Path(
            "BENCH_load_fault.json" if args.fault else "BENCH_load.json"
        )
    if args.fault:
        return run_fault(args)
    names = (
        args.scenarios.split(",") if args.scenarios else sorted(SCENARIOS)
    )
    for name in names:
        if name not in SCENARIOS:
            parser.error(f"unknown scenario {name!r}")

    with contextlib.ExitStack() as stack:
        stack.callback(computation_cache.clear)
        # Base mutation (rolled back when the overlay exits), NOT an
        # overlay kwarg: the workload arrives on HTTP handler threads,
        # which never see the caller thread's overlay.
        stack.enter_context(config_overlay())
        config.precompute_debounce_s = 0.05
        manager = SessionManager()
        stack.callback(manager.shutdown)
        server = make_server(manager)
        stack.callback(server.stop)
        server.serve_background()
        base = server.address

        cpu_count = os.cpu_count() or 1
        mode = "quick" if args.quick else "full"
        print(f"load: {args.sessions} sessions x {args.duration}s per "
              f"scenario ({mode}), {cpu_count} cores, serving on {base}")

        scenarios: dict[str, dict] = {}
        for name in names:
            rows = SCENARIO_ROWS[name][0 if args.quick else 1]
            section = run_scenario(
                base, name, rows, args.sessions, args.duration, args.seed
            )
            scenarios[name] = section
            lat = section["latency_ms"]
            print(f"  {name:10s} rows={rows:<6d} reads={section['ops']['reads']:<5d} "
                  f"p50={lat['p50']:8.1f} ms p95={lat['p95']:8.1f} ms "
                  f"p99={lat['p99']:8.1f} ms jain={section['fairness_jain']:.3f} "
                  f"backlog_peak={section['backlog']['backlog_peak']}")

        print("  saturating (queue_limit=2)...")
        saturation = run_saturation(
            base, manager, rows=300 if args.quick else 800
        )
        print(f"  saturation  statuses={saturation['write_statuses']} "
              f"retry_after={saturation['retry_after_s']}s "
              f"backlog_peak={saturation['backlog_peak']} "
              f"identical={saturation['identical']}")

        eviction = run_eviction(
            rows=300 if args.quick else 800,
            n_sessions=3,
            rounds=2 if args.quick else 4,
        )
        print(f"  eviction    evictions={eviction['evictions']} "
              f"bytes_peak={eviction['bytes_peak']} "
              f"reads_ok={eviction['reads_ok']}")

        # End-of-run exposition cross-check: the client-observed read
        # histogram (all scenarios pooled) must be dominated bucket-wise
        # by the server's own lux_http_request_seconds for the same route.
        empty = latency_histogram([])
        pooled = {
            "bounds": empty["bounds"],
            "counts": [
                sum(s["latency_histogram"]["counts"][i]
                    for s in scenarios.values())
                for i in range(len(empty["counts"]))
            ],
        }
        exposition = scrape_metrics(base)
        if args.metrics_out is not None:
            args.metrics_out.write_text(exposition, encoding="utf-8")
            print(f"  wrote {args.metrics_out}")
        metrics_failures = cross_check_metrics(exposition, pooled)
        print(f"  metrics     scrape={len(exposition)}B "
              f"cross_check={'ok' if not metrics_failures else 'FAILED'}")

        # Aggregate latency takes the worst scenario per percentile — a
        # conservative "no scenario may regress" stance that stays
        # meaningful when the matrix mixes fast and slow frame shapes.
        # Fairness aggregates per-session read totals across the whole
        # matrix (session i of every scenario sums into slot i): stable
        # where any single scenario's 2-second window is not.
        totals = [
            sum(s["reads_per_session"][i] for s in scenarios.values())
            for i in range(args.sessions)
        ]
        aggregate = {
            "reads": sum(s["ops"]["reads"] for s in scenarios.values()),
            "latency_ms": {
                "p50": max(s["latency_ms"]["p50"] for s in scenarios.values()),
                "p95": max(s["latency_ms"]["p95"] for s in scenarios.values()),
                "p99": max(s["latency_ms"]["p99"] for s in scenarios.values()),
            },
            "fairness_jain": round(jain(totals), 3),
            "fairness_jain_min": min(
                s["fairness_jain"] for s in scenarios.values()
            ),
        }

        report = {
            "schema": 1,
            "benchmark": "load",
            "mode": mode,
            "sessions": args.sessions,
            "duration_s": args.duration,
            "seed": args.seed,
            "cpu_count": cpu_count,
            "python": platform.python_version(),
            "scenarios": scenarios,
            "aggregate": aggregate,
            "saturation": saturation,
            "eviction": eviction,
            "metrics_check": {
                "scrape_bytes": len(exposition),
                "client_reads": pooled["counts"],
                "failures": metrics_failures,
            },
        }
        args.out.write_text(json.dumps(report, indent=2) + "\n",
                            encoding="utf-8")
        print(f"  wrote {args.out}")

        blockers = hard_failures(report)
        if blockers:
            # Correctness precedes every mode, including --update-baseline.
            for failure in blockers:
                print(f"  GATE FAILED: {failure}")
            return 1

        if args.update_baseline:
            args.baseline.parent.mkdir(parents=True, exist_ok=True)
            args.baseline.write_text(
                json.dumps(report, indent=2) + "\n", encoding="utf-8"
            )
            print(f"  wrote baseline {args.baseline}")
            return 0

        baseline = load_baseline(args.baseline)
        if not comparable(baseline, report):
            print("  no comparable baseline; gating on absolute floors")
        failures = gate(report, baseline)
        for failure in failures:
            print(f"  GATE FAILED: {failure}")
        if not failures:
            print("  all gates passed")
        return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
