"""§1/§8 claim: "Lux adds no more than two seconds of overhead on top of
pandas for over 98% of datasets in the UCI repository."

Samples dataset sizes from the UCI-like long-tail distribution, measures
per-print overhead (all-opt minus pandas) on synthetic frames of those
sizes, and reports the percentile of datasets within the 2-second budget.
Absolute times are hardware-dependent; the claim's *shape* is that the
overhead distribution is long-tailed with the overwhelming mass far below
the budget.
"""

from __future__ import annotations

import time


from conftest import run_report, emit, scaled
from repro.bench import condition, format_table
from repro.data import DatasetSize, make_uci_like, sample_uci_sizes

N_DATASETS = 25
BUDGET_SECONDS = 2.0
# Cap materialized sizes so the bench stays laptop-friendly; the paper's
# 98% claim is exactly about the mass of the distribution below the caps.
MAX_ROWS = scaled(60_000)
MAX_COLS = 120


def _overhead(size: DatasetSize) -> float:
    frame = make_uci_like(size, seed=size.rows % 97)
    with condition("pandas"):
        start = time.perf_counter()
        repr(frame)
        t_pandas = time.perf_counter() - start
    frame._expire()
    with condition("all-opt"):
        start = time.perf_counter()
        repr(frame)
        t_lux = time.perf_counter() - start
    return max(t_lux - t_pandas, 0.0)


def test_uci_overhead_kernel(benchmark):
    size = DatasetSize(rows=scaled(5_000), cols=15)
    benchmark.pedantic(lambda: _overhead(size), rounds=1, iterations=1)


def test_uci_overhead_report(benchmark):
    def _report():
        sizes = [
            DatasetSize(rows=min(s.rows, MAX_ROWS), cols=min(s.cols, MAX_COLS))
            for s in sample_uci_sizes(N_DATASETS, seed=11)
        ]
        overheads = []
        rows = []
        for size in sizes:
            ov = _overhead(size)
            overheads.append(ov)
            rows.append([size.rows, size.cols, f"{ov:.3f}"])
        rows.sort(key=lambda r: float(r[2]))
        emit(format_table(
            ["rows", "cols", "overhead [s]"],
            rows,
            title="UCI-size census — per-print overhead (all-opt − pandas)",
        ))
        within = sum(1 for ov in overheads if ov <= BUDGET_SECONDS) / len(overheads)
        emit(f"fraction within the {BUDGET_SECONDS:.0f}s budget: {within:.1%} "
             "(paper claims >98%)")
        assert within >= 0.9

    run_report(benchmark, _report)
