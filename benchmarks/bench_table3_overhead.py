"""Table 3: per-cell-type overhead of Lux on top of pandas.

Runs both notebooks under all-opt and pandas and reports the overhead
(all-opt minus pandas) for print-df, print-series, and non-Lux cells.
Paper shape: print-df dominates; print-series is ~10-30x smaller; non-Lux
cells incur (near) zero overhead.
"""

from __future__ import annotations


from conftest import run_report, emit, scaled
from repro.bench import build_airbnb_notebook, build_communities_notebook, format_table

AIRBNB_N = scaled(16_000)
COMM_N = scaled(1_000)


def _overheads(builder, n_rows):
    nb = builder(n_rows)
    all_opt = nb.run("all-opt")
    pandas = nb.run("pandas")
    return nb, all_opt, pandas


def test_table3_airbnb(benchmark):
    nb = build_airbnb_notebook(AIRBNB_N)
    result = benchmark.pedantic(
        lambda: nb.run("all-opt"), rounds=1, iterations=1
    )
    assert result.count("print_df") == 14


def test_table3_report(benchmark):
    def _report():
        rows = []
        for label, builder, n in (
            ("Airbnb", build_airbnb_notebook, AIRBNB_N),
            ("Communities", build_communities_notebook, COMM_N),
        ):
            nb, all_opt, pandas = _overheads(builder, n)
            counts = nb.counts()
            for kind, pretty in (
                ("print_df", "Print df"),
                ("print_series", "Print Series"),
                ("code", "Non-Lux"),
            ):
                overhead = all_opt.total(kind) - pandas.total(kind)
                rows.append(
                    [
                        label,
                        pretty,
                        counts[kind],
                        f"{max(overhead, 0.0):.3f} s",
                        f"{pandas.total(kind):.3f} s",
                    ]
                )
        emit(format_table(
            ["dataset", "cell type", "N", "overhead (all-opt − pandas)", "pandas"],
            rows,
            title=(
                f"Table 3 — overhead by cell type "
                f"(Airbnb {AIRBNB_N} rows, Communities {COMM_N} rows)"
            ),
        ))
        # Shape assertions: print-df overhead dominates, non-Lux ~ 0.
        nb, all_opt, pandas = _overheads(build_airbnb_notebook, scaled(4_000))
        df_over = all_opt.total("print_df") - pandas.total("print_df")
        series_over = all_opt.total("print_series") - pandas.total("print_series")
        code_over = all_opt.total("code") - pandas.total("code")
        assert df_over > series_over
        assert code_over < 0.5 * df_over + 0.1

    run_report(benchmark, _report)
