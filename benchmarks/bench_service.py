"""Always-on service benchmark: cold vs precomputed reads, with gating.

Measures the service's read path over the same frame shape as the
shared-scan benchmark (6 measures x 3 dims, a 40+-candidate
recommendation pass) under two conditions:

- ``cold_read``:        the store has nothing for the current version; a
  ``session.recommendations()`` call runs a full foreground pass
  (compile, execute, rank, serialize) before returning — the
  compute-on-demand world the paper argues against.
- ``precomputed_read``: the frame was mutated, the background engine ran
  its pass during the idle gap, and the read returns from the versioned
  store — the always-on world.  This is a dictionary lookup and must be
  **>= 5x** faster than the cold read (it is typically >100x).

A multi-session section precomputes N sessions concurrently through the
fair-share pool and reports store-hit read throughput — the serving-side
number the ROADMAP's multi-user north star cares about.

Every run emits a ``BENCH_service.json`` trajectory artifact and gates:

- the precomputed read must be a store hit (``origin == "precompute"``)
  and its payload byte-identical to a foreground recomputation of the
  same version;
- the precompute speedup must clear the 5x acceptance floor, and must not
  regress below ``TOLERANCE`` of the committed baseline
  (``benchmarks/baselines/BENCH_service.json``) when one is comparable.

Run directly (CI runs ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_service.py \\
        [--quick] [--rows N] [--sessions N] [--out PATH] [--update-baseline]

``--multiproc`` switches to the sharded-tier benchmark
(``BENCH_service_multiproc.json``): a worker-count scaling section
(supervisor with 1 vs 4 worker processes; precompute wall-clock and
threaded store-read throughput must both scale **>= 1.8x** — measured
only on hosts with >= 4 cores, loudly skipped otherwise) and a restart
recovery section (warm restore from session snapshots must be **>= 10x**
faster than a cold rebuild, with bit-identical payloads) that runs on
every host.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_shared_scan import build_frame, load_baseline  # noqa: E402

from repro import LuxDataFrame, config, config_overlay  # noqa: E402
from repro.core import pool  # noqa: E402
from repro.core.executor.cache import computation_cache  # noqa: E402
from repro.service import SessionManager  # noqa: E402

#: Allowed fraction of the baseline speedup before the gate trips.
TOLERANCE = 0.6

#: Acceptance floor: precomputed reads must be at least this much faster
#: than cold reads (the issue's bar; in practice the ratio is >100x).
PRECOMPUTE_FLOOR = 5.0

#: Warm restart (snapshot restore + first store-hit read) vs cold start
#: (rebuild the data + foreground pass) acceptance floor.
RECOVERY_FLOOR = 10.0

#: Required speedup at 4 workers vs 1 for both precompute wall-clock and
#: read throughput (gated only on hosts with >= 4 cores).
SCALING_FLOOR = 1.8

BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_service.json"
MULTIPROC_BASELINE_PATH = (
    Path(__file__).parent / "baselines" / "BENCH_service_multiproc.json"
)


def build_lux_frame(rows: int, seed: int = 0) -> LuxDataFrame:
    """The shared-scan benchmark frame, wrapped for the always-on path."""
    plain = build_frame(rows, seed)
    return LuxDataFrame({name: plain.column(name) for name in plain.columns})


def touch(session) -> None:
    """A content mutation: bumps the version, arms the precompute engine."""
    session.frame["q0"] = session.frame["q0"]


def measure_cold(manager: SessionManager, rows: int, rounds: int) -> float:
    """Foreground read latency with nothing precomputed."""
    config.precompute = False
    session = manager.create(build_lux_frame(rows))
    times = []
    for _ in range(rounds):
        touch(session)  # new version: the store has nothing for it
        start = time.perf_counter()
        response = session.recommendations()
        times.append(time.perf_counter() - start)
        assert response["freshness"]["origin"] == "foreground"
    manager.close(session.id)
    return min(times)


def measure_precomputed(
    manager: SessionManager, rows: int, rounds: int
) -> tuple[float, bool]:
    """Store-hit read latency after a mutation + idle period."""
    config.precompute = True
    session = manager.create(build_lux_frame(rows))
    times = []
    identical = True
    for _ in range(rounds):
        touch(session)
        assert manager.engine.wait_idle(120), "precompute never settled"
        start = time.perf_counter()
        response = session.recommendations()
        times.append(time.perf_counter() - start)
        # Incremental passes mix recomputed and carried provenance; any
        # of the three store-served origins means zero foreground work.
        assert response["freshness"]["origin"] in (
            "precompute",
            "carried",
            "mixed",
        ), "read did not hit the store"
    # Correctness: the stored payload must match a true foreground
    # recomputation of the very same version (store dropped AND the
    # frame's memoized set expired, so nothing is reused).
    manager.store.drop_session(session.id)
    session.frame.expire_recommendations()
    recomputed = session.recommendations()
    assert recomputed["freshness"]["origin"] == "foreground"
    identical = recomputed["actions"] == response["actions"]
    manager.close(session.id)
    return min(times), identical


def measure_multi_session(
    manager: SessionManager, rows: int, n_sessions: int, reads: int = 200
) -> dict[str, float]:
    """Concurrent precompute across sessions + store-hit read throughput."""
    config.precompute = True
    sessions = [
        manager.create(build_lux_frame(rows, seed=i), overrides={"top_k": 5})
        for i in range(n_sessions)
    ]
    start = time.perf_counter()
    for session in sessions:
        touch(session)
    assert manager.engine.wait_idle(300), "multi-session precompute stalled"
    precompute_wall_s = time.perf_counter() - start

    start = time.perf_counter()
    for i in range(reads):
        response = sessions[i % n_sessions].recommendations()
        assert response["freshness"]["origin"] != "foreground"
    read_wall_s = time.perf_counter() - start
    for session in sessions:
        manager.close(session.id)
    return {
        "sessions": n_sessions,
        "precompute_wall_ms": round(precompute_wall_s * 1e3, 3),
        "reads": reads,
        "reads_per_s": round(reads / read_wall_s) if read_wall_s > 0 else 0,
    }


# ----------------------------------------------------------------------
# Multi-process (sharded tier) sections
# ----------------------------------------------------------------------
def strip_freshness(response: dict) -> str:
    # The session id is not part of the payload contract (a cold rebuild
    # registers fresh ids); freshness carries wall-clock ages.
    return json.dumps(
        {
            k: v
            for k, v in response.items()
            if k not in ("freshness", "session")
        },
        sort_keys=True,
    )


def measure_worker_scaling(
    rows: int, n_sessions: int, n_workers: int, reads: int = 240
) -> dict:
    """Precompute wall-clock + threaded read throughput at one worker count.

    Sessions live in spawned worker processes behind a Supervisor; reads
    go through the supervisor's pre-serialized payload passthrough, from
    several threads at once — the router-side picture an HTTP deployment
    sees.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.service import Supervisor

    snap = config.snapshot()
    config.precompute = True
    config.precompute_debounce_s = 0.0
    try:
        sup = Supervisor(n_workers=n_workers)
        try:
            ids = [
                sup.create_session(
                    {
                        "dataset": "synthetic-skewed",
                        "rows": rows,
                        "config": {"top_k": 3},
                    }
                )["session"]
                for _ in range(n_sessions)
            ]
            assert sup.wait_idle(600), "create passes never settled"

            start = time.perf_counter()
            for sid in ids:
                sup.mutate(sid, {"column": "heavy_tail"})
            assert sup.wait_idle(600), "precompute never settled"
            precompute_wall_s = time.perf_counter() - start

            def read(i: int) -> None:
                payload = sup.recommendations(ids[i % len(ids)])
                assert payload  # pre-serialized JSON string

            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=8) as executor:
                list(executor.map(read, range(reads)))
            read_wall_s = time.perf_counter() - start
        finally:
            sup.stop()
    finally:
        config.restore(snap)
    return {
        "workers": n_workers,
        "sessions": n_sessions,
        "precompute_wall_ms": round(precompute_wall_s * 1e3, 1),
        "reads": reads,
        "reads_per_s": round(reads / read_wall_s) if read_wall_s > 0 else 0,
    }


def measure_recovery(rows: int, n_sessions: int = 3) -> dict:
    """Warm restart (snapshot restore) vs cold start (rebuild + compute).

    Both timings cover the full path an operator waits on after a
    restart: cold = rebuild the data, register the session, run the
    first foreground pass; warm = restore snapshots from disk, serve the
    first read from the rehydrated store.  Payloads must be
    bit-identical to the pre-shutdown reference either way.
    """
    import shutil
    import tempfile

    from repro.data.synthetic import make_scenario
    from repro.service import SnapshotStore

    tmp = tempfile.mkdtemp(prefix="lux-recovery-")
    try:
        with config_overlay(precompute_debounce_s=0.0, precompute=True):
            manager = SessionManager(
                snapshots=SnapshotStore(tmp, interval_s=0.0)
            )
            references = []
            ids = []
            for _ in range(n_sessions):
                session = manager.create(
                    make_scenario("skewed", n_rows=rows),
                    overrides={"top_k": 3},
                )
                session.mutate("heavy_tail")
                ids.append(session.id)
            assert manager.engine.wait_idle(600), "recovery prep stalled"
            for sid in ids:
                references.append(
                    strip_freshness(manager.get(sid).recommendations())
                )
            manager.shutdown()  # flushes every session's snapshot

        # Cold start: the no-persistence world — rebuild everything and
        # compute the first response in the foreground.
        with config_overlay(precompute=False):
            cold_manager = SessionManager()
            start = time.perf_counter()
            cold_responses = []
            for _ in range(n_sessions):
                session = cold_manager.create(
                    make_scenario("skewed", n_rows=rows),
                    overrides={"top_k": 3},
                )
                session.mutate("heavy_tail")
                response = session.recommendations()
                assert response["freshness"]["origin"] == "foreground"
                cold_responses.append(response)
            cold_s = time.perf_counter() - start
            cold_manager.shutdown()

        # Warm start: restore the snapshot directory, serve from it.
        # (Identity serialization happens after the clock stops — it is
        # verification overhead, not part of either recovery path.)
        with config_overlay(precompute_debounce_s=0.0):
            warm_manager = SessionManager(snapshots=SnapshotStore(tmp))
            start = time.perf_counter()
            restored = warm_manager.restore_sessions()
            warm_responses = {}
            for sid in restored:
                warm_responses[sid] = warm_manager.get(sid).recommendations()
            warm_s = time.perf_counter() - start
            warm_manager.shutdown()

        identical = (
            sorted(restored) == sorted(ids)
            and all(
                r["freshness"]["origin"] != "foreground"
                for r in warm_responses.values()
            )
            and [strip_freshness(warm_responses[sid]) for sid in ids]
            == references
            and [strip_freshness(r) for r in cold_responses] == references
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "sessions": n_sessions,
        "cold_ms": round(cold_s * 1e3, 1),
        "warm_ms": round(warm_s * 1e3, 1),
        "speedup": round(cold_s / warm_s, 1) if warm_s > 0 else float("inf"),
        "identical": identical,
    }


def gate_multiproc(report: dict, baseline: dict | None) -> list[str]:
    failures: list[str] = []
    recovery = report["recovery"]
    if not recovery["identical"]:
        failures.append(
            "restored payloads differ from the pre-restart reference"
        )
    if recovery["speedup"] < RECOVERY_FLOOR:
        failures.append(
            f"warm recovery {recovery['speedup']:.1f}x below the "
            f"{RECOVERY_FLOOR}x acceptance floor"
        )
    scaling = report["scaling"]
    if not scaling.get("skipped"):
        for metric in ("precompute_scaling", "read_scaling"):
            if scaling[metric] < SCALING_FLOOR:
                failures.append(
                    f"{metric} {scaling[metric]:.2f}x at 4 workers below "
                    f"the {SCALING_FLOOR}x floor"
                )
    if comparable(baseline, report):
        base = baseline["recovery"]["speedup"]
        if recovery["speedup"] < base * TOLERANCE:
            failures.append(
                f"warm recovery {recovery['speedup']:.1f}x regressed below "
                f"{TOLERANCE:.0%} of baseline {base:.1f}x"
            )
    return failures


def run_multiproc(args: argparse.Namespace) -> int:
    cpu_count = os.cpu_count() or 1
    n_sessions = max(4, 2 * args.sessions)
    print(
        f"service multiproc: {args.rows} rows, {n_sessions} sessions, "
        f"{cpu_count} cores"
    )

    if cpu_count >= 4:
        single = measure_worker_scaling(args.rows, n_sessions, 1)
        multi = measure_worker_scaling(args.rows, n_sessions, 4)
        scaling = {
            "single": single,
            "multi": multi,
            "precompute_scaling": round(
                single["precompute_wall_ms"] / multi["precompute_wall_ms"], 2
            )
            if multi["precompute_wall_ms"]
            else 0.0,
            "read_scaling": round(
                multi["reads_per_s"] / single["reads_per_s"], 2
            )
            if single["reads_per_s"]
            else 0.0,
        }
        print(
            f"  1 worker : precompute {single['precompute_wall_ms']:.0f} ms, "
            f"{single['reads_per_s']} reads/s"
        )
        print(
            f"  4 workers: precompute {multi['precompute_wall_ms']:.0f} ms, "
            f"{multi['reads_per_s']} reads/s"
        )
        print(
            f"  scaling  : precompute {scaling['precompute_scaling']:.2f}x, "
            f"reads {scaling['read_scaling']:.2f}x"
        )
    else:
        reason = (
            f"host has {cpu_count} core(s); the 1-vs-4-worker scaling "
            "section needs >= 4"
        )
        scaling = {"skipped": True, "reason": reason}
        print(f"  SCALING SKIPPED (NOT GATED): {reason}")

    recovery = measure_recovery(min(args.rows, 20_000))
    print(
        f"  recovery : cold {recovery['cold_ms']:.0f} ms, "
        f"warm {recovery['warm_ms']:.0f} ms "
        f"({recovery['speedup']:.1f}x), identical={recovery['identical']}"
    )

    report = {
        "schema": 1,
        "benchmark": "service_multiproc",
        "mode": "quick" if args.quick else "full",
        "rows": args.rows,
        "cpu_count": cpu_count,
        "python": platform.python_version(),
        "scaling": scaling,
        "recovery": recovery,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"  wrote {args.out}")

    if not recovery["identical"]:
        # Correctness precedes every mode, including --update-baseline.
        print(
            "  GATE FAILED: restored payloads differ from the "
            "pre-restart reference"
        )
        return 1

    if args.update_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
        print(f"  wrote baseline {args.baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    if not comparable(baseline, report):
        print("  no comparable baseline; gating on absolute floors")
    failures = gate_multiproc(report, baseline)
    for failure in failures:
        print(f"  GATE FAILED: {failure}")
    if not failures:
        print("  all gates passed")
    return 1 if failures else 0


def comparable(baseline: dict | None, report: dict) -> bool:
    return (
        baseline is not None
        and baseline.get("benchmark") == report["benchmark"]
        and baseline.get("mode") == report["mode"]
        and baseline.get("rows") == report["rows"]
    )


def gate(report: dict, baseline: dict | None) -> list[str]:
    failures: list[str] = []
    speedup = report["speedups"]["precompute"]
    if not report["identical"]:
        failures.append(
            "precomputed payload differs from foreground recomputation"
        )
    if speedup < PRECOMPUTE_FLOOR:
        failures.append(
            f"precomputed read speedup {speedup:.1f}x below the "
            f"{PRECOMPUTE_FLOOR}x acceptance floor"
        )
    if comparable(baseline, report):
        base = baseline["speedups"]["precompute"]
        if speedup < base * TOLERANCE:
            failures.append(
                f"precompute speedup {speedup:.1f}x regressed below "
                f"{TOLERANCE:.0%} of baseline {base:.1f}x"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=50_000,
                        help="frame size (default 50k)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed rounds per condition; best is reported")
    parser.add_argument("--sessions", type=int, default=4,
                        help="session count for the throughput section")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run for CI (20k rows, 2 rounds)")
    parser.add_argument("--multiproc", action="store_true",
                        help="benchmark the sharded multi-process tier "
                        "(worker scaling + snapshot recovery) instead")
    parser.add_argument("--out", type=Path, default=None,
                        help="trajectory artifact path (default "
                        "BENCH_service.json / BENCH_service_multiproc.json)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed baseline to gate against")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the committed baseline from this run")
    args = parser.parse_args(argv)
    if args.quick:
        args.rows, args.rounds = 20_000, 2
    if args.out is None:
        args.out = Path(
            "BENCH_service_multiproc.json"
            if args.multiproc
            else "BENCH_service.json"
        )
    if args.baseline is None:
        args.baseline = (
            MULTIPROC_BASELINE_PATH if args.multiproc else BASELINE_PATH
        )
    if args.multiproc:
        return run_multiproc(args)

    with contextlib.ExitStack() as stack:
        stack.callback(computation_cache.clear)
        stack.enter_context(config_overlay(precompute_debounce_s=0.0))
        manager = SessionManager()
        stack.callback(manager.shutdown)

        cpu_count = os.cpu_count() or 1
        print(f"service: {args.rows} rows, best of {args.rounds}, "
              f"{args.sessions} sessions, {cpu_count} cores, "
              f"{pool.worker_count()} workers")

        cold = measure_cold(manager, args.rows, args.rounds)
        print(f"  cold_read       : {cold * 1e3:9.1f} ms")
        warm, identical = measure_precomputed(manager, args.rows, args.rounds)
        print(f"  precomputed_read: {warm * 1e3:9.3f} ms")
        multi = measure_multi_session(manager, args.rows, args.sessions)
        print(f"  multi-session   : {multi['sessions']} sessions precomputed "
              f"in {multi['precompute_wall_ms']:.0f} ms, "
              f"{multi['reads_per_s']} store reads/s")

        speedup = cold / warm if warm > 0 else float("inf")
        report = {
            "schema": 1,
            "benchmark": "service",
            "mode": "quick" if args.quick else "full",
            "rows": args.rows,
            "rounds": args.rounds,
            "cpu_count": cpu_count,
            "python": platform.python_version(),
            "timings_ms": {
                "cold_read": round(cold * 1e3, 3),
                "precomputed_read": round(warm * 1e3, 3),
            },
            "speedups": {"precompute": round(speedup, 1)},
            "multi_session": multi,
            "identical": identical,
        }
        print(f"  precompute speedup: {speedup:9.1f}x")
        print(f"  identical         : {identical}")

        args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"  wrote {args.out}")

        if not identical:
            # Correctness precedes every mode, including --update-baseline.
            print("  GATE FAILED: precomputed payload differs from "
                  "foreground recomputation")
            return 1

        if args.update_baseline:
            args.baseline.parent.mkdir(parents=True, exist_ok=True)
            args.baseline.write_text(
                json.dumps(report, indent=2) + "\n", encoding="utf-8"
            )
            print(f"  wrote baseline {args.baseline}")
            return 0

        baseline = load_baseline(args.baseline)
        if not comparable(baseline, report):
            print("  no comparable baseline; gating on absolute floors")
        failures = gate(report, baseline)
        for failure in failures:
            print(f"  GATE FAILED: {failure}")
        if not failures:
            print("  all gates passed")
        return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
