"""Shared-scan ablation: candidate-set execution with the cache on vs off.

Measures one recommendation pass — a 40+-candidate set mixing group-by
bars/lines, histograms, heatmaps, and filtered variants, the workload every
user action triggers — executed through ``DataFrameExecutor.execute_many``
under two conditions:

- ``cache-on``:  ``config.computation_cache = True`` (the default); filter
  masks, materialized subframes, group-key factorizations, float views, and
  bin edges are each computed once per frame version.
- ``cache-off``: ``config.computation_cache = False``; every candidate
  re-scans the frame, as the seed executor did.

Run directly (CI smoke-tests ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_shared_scan.py [--quick] [--rows N]

The acceptance bar for the shared-scan PR is a >= 1.5x speedup.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import config
from repro.core.executor.cache import computation_cache
from repro.core.executor.df_exec import DataFrameExecutor
from repro.dataframe import DataFrame
from repro.vis.encoding import Encoding
from repro.vis.spec import VisSpec

N_MEASURES = 6
N_DIMS = 3


def build_frame(rows: int, seed: int = 0) -> DataFrame:
    rng = np.random.default_rng(seed)
    data: dict = {
        f"q{i}": rng.normal(0, 1, rows) for i in range(N_MEASURES)
    }
    for j, card in zip(range(N_DIMS), (6, 12, 24)):
        data[f"d{j}"] = rng.choice(
            [f"v{v}" for v in range(card)], rows
        ).tolist()
    return DataFrame(data)


def build_candidates() -> list[VisSpec]:
    """A realistic 40+-candidate recommendation pass over one frame."""
    q = "quantitative"
    specs: list[VisSpec] = []
    # Group-by bars: every dim x measure pair shares the dim factorization.
    for j in range(N_DIMS):
        for i in range(N_MEASURES):
            specs.append(VisSpec("bar", [
                Encoding("y", f"d{j}", "nominal"),
                Encoding("x", f"q{i}", q, aggregate="mean"),
            ]))
    # Occurrence count bars.
    for j in range(N_DIMS):
        specs.append(VisSpec("bar", [
            Encoding("y", f"d{j}", "nominal"),
            Encoding("x", "", q, aggregate="count"),
        ]))
    # Histograms: share each measure's float view and bin edges.
    for i in range(N_MEASURES):
        specs.append(VisSpec("histogram", [
            Encoding("x", f"q{i}", q, bin=True, bin_size=10),
            Encoding("y", "", q, aggregate="count"),
        ]))
    # Nominal heatmaps: 2-D groupings over shared per-key factorizations.
    specs.append(VisSpec("rect", [
        Encoding("x", "d0", "nominal"),
        Encoding("y", "d1", "nominal"),
        Encoding("color", "", q, aggregate="count"),
    ]))
    specs.append(VisSpec("rect", [
        Encoding("x", "d1", "nominal"),
        Encoding("y", "d2", "nominal"),
        Encoding("color", "", q, aggregate="count"),
    ]))
    # Filtered variants: every pair below shares one mask + subframe.
    for value in ("v0", "v1", "v2"):
        for i in range(2):
            specs.append(VisSpec("bar", [
                Encoding("y", "d1", "nominal"),
                Encoding("x", f"q{i}", q, aggregate="mean"),
            ], filters=[("d0", "=", value)]))
            specs.append(VisSpec("histogram", [
                Encoding("x", f"q{i}", q, bin=True, bin_size=10),
                Encoding("y", "", q, aggregate="count"),
            ], filters=[("d0", "=", value)]))
    return specs


def run_pass(frame: DataFrame, cached: bool) -> tuple[float, int]:
    """One timed candidate-set execution; returns (seconds, n_candidates)."""
    config.computation_cache = cached
    computation_cache.clear()
    specs = build_candidates()
    executor = DataFrameExecutor()
    start = time.perf_counter()
    executor.execute_many(specs, frame)
    elapsed = time.perf_counter() - start
    assert all(s.data is not None for s in specs)
    return elapsed, len(specs)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=50_000,
                        help="frame size (default 50k)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed rounds per condition; best is reported")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run for CI (8k rows, 2 rounds)")
    args = parser.parse_args(argv)
    if args.quick:
        args.rows, args.rounds = 8_000, 2

    snapshot = config.snapshot()
    try:
        frame = build_frame(args.rows)
        n_candidates = len(build_candidates())
        print(f"shared-scan ablation: {n_candidates} candidates, "
              f"{args.rows} rows, best of {args.rounds}")

        best = {}
        for cached in (True, False):  # warm order is irrelevant: cache cleared
            times = []
            for _ in range(args.rounds):
                elapsed, _n = run_pass(frame, cached)
                times.append(elapsed)
            best[cached] = min(times)
            label = "cache-on " if cached else "cache-off"
            print(f"  {label}: {best[cached] * 1e3:9.1f} ms")

        speedup = best[False] / best[True] if best[True] > 0 else float("inf")
        print(f"  speedup : {speedup:9.2f}x  (target >= 1.50x)")
        # Exit status gates CI at the stated acceptance bar.
        return 0 if speedup >= 1.5 else 1
    finally:
        config.restore(snapshot)
        computation_cache.clear()


if __name__ == "__main__":
    sys.exit(main())
