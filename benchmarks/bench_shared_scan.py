"""Shared-scan ablation + parallel fan-out benchmark, with trajectory gating.

Measures one recommendation pass — a 40+-candidate set mixing group-by
bars/lines, histograms, heatmaps, and filtered variants, the workload every
user action triggers — executed through ``DataFrameExecutor.execute_many``
under three conditions:

- ``serial_uncached``: ``config.computation_cache = False``; every candidate
  re-scans the frame, as the seed executor did.
- ``serial_cached``:  the cache memoizes filter masks, factorizations,
  float views, and bin edges; the batch runs on the calling thread.
- ``parallel``:       the cached batch additionally fans out across the
  shared worker pool (``config.parallel_execute``).

Every run emits a ``BENCH_shared_scan.json`` trajectory artifact (timings,
speedups, candidate/worker/core counts, cache bytes) and gates on it:

- parallel results must be bit-identical to serial results;
- cache memory must respect ``config.computation_cache_budget_mb``;
- the cache speedup must not regress against the committed baseline
  (``benchmarks/baselines/BENCH_shared_scan.json``), falling back to the
  historical 1.5x floor when no comparable baseline exists;
- on hosts with >= 4 cores, the parallel condition must clear 1.5x over
  the serial cached path (raised by the baseline trajectory when one was
  recorded on a comparable host).

Run directly (CI runs ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_shared_scan.py \\
        [--quick] [--rows N] [--workers N] [--out PATH] [--update-baseline]
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro import config, config_overlay
from repro.core.executor.cache import computation_cache
from repro.core.executor.df_exec import DataFrameExecutor
from repro.dataframe import DataFrame
from repro.vis.encoding import Encoding
from repro.vis.spec import VisSpec

N_MEASURES = 6
N_DIMS = 3

#: Allowed fraction of the baseline speedup before the gate trips: absorbs
#: host-to-host noise while still catching real trajectory regressions.
TOLERANCE = 0.6

#: Historical absolute floor (the PR-1 acceptance bar), used when no
#: comparable baseline entry exists.
CACHE_FLOOR = 1.5

#: Acceptance bar for the parallel condition on multi-core hosts.
PARALLEL_FLOOR = 1.5

BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_shared_scan.json"


def build_frame(rows: int, seed: int = 0) -> DataFrame:
    rng = np.random.default_rng(seed)
    data: dict = {
        f"q{i}": rng.normal(0, 1, rows) for i in range(N_MEASURES)
    }
    for j, card in zip(range(N_DIMS), (6, 12, 24)):
        data[f"d{j}"] = rng.choice(
            [f"v{v}" for v in range(card)], rows
        ).tolist()
    return DataFrame(data)


def build_candidates() -> list[VisSpec]:
    """A realistic 40+-candidate recommendation pass over one frame."""
    q = "quantitative"
    specs: list[VisSpec] = []
    # Group-by bars: every dim x measure pair shares the dim factorization.
    for j in range(N_DIMS):
        for i in range(N_MEASURES):
            specs.append(VisSpec("bar", [
                Encoding("y", f"d{j}", "nominal"),
                Encoding("x", f"q{i}", q, aggregate="mean"),
            ]))
    # Occurrence count bars.
    for j in range(N_DIMS):
        specs.append(VisSpec("bar", [
            Encoding("y", f"d{j}", "nominal"),
            Encoding("x", "", q, aggregate="count"),
        ]))
    # Histograms: share each measure's float view and bin edges.
    for i in range(N_MEASURES):
        specs.append(VisSpec("histogram", [
            Encoding("x", f"q{i}", q, bin=True, bin_size=10),
            Encoding("y", "", q, aggregate="count"),
        ]))
    # Nominal heatmaps: 2-D groupings over shared per-key factorizations.
    specs.append(VisSpec("rect", [
        Encoding("x", "d0", "nominal"),
        Encoding("y", "d1", "nominal"),
        Encoding("color", "", q, aggregate="count"),
    ]))
    specs.append(VisSpec("rect", [
        Encoding("x", "d1", "nominal"),
        Encoding("y", "d2", "nominal"),
        Encoding("color", "", q, aggregate="count"),
    ]))
    # Filtered variants: every pair below shares one mask + subframe.
    for value in ("v0", "v1", "v2"):
        for i in range(2):
            specs.append(VisSpec("bar", [
                Encoding("y", "d1", "nominal"),
                Encoding("x", f"q{i}", q, aggregate="mean"),
            ], filters=[("d0", "=", value)]))
            specs.append(VisSpec("histogram", [
                Encoding("x", f"q{i}", q, bin=True, bin_size=10),
                Encoding("y", "", q, aggregate="count"),
            ], filters=[("d0", "=", value)]))
    return specs


CONDITIONS = {
    "serial_uncached": dict(computation_cache=False, parallel_execute=False),
    "serial_cached": dict(computation_cache=True, parallel_execute=False),
    "parallel": dict(computation_cache=True, parallel_execute=True),
}


def run_pass(frame: DataFrame, condition: str) -> tuple[float, list]:
    """One timed candidate-set execution; returns (seconds, results)."""
    for key, value in CONDITIONS[condition].items():
        setattr(config, key, value)
    computation_cache.clear()
    specs = build_candidates()
    executor = DataFrameExecutor()
    start = time.perf_counter()
    results = executor.execute_many(specs, frame)
    elapsed = time.perf_counter() - start
    assert all(s.data is not None for s in specs)
    return elapsed, results


def load_baseline(path: Path) -> dict | None:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def comparable(baseline: dict | None, report: dict) -> bool:
    """Whether the committed baseline measured the same workload shape."""
    return (
        baseline is not None
        and baseline.get("benchmark") == report["benchmark"]
        and baseline.get("mode") == report["mode"]
        and baseline.get("rows") == report["rows"]
        and baseline.get("candidates") == report["candidates"]
    )


def gate(report: dict, baseline: dict | None) -> list[str]:
    """Evaluate every acceptance gate; returns the list of failures."""
    failures: list[str] = []
    speedups = report["speedups"]

    if not report["identical"]:
        failures.append("parallel results differ from serial results")

    budget = report["cache_budget_bytes"]
    if budget and report["cache_bytes"] > budget:
        failures.append(
            f"cache bytes {report['cache_bytes']} exceed budget {budget}"
        )

    if comparable(baseline, report):
        base_cache = baseline["speedups"]["cache"]
        threshold = base_cache * TOLERANCE
        if speedups["cache"] < threshold:
            failures.append(
                f"cache speedup {speedups['cache']:.2f}x regressed below "
                f"{TOLERANCE:.0%} of baseline {base_cache:.2f}x"
            )
    elif speedups["cache"] < CACHE_FLOOR:
        failures.append(
            f"cache speedup {speedups['cache']:.2f}x below the "
            f"{CACHE_FLOOR}x floor (no comparable baseline)"
        )

    if report["cpu_count"] >= 4 and report["workers"] >= 2:
        threshold = PARALLEL_FLOOR
        if comparable(baseline, report) and baseline.get("cpu_count", 0) >= 4:
            threshold = max(
                PARALLEL_FLOOR, baseline["speedups"]["parallel"] * TOLERANCE
            )
        if speedups["parallel"] < threshold:
            failures.append(
                f"parallel speedup {speedups['parallel']:.2f}x below "
                f"{threshold:.2f}x on a {report['cpu_count']}-core host"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=50_000,
                        help="frame size (default 50k)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed rounds per condition; best is reported")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run for CI (20k rows, 2 rounds)")
    parser.add_argument("--workers", type=int, default=0,
                        help="pool workers for the parallel condition "
                             "(default: config, i.e. the host core count)")
    parser.add_argument("--out", type=Path, default=Path("BENCH_shared_scan.json"),
                        help="trajectory artifact path")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH,
                        help="committed baseline to gate against")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the committed baseline from this run")
    args = parser.parse_args(argv)
    if args.quick:
        args.rows, args.rounds = 20_000, 2

    with contextlib.ExitStack() as stack:
        # config_overlay() rolls back every knob the run mutates on exit
        # (the old hand-rolled snapshot/restore); the cache clear runs
        # after it, exactly like the old finally block.
        stack.callback(computation_cache.clear)
        stack.enter_context(config_overlay())
        if args.workers:
            config.action_pool_workers = args.workers
        workers = max(int(config.action_pool_workers), 1)
        frame = build_frame(args.rows)
        candidates = len(build_candidates())
        cpu_count = os.cpu_count() or 1
        print(f"shared-scan: {candidates} candidates, {args.rows} rows, "
              f"best of {args.rounds}, {workers} workers, {cpu_count} cores")

        best: dict[str, float] = {}
        results: dict[str, list] = {}
        for condition in CONDITIONS:
            times = []
            for _ in range(args.rounds):
                elapsed, out = run_pass(frame, condition)
                times.append(elapsed)
            best[condition] = min(times)
            results[condition] = out
            print(f"  {condition:<16}: {best[condition] * 1e3:9.1f} ms")

        cache_bytes = computation_cache.stats()["bytes"]
        identical = results["parallel"] == results["serial_cached"]

        def ratio(a: str, b: str) -> float:
            return best[a] / best[b] if best[b] > 0 else float("inf")

        report = {
            "schema": 1,
            "benchmark": "shared_scan",
            "mode": "quick" if args.quick else "full",
            "rows": args.rows,
            "candidates": candidates,
            "rounds": args.rounds,
            "workers": workers,
            "cpu_count": cpu_count,
            "python": platform.python_version(),
            "timings_ms": {k: round(v * 1e3, 3) for k, v in best.items()},
            "speedups": {
                "cache": round(ratio("serial_uncached", "serial_cached"), 3),
                "parallel": round(ratio("serial_cached", "parallel"), 3),
                "total": round(ratio("serial_uncached", "parallel"), 3),
            },
            "cache_bytes": cache_bytes,
            "cache_budget_bytes": computation_cache.budget_bytes(),
            "identical": identical,
        }
        print(f"  cache speedup   : {report['speedups']['cache']:9.2f}x")
        print(f"  parallel speedup: {report['speedups']['parallel']:9.2f}x")
        print(f"  total speedup   : {report['speedups']['total']:9.2f}x")
        print(f"  cache bytes     : {cache_bytes} "
              f"(budget {report['cache_budget_bytes']})")

        args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"  wrote {args.out}")

        if not identical:
            # Correctness precedes every mode, including --update-baseline:
            # a baseline refresh must never go green while recording a
            # parallel-vs-serial divergence.
            print("  GATE FAILED: parallel results differ from serial results")
            return 1

        if args.update_baseline:
            args.baseline.parent.mkdir(parents=True, exist_ok=True)
            args.baseline.write_text(
                json.dumps(report, indent=2) + "\n", encoding="utf-8"
            )
            print(f"  wrote baseline {args.baseline}")
            return 0

        baseline = load_baseline(args.baseline)
        if not comparable(baseline, report):
            print("  no comparable baseline; gating on absolute floors")
        failures = gate(report, baseline)
        for failure in failures:
            print(f"  GATE FAILED: {failure}")
        if not failures:
            print("  all gates passed")
        return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
