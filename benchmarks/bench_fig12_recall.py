"""Figure 12 (right): Recall@15 of pruned rankings vs sample fraction.

For each action on the Communities workload, compares the top-15 produced
from a fractional sample against the exact (full-data) top-15.  Paper
shape: ~10% samples already reach >=90% recall for most actions; Filter
needs larger samples because it enumerates data subsets (fewer points per
stratum).
"""

from __future__ import annotations

import pytest

from conftest import run_report, emit, scaled
from repro import config
from repro.bench import format_table, recall_at_k
from repro.core.actions import (
    CorrelationAction,
    DistributionAction,
    EnhanceAction,
    FilterAction,
    OccurrenceAction,
)
from repro.core.optimizer.sampling import rank_candidates
from repro.data import make_communities

N_ROWS = scaled(20_000)
FRACTIONS = [0.05, 0.1, 0.2, 0.4, 1.0]
K = 15


@pytest.fixture(scope="module")
def frame():
    # Narrower than 128 columns to keep the exact pass tractable per
    # fraction; the ranking problem is the same.
    df = make_communities(N_ROWS, n_cols=34)
    df.intent = [df.metadata.measures[0]]
    return df


def _ranking(action, frame, fraction: float) -> list:
    """Top-k signature list for the action at the given sample fraction."""
    config.top_k = K
    if fraction >= 1.0:
        config.early_pruning = False
    else:
        config.early_pruning = True
        config.sampling = True
        config.sampling_start = max(int(len(frame) * fraction) - 1, 1)
        config.sampling_cap = max(int(len(frame) * fraction), 1)
    frame._sample_cache = None
    cands = action.candidates(frame)
    ranked = rank_candidates(cands, frame, k=K)
    return [v.spec.signature() for v in ranked]


ACTIONS = {
    "Occurrence": OccurrenceAction,
    "Filter": FilterAction,
    "Correlation": CorrelationAction,
    "Distribution": DistributionAction,
    "Enhance": EnhanceAction,
}


def test_fig12_recall_kernel(benchmark, frame):
    action = CorrelationAction()
    benchmark.pedantic(
        lambda: _ranking(action, frame, 0.2), rounds=1, iterations=1
    )


def test_fig12_recall_report(benchmark, frame):
    def _report():
        recalls: dict[str, list[float]] = {}
        for name, cls in ACTIONS.items():
            action = cls()
            exact = _ranking(action, frame, 1.0)
            recalls[name] = [
                recall_at_k(_ranking(action, frame, f), exact, K) for f in FRACTIONS
            ]
        rows = [
            [name] + [f"{r:.2f}" for r in rs] for name, rs in recalls.items()
        ]
        emit(format_table(
            ["action"] + [f"{f:.0%}" for f in FRACTIONS],
            rows,
            title=f"Figure 12 right — Recall@{K} vs sample fraction (Communities {N_ROWS} rows)",
        ))
        # Shape assertions (paper): full sample -> perfect recall; moderate
        # samples -> high recall for the statistical actions.
        for name in ACTIONS:
            assert recalls[name][-1] == 1.0, f"{name} recall must be 1.0 at 100%"
        assert recalls["Correlation"][2] >= 0.8
        assert recalls["Distribution"][2] >= 0.8
        # Recall (weakly) improves with sample size for the ranked actions.
        for name in ("Correlation", "Distribution"):
            assert recalls[name][0] <= recalls[name][-1] + 1e-9

    run_report(benchmark, _report)
