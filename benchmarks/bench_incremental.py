"""Incremental recomputation benchmark: delta-scoped background passes.

Measures the precompute engine's steady-state background work on the
shared-scan frame shape (6 measures x 3 dims, the 40+-candidate
recommendation pass) when a *single column* changes between passes:

- ``full_pass``:        ``config.incremental_precompute = False``; every
  version bump reruns the whole applicable action set, as PR 4 shipped.
- ``incremental_pass``: the mutation's column-level delta is intersected
  with each action's input footprint; only the affected actions rerun
  and the rest are carried forward in the store (provenance ``carried``).

The mutated column is a *dimension* (``d1``), so the expensive actions
(Correlation over 15 measure pairs, Distribution over 6 histograms) are
unaffected and only Occurrence reruns — and within Occurrence only the
``d1`` candidate recomputes; the other dimensions' vis are carried at
candidate granularity (action origin ``mixed``).  Metadata refresh is
delta-scoped the same way: only the mutated column is rescanned, the
rest keep their per-column version stamps.

Every run emits a ``BENCH_incremental.json`` trajectory artifact and
gates:

- the incremental pass must rerun **only** the affected subset
  (Occurrence, partially; Correlation and Distribution carried) and its
  stored payloads must be byte-identical to a cold foreground
  recomputation of the same version;
- the background work reduction must clear the 10x acceptance floor
  (candidate-level reruns; the whole-action partition alone gated 3x),
  the single-column metadata rescan must beat a full rescan by
  ``METADATA_SCAN_FLOOR``, and neither may regress below ``TOLERANCE``
  of the committed baseline
  (``benchmarks/baselines/BENCH_incremental.json``) when comparable.

Run directly (CI runs ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_incremental.py \\
        [--quick] [--rows N] [--out PATH] [--update-baseline]
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_service import build_lux_frame  # noqa: E402
from bench_shared_scan import load_baseline  # noqa: E402

from repro import config, config_overlay  # noqa: E402
from repro.core import pool  # noqa: E402
from repro.core.executor.cache import computation_cache  # noqa: E402
from repro.service import SessionManager  # noqa: E402

#: Allowed fraction of the baseline reduction before the gate trips.
TOLERANCE = 0.6

#: Acceptance floor: a single-dimension mutation must cost at least this
#: much less background work than a full recompute.
INCREMENTAL_FLOOR = 10.0

#: Acceptance floor for the delta-scoped metadata refresh: rescanning the
#: one mutated column must beat a full all-columns rescan by this factor.
METADATA_SCAN_FLOOR = 2.0

#: The column mutated between passes and the expected partition around it.
MUTATED_COLUMN = "d1"
EXPECTED_RERUN = {"Occurrence"}
EXPECTED_CARRIED = {"Correlation", "Distribution"}

BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_incremental.json"


def touch(session) -> None:
    """A real single-column update: reverse the dimension's row order.

    Only ``MUTATED_COLUMN``'s values move; every other column — and the
    row set — is untouched, so the emitted delta names exactly one column.
    """
    session.frame[MUTATED_COLUMN] = session.frame[MUTATED_COLUMN].to_list()[::-1]


def measure_passes(
    manager: SessionManager, rows: int, rounds: int, incremental: bool
) -> tuple[float, dict]:
    """Best wall time of a post-mutation background pass, plus evidence.

    Returns ``(seconds, info)`` where ``info`` carries the engine counter
    deltas and, for the incremental condition, the final read's per-action
    provenance and its identity against a cold foreground recomputation.
    """
    config.precompute = True
    config.incremental_precompute = incremental
    session = manager.create(build_lux_frame(rows))
    assert manager.engine.wait_idle(300), "initial pass never settled"
    before = manager.engine.stats()
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        touch(session)
        assert manager.engine.wait_idle(300), "background pass stalled"
        times.append(time.perf_counter() - start)
    after = manager.engine.stats()
    info: dict = {
        "passes": rounds,
        "actions_rerun": after["actions_rerun"] - before["actions_rerun"],
        "actions_carried": after["actions_carried"] - before["actions_carried"],
        "candidates_rerun": after["candidates_rerun"]
        - before["candidates_rerun"],
        "candidates_carried": after["candidates_carried"]
        - before["candidates_carried"],
    }

    response = session.recommendations(compute=False)
    assert response is not None, "store must hold the final pass"
    info["origins"] = response["freshness"]["actions"]

    # Identity: the stored (partially carried) pass must match a true
    # foreground recomputation of the very same version, with the store
    # dropped and the frame's memoized set expired so nothing is reused.
    manager.store.drop_session(session.id)
    session.frame.expire_recommendations()
    recomputed = session.recommendations()
    assert recomputed["freshness"]["origin"] == "foreground"
    info["identical"] = recomputed["actions"] == response["actions"]
    manager.close(session.id)
    return min(times), info


def partition_failures(info: dict) -> list[str]:
    """Check the incremental pass reran only the affected subset.

    ``mixed`` counts as rerun: the action executed, carrying a subset of
    its candidates — exactly what a single-dimension mutation should
    produce for Occurrence (only the mutated dimension's vis recomputes).
    """
    failures = []
    origins = info["origins"]
    rerun = {a for a, o in origins.items() if o in ("precompute", "mixed")}
    carried = {a for a, o in origins.items() if o == "carried"}
    if not EXPECTED_RERUN <= rerun or rerun & EXPECTED_CARRIED:
        failures.append(
            f"rerun set {sorted(rerun)} is not the affected subset "
            f"{sorted(EXPECTED_RERUN)}"
        )
    if not EXPECTED_CARRIED <= carried:
        failures.append(
            f"carried set {sorted(carried)} misses unaffected actions "
            f"{sorted(EXPECTED_CARRIED)}"
        )
    if info["candidates_carried"] < 1:
        failures.append(
            "no candidate-level carry: the partially rerun action "
            "recomputed every candidate"
        )
    return failures


def measure_metadata_scan(rows: int, rounds: int) -> tuple[float, float]:
    """Best metadata refresh time: full rescan vs single-column delta.

    Both conditions apply the identical mutation; the full condition then
    discards the pending delta so ``_compute_metadata`` takes the
    all-columns path, isolating exactly what per-column versioning saves.
    """
    frame = build_lux_frame(rows)
    frame.metadata  # cold compute primes the cache
    full_times, delta_times = [], []
    for _ in range(max(rounds, 3)):
        frame[MUTATED_COLUMN] = frame[MUTATED_COLUMN].to_list()[::-1]
        frame._metadata_delta = None  # forget the delta: full rescan
        start = time.perf_counter()
        frame.metadata
        full_times.append(time.perf_counter() - start)

        frame[MUTATED_COLUMN] = frame[MUTATED_COLUMN].to_list()[::-1]
        start = time.perf_counter()
        frame.metadata
        delta_times.append(time.perf_counter() - start)
    return min(full_times), min(delta_times)


def comparable(baseline: dict | None, report: dict) -> bool:
    return (
        baseline is not None
        and baseline.get("benchmark") == report["benchmark"]
        and baseline.get("mode") == report["mode"]
        and baseline.get("rows") == report["rows"]
    )


def gate(report: dict, baseline: dict | None) -> list[str]:
    failures = list(report["partition_failures"])
    if not report["identical"]:
        failures.append(
            "incremental pass payloads differ from foreground recomputation"
        )
    reduction = report["speedups"]["incremental"]
    if reduction < INCREMENTAL_FLOOR:
        failures.append(
            f"background work reduction {reduction:.1f}x below the "
            f"{INCREMENTAL_FLOOR}x acceptance floor"
        )
    meta_reduction = report["speedups"]["metadata_scan"]
    if meta_reduction < METADATA_SCAN_FLOOR:
        failures.append(
            f"metadata delta rescan {meta_reduction:.1f}x below the "
            f"{METADATA_SCAN_FLOOR}x floor over a full rescan"
        )
    if comparable(baseline, report):
        base = baseline["speedups"]["incremental"]
        if reduction < base * TOLERANCE:
            failures.append(
                f"incremental reduction {reduction:.1f}x regressed below "
                f"{TOLERANCE:.0%} of baseline {base:.1f}x"
            )
        # .get(): baselines recorded before the field existed stay usable.
        meta_base = baseline["speedups"].get("metadata_scan")
        if meta_base is not None and meta_reduction < meta_base * TOLERANCE:
            failures.append(
                f"metadata rescan reduction {meta_reduction:.1f}x regressed "
                f"below {TOLERANCE:.0%} of baseline {meta_base:.1f}x"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=50_000,
                        help="frame size (default 50k)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed passes per condition; best is reported")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run for CI (20k rows, 2 rounds)")
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_incremental.json"),
                        help="trajectory artifact path")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH,
                        help="committed baseline to gate against")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the committed baseline from this run")
    args = parser.parse_args(argv)
    if args.quick:
        args.rows, args.rounds = 20_000, 2

    with contextlib.ExitStack() as stack:
        stack.callback(computation_cache.clear)
        stack.enter_context(config_overlay(precompute_debounce_s=0.0))
        manager = SessionManager()
        stack.callback(manager.shutdown)

        cpu_count = os.cpu_count() or 1
        print(f"incremental: {args.rows} rows, best of {args.rounds}, "
              f"{cpu_count} cores, {pool.worker_count()} workers, "
              f"mutating {MUTATED_COLUMN!r} per pass")

        full, full_info = measure_passes(
            manager, args.rows, args.rounds, incremental=False
        )
        print(f"  full_pass       : {full * 1e3:9.1f} ms "
              f"({full_info['actions_rerun']} actions rerun)")
        incr, incr_info = measure_passes(
            manager, args.rows, args.rounds, incremental=True
        )
        print(f"  incremental_pass: {incr * 1e3:9.1f} ms "
              f"({incr_info['actions_rerun']} rerun, "
              f"{incr_info['actions_carried']} carried; candidates "
              f"{incr_info['candidates_rerun']} rerun, "
              f"{incr_info['candidates_carried']} carried)")
        print(f"  origins         : {incr_info['origins']}")
        meta_full, meta_delta = measure_metadata_scan(args.rows, args.rounds)
        print(f"  metadata rescan : {meta_full * 1e3:9.1f} ms full, "
              f"{meta_delta * 1e3:.1f} ms single-column")

        reduction = full / incr if incr > 0 else float("inf")
        meta_reduction = (
            meta_full / meta_delta if meta_delta > 0 else float("inf")
        )
        report = {
            "schema": 1,
            "benchmark": "incremental",
            "mode": "quick" if args.quick else "full",
            "rows": args.rows,
            "rounds": args.rounds,
            "cpu_count": cpu_count,
            "python": platform.python_version(),
            "mutated_column": MUTATED_COLUMN,
            "timings_ms": {
                "full_pass": round(full * 1e3, 3),
                "incremental_pass": round(incr * 1e3, 3),
                "metadata_full_scan": round(meta_full * 1e3, 3),
                "metadata_delta_scan": round(meta_delta * 1e3, 3),
            },
            "speedups": {
                "incremental": round(reduction, 1),
                "metadata_scan": round(meta_reduction, 1),
            },
            "actions": {
                "full_rerun": full_info["actions_rerun"],
                "incremental_rerun": incr_info["actions_rerun"],
                "incremental_carried": incr_info["actions_carried"],
                "incremental_candidates_rerun": incr_info["candidates_rerun"],
                "incremental_candidates_carried": incr_info[
                    "candidates_carried"
                ],
            },
            "origins": incr_info["origins"],
            "partition_failures": partition_failures(incr_info),
            "identical": bool(
                full_info["identical"] and incr_info["identical"]
            ),
        }
        print(f"  work reduction  : {reduction:9.1f}x "
              f"(metadata rescan {meta_reduction:.1f}x)")
        print(f"  identical       : {report['identical']}")

        args.out.write_text(json.dumps(report, indent=2) + "\n",
                            encoding="utf-8")
        print(f"  wrote {args.out}")

        correctness = list(report["partition_failures"])
        if not report["identical"]:
            correctness.append(
                "incremental pass payloads differ from foreground "
                "recomputation"
            )
        if correctness:
            # Correctness precedes every mode, including --update-baseline:
            # a refresh must never record a wrong or non-incremental run.
            for failure in correctness:
                print(f"  GATE FAILED: {failure}")
            return 1

        if args.update_baseline:
            args.baseline.parent.mkdir(parents=True, exist_ok=True)
            args.baseline.write_text(
                json.dumps(report, indent=2) + "\n", encoding="utf-8"
            )
            print(f"  wrote baseline {args.baseline}")
            return 0

        baseline = load_baseline(args.baseline)
        if not comparable(baseline, report):
            print("  no comparable baseline; gating on absolute floors")
        failures = gate(report, baseline)
        for failure in failures:
            print(f"  GATE FAILED: {failure}")
        if not failures:
            print("  all gates passed")
        return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
