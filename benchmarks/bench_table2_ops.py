"""Table 2: relational operations per visualization type.

For each vis type, measures the processing cost on the Airbnb workload and
verifies the cost ordering implied by Table 2 (selection-only scatter vs
group-by bars vs 2-D bins).  Also compares the dataframe executor against
the sqlite backend on the same queries.
"""

from __future__ import annotations

import pytest

from conftest import run_report, emit, scaled
from repro.core.compiler import compile_intent
from repro.core.executor.df_exec import DataFrameExecutor
from repro.core.executor.sql_exec import SQLExecutor
from repro.core.intent import parse_intent
from repro.data import make_airbnb
from repro.vis.encoding import Encoding
from repro.vis.spec import VisSpec

N_ROWS = scaled(20_000)


@pytest.fixture(scope="module")
def frame():
    return make_airbnb(N_ROWS)


def _compiled_spec(frame, intent):
    return compile_intent(parse_intent(intent), frame.metadata)[0].spec


VIS_TYPES = {
    "scatterplot": ["price", "number_of_reviews"],
    "color_scatterplot": ["price", "number_of_reviews", "room_type"],
    "bar": ["price", "room_type"],
    "colored_bar": ["room_type", "price", "borough-placeholder"],
    "histogram": ["price"],
    "choropleth": ["neighbourhood_group", "price"],
}


def _spec_for(frame, name):
    if name == "colored_bar":
        return _compiled_spec(
            frame, ["room_type", "price", "neighbourhood_group"]
        )
    return _compiled_spec(frame, VIS_TYPES[name])


@pytest.mark.parametrize(
    "vis_type",
    ["scatterplot", "color_scatterplot", "bar", "colored_bar", "histogram", "choropleth"],
)
def test_table2_df_executor(benchmark, frame, vis_type):
    spec = _spec_for(frame, vis_type)
    executor = DataFrameExecutor()

    def run():
        spec.data = None
        return executor.execute(spec, frame)

    benchmark(run)


@pytest.mark.parametrize("vis_type", ["bar", "colored_bar", "choropleth"])
def test_table2_sql_executor(benchmark, frame, vis_type):
    spec = _spec_for(frame, vis_type)
    executor = SQLExecutor()
    executor.execute(spec, frame)  # warm the connection cache

    def run():
        spec.data = None
        return executor.execute(spec, frame)

    benchmark(run)


def test_table2_heatmap(benchmark, frame):
    spec = VisSpec(
        "rect",
        [
            Encoding("x", "price", "quantitative", bin_size=10),
            Encoding("y", "number_of_reviews", "quantitative", bin_size=10),
            Encoding("color", "", "quantitative", aggregate="count"),
        ],
    )
    executor = DataFrameExecutor()

    def run():
        spec.data = None
        return executor.execute(spec, frame)

    benchmark(run)


def test_table2_report(benchmark, frame):
    def _report():
        """Emit the Table 2 inventory with measured per-vis costs."""
        import time

        executor = DataFrameExecutor()
        rows = []
        operations = {
            "scatterplot": "Selection on 2 columns",
            "color_scatterplot": "Selection on 3 columns",
            "bar": "Group-By Aggregation",
            "colored_bar": "2D Group-By Aggregation",
            "histogram": "Bin + Count",
            "choropleth": "Group-By Aggregation",
        }
        for name, op in operations.items():
            spec = _spec_for(frame, name)
            spec.data = None
            start = time.perf_counter()
            executor.execute(spec, frame)
            elapsed = time.perf_counter() - start
            rows.append([name, op, f"{elapsed * 1000:.2f} ms"])
        from repro.bench import format_table

        emit(format_table(
            ["vis type", "relational operation (Table 2)", "measured"],
            rows,
            title=f"Table 2 — relational ops per vis type (Airbnb {N_ROWS} rows)",
        ))

    run_report(benchmark, _report)
