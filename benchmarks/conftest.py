"""Shared benchmark configuration.

Benchmark sizes default to laptop-friendly scales; set ``REPRO_BENCH_SCALE``
(e.g. 4 or 10) to multiply row counts toward the paper's full sizes.
"""

from __future__ import annotations

import os

import pytest

from repro import config_overlay

#: Multiplier applied to every row-count ladder below.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def scaled(n: int) -> int:
    return max(int(n * SCALE), 10)


#: Row ladders for the Fig. 10/11 sweeps (paper: 10k..10M / 100..100k).
AIRBNB_ROWS = [scaled(1_000), scaled(4_000), scaled(16_000)]
COMMUNITIES_ROWS = [scaled(100), scaled(400), scaled(1_600)]


@pytest.fixture(autouse=True)
def _config_isolation():
    with config_overlay():
        yield


#: All report blocks are appended here so they survive pytest's capture;
#: the final bench run concatenates this file into bench_output.txt.
RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results", "reports.txt")


def emit(text: str) -> None:
    """Record a report block: stderr (visible with -s) plus a results file."""
    import sys

    sys.stderr.write("\n" + text + "\n")
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")


def run_report(benchmark, fn):
    """Execute a figure/table report exactly once, visible to --benchmark-only."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
