"""Figure 11: time for a single dataframe print vs size x condition.

Measures exactly one ``repr(df)`` per condition and size (fresh frame,
metadata cold).  Expected shape: pandas is near-constant and tiny; the
optimized Lux conditions stay within a small constant of it (the paper's
"<= 2 s overhead" envelope at laptop scale); no-opt equals wflow here
because only a single print happens (footnote 5 of the paper).
"""

from __future__ import annotations

import time


from conftest import run_report, AIRBNB_ROWS, COMMUNITIES_ROWS, emit
from repro.bench import CONDITIONS, condition, format_table
from repro.data import make_airbnb, make_communities


def _time_single_print(make, n, cond) -> float:
    with condition(cond):
        frame = make(n)
        start = time.perf_counter()
        repr(frame)
        return time.perf_counter() - start


def test_fig11_print_kernel(benchmark):
    frame = make_airbnb(AIRBNB_ROWS[0])
    repr(frame)  # warm metadata + recommendations (memoized print)
    benchmark(lambda: repr(frame))


def test_fig11_report(benchmark):
    def _report():
        rows = []
        for label, make, sizes in (
            ("Airbnb", make_airbnb, AIRBNB_ROWS),
            ("Communities", make_communities, COMMUNITIES_ROWS),
        ):
            for n in sizes:
                timings = {
                    cond: _time_single_print(make, n, cond) for cond in CONDITIONS
                }
                rows.append([label, n] + [f"{timings[c]:.4f}" for c in CONDITIONS])
        emit(format_table(
            ["dataset", "rows"] + list(CONDITIONS),
            rows,
            title="Figure 11 — single print-df runtime [s] by condition",
        ))
        # Shape: overhead of the fully optimized print stays bounded, and the
        # pandas print is the cheapest.
        for row in rows:
            base = float(row[-1])
            all_opt = float(row[-2])
            assert base <= all_opt

    run_report(benchmark, _report)

def test_fig11_memoized_reprint_is_fast(benchmark):
    def _report():
        # Second print of an unmodified frame must hit the wflow memo.
        with condition("all-opt"):
            frame = make_airbnb(AIRBNB_ROWS[-1])
            repr(frame)
            start = time.perf_counter()
            repr(frame)
            reprint = time.perf_counter() - start
        assert reprint < 0.2

    run_report(benchmark, _report)
