"""Ablation benches for the design choices DESIGN.md §5 calls out.

1. prune guard: always-prune vs cost-model-guarded prune (guarded must not
   be slower when N <= k, where two passes are wasted work).
2. memoization: repeated prints of an unmodified frame (the paper's
   "non-committal operations" insight) with and without wflow.
3. scheduler: time-to-first-action under cost-based vs FIFO ordering.
4. sample cap: runtime vs recall trade-off across cached-sample caps.
"""

from __future__ import annotations

import time


from conftest import run_report, emit, scaled
from repro import config
from repro.bench import condition, format_table, recall_at_k
from repro.core.actions import CorrelationAction, OccurrenceAction
from repro.core.optimizer.sampling import rank_candidates
from repro.core.optimizer.scheduler import schedule_actions
from repro.data import make_airbnb, make_communities


# ----------------------------------------------------------------------
# 1. prune guard
# ----------------------------------------------------------------------
def test_ablation_prune_guard(benchmark):
    """When candidates <= k, the guard must skip the wasteful two passes."""
    frame = make_airbnb(scaled(30_000))
    config.sampling_start = 1_000
    config.sampling_cap = 3_000
    config.top_k = 15
    action = CorrelationAction()
    cands = action.candidates(frame)
    assert len(cands) <= config.top_k  # Airbnb has few quantitative pairs

    config.early_pruning = True  # guard makes this a no-op

    def guarded():
        return rank_candidates(action.candidates(frame), frame)

    result = benchmark.pedantic(guarded, rounds=2, iterations=1)
    assert len(result) == len(cands)


def test_ablation_prune_guard_report(benchmark):
    def _report():
        frame = make_communities(scaled(8_000), n_cols=34)
        config.sampling_start = 1_000
        config.sampling_cap = 1_000
        config.top_k = 15
        action = CorrelationAction()

        config.early_pruning = False
        start = time.perf_counter()
        rank_candidates(action.candidates(frame), frame)
        t_exact = time.perf_counter() - start

        config.early_pruning = True
        frame._sample_cache = None
        start = time.perf_counter()
        rank_candidates(action.candidates(frame), frame)
        t_pruned = time.perf_counter() - start

        emit(format_table(
            ["variant", "seconds"],
            [["exact (no prune)", f"{t_exact:.3f}"], ["guarded prune", f"{t_pruned:.3f}"]],
            title="Ablation — prune on a wide frame (N >> k)",
        ))

    run_report(benchmark, _report)

# ----------------------------------------------------------------------
# 2. memoization (wflow)
# ----------------------------------------------------------------------
def test_ablation_memoization_report(benchmark):
    def _report():
        frame = make_airbnb(scaled(10_000))
        reprints = 5

        with condition("wflow"):
            repr(frame)  # cold
            start = time.perf_counter()
            for _ in range(reprints):
                repr(frame)
            t_memo = time.perf_counter() - start

        with condition("no-opt"):
            frame._expire()
            repr(frame)
            start = time.perf_counter()
            for _ in range(reprints):
                frame._expire()  # naive: nothing is ever fresh
                repr(frame)
            t_naive = time.perf_counter() - start

        emit(format_table(
            ["variant", f"{reprints} reprints [s]"],
            [["wflow (memoized)", f"{t_memo:.4f}"], ["no-opt (recompute)", f"{t_naive:.4f}"]],
            title="Ablation — repeated prints of an unmodified dataframe",
        ))
        assert t_memo < t_naive

    run_report(benchmark, _report)

def test_ablation_memoized_reprint_kernel(benchmark):
    frame = make_airbnb(scaled(10_000))
    with condition("wflow"):
        repr(frame)
        benchmark(lambda: repr(frame))


# ----------------------------------------------------------------------
# 3. scheduler: time-to-first-action
# ----------------------------------------------------------------------
def test_ablation_scheduler_report(benchmark):
    def _report():
        frame = make_communities(scaled(4_000), n_cols=50)
        meta = frame.metadata
        actions = [a for a in
                   (CorrelationAction(), OccurrenceAction())
                   if a.applies_to(frame)]

        def time_to_first(cost_based: bool) -> float:
            config.cost_based_scheduling = cost_based
            ordered = schedule_actions(actions, meta)
            start = time.perf_counter()
            ordered[0].generate(frame)
            return time.perf_counter() - start

        t_fifo = time_to_first(False)      # FIFO: Correlation (laggard) first
        t_cost = time_to_first(True)       # cost-based: Occurrence first
        emit(format_table(
            ["policy", "time to first action [s]"],
            [["FIFO", f"{t_fifo:.3f}"], ["cost-based", f"{t_cost:.3f}"]],
            title="Ablation — async scheduling policy",
        ))
        assert t_cost <= t_fifo

    run_report(benchmark, _report)

# ----------------------------------------------------------------------
# 4. sample cap sweep
# ----------------------------------------------------------------------
def test_ablation_sample_cap_report(benchmark):
    def _report():
        frame = make_communities(scaled(8_000), n_cols=34)
        config.top_k = 15
        action = CorrelationAction()

        config.early_pruning = False
        exact = [v.spec.signature()
                 for v in rank_candidates(action.candidates(frame), frame)]

        rows = []
        for cap in (250, 1_000, 4_000):
            config.early_pruning = True
            config.sampling_start = cap - 1
            config.sampling_cap = cap
            frame._sample_cache = None
            start = time.perf_counter()
            ranked = rank_candidates(action.candidates(frame), frame)
            elapsed = time.perf_counter() - start
            sigs = [v.spec.signature() for v in ranked]
            rows.append([cap, f"{elapsed:.3f}", f"{recall_at_k(sigs, exact, 15):.2f}"])
        emit(format_table(
            ["sample cap [rows]", "seconds", "Recall@15"],
            rows,
            title="Ablation — cached-sample cap vs recall (paper picks 30k)",
        ))

    run_report(benchmark, _report)
