"""Figure 10: average notebook-cell runtime vs dataframe size x condition.

Reproduces the five-curve sweep (no-opt / wflow / wflow+prune / all-opt /
pandas) on both workloads.  Expected shape: no-opt is orders of magnitude
above the rest and grows with size; the optimized conditions cluster near
the pandas baseline (the paper reports up to 11x / 345x overall speedups
of all-opt over no-opt).
"""

from __future__ import annotations


from conftest import run_report, AIRBNB_ROWS, COMMUNITIES_ROWS, emit
from repro.bench import (
    CONDITIONS,
    build_airbnb_notebook,
    build_communities_notebook,
    format_table,
)


def _sweep(builder, sizes):
    table = {}
    for n in sizes:
        nb = builder(n)
        for cond in CONDITIONS:
            result = nb.run(cond)
            table[(n, cond)] = result.average_cell_runtime()
    return table


def test_fig10_airbnb_allopt_kernel(benchmark):
    nb = build_airbnb_notebook(AIRBNB_ROWS[0])
    benchmark.pedantic(lambda: nb.run("all-opt"), rounds=1, iterations=1)


def test_fig10_report(benchmark):
    def _report():
        rows = []
        speedups = {}
        for label, builder, sizes in (
            ("Airbnb", build_airbnb_notebook, AIRBNB_ROWS),
            ("Communities", build_communities_notebook, COMMUNITIES_ROWS),
        ):
            table = _sweep(builder, sizes)
            for n in sizes:
                rows.append(
                    [label, n]
                    + [f"{table[(n, c)]:.4f}" for c in CONDITIONS]
                )
            largest = sizes[-1]
            speedups[label] = table[(largest, "no-opt")] / max(
                table[(largest, "all-opt")], 1e-9
            )
        emit(format_table(
            ["dataset", "rows"] + list(CONDITIONS),
            rows,
            title="Figure 10 — average cell runtime [s] by condition",
        ))
        emit(
            "all-opt speedup over no-opt at the largest size: "
            + ", ".join(f"{k}: {v:.1f}x" for k, v in speedups.items())
        )
        # Shape: the optimizations must deliver a large speedup over no-opt.
        assert speedups["Airbnb"] > 3
        assert speedups["Communities"] > 3

    run_report(benchmark, _report)
