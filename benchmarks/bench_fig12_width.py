"""Figure 12 (left): single-print cost vs dataframe width.

Sweeps the synthetic 78/20/2 frame over column counts and fits the
power-law exponent of print time in width.  Paper shape: no-opt scales
super-linearly (power ~2.53, driven by the quadratic Correlation search
space) while prune+async brings the curve close to linear (power ~1.07).
"""

from __future__ import annotations

import time


from conftest import run_report, emit, scaled
from repro.bench import condition, fit_power_law, format_table
from repro.data import make_width_dataset

N_ROWS = scaled(10_000)
WIDTHS = [50, 100, 200, 400, 600]
CONDS = ["wflow", "wflow+prune", "all-opt"]


def _print_time(n_cols: int, cond: str) -> float:
    from repro import config

    with condition(cond):
        # Engage sampling at bench scale (the paper runs 100k rows with a
        # 30k cached sample; we keep the same ~10x sampling ratio).
        config.sampling_start = N_ROWS // 10
        config.sampling_cap = N_ROWS // 10
        frame = make_width_dataset(N_ROWS, n_cols, seed=1)
        frame.metadata  # paper: width measured with metadata precomputed
        start = time.perf_counter()
        repr(frame)
        return time.perf_counter() - start


def test_fig12_width_kernel(benchmark):
    with condition("all-opt"):
        frame = make_width_dataset(N_ROWS, WIDTHS[0], seed=1)

        def run():
            frame.expire_recommendations()
            repr(frame)

        benchmark.pedantic(run, rounds=2, iterations=1)


def test_fig12_width_report(benchmark):
    def _report():
        results = {cond: [] for cond in CONDS}
        for cond in CONDS:
            for w in WIDTHS:
                results[cond].append(_print_time(w, cond))
        rows = [
            [w] + [f"{results[c][i]:.4f}" for c in CONDS]
            for i, w in enumerate(WIDTHS)
        ]
        emit(format_table(
            ["columns"] + CONDS,
            rows,
            title=f"Figure 12 left — single print time [s] vs width ({N_ROWS} rows)",
        ))
        exponents = {c: fit_power_law(WIDTHS, results[c])[0] for c in CONDS}
        # The asymptotic slope is what the paper's log-log plot shows; the
        # small-width points are dominated by the fixed per-print cost, so
        # fit the tail (widest three points) separately.
        tail = {
            c: fit_power_law(WIDTHS[-3:], results[c][-3:])[0] for c in CONDS
        }
        emit(
            "fitted power-law exponents, full / tail "
            "(paper: no-opt 2.53 -> all-opt 1.07): "
            + ", ".join(
                f"{c}: {exponents[c]:.2f}/{tail[c]:.2f}" for c in CONDS
            )
        )
        # Shape: the un-pruned condition grows super-linearly in width
        # asymptotically; streaming (all-opt) flattens the curve.
        assert tail["wflow"] > 1.05
        assert tail["all-opt"] < tail["wflow"]
        # Pruned curves must not be more expensive at the widest setting.
        assert results["wflow+prune"][-1] <= results["wflow"][-1] * 1.15

    run_report(benchmark, _report)
