"""Notebook cell driver (substitution for papermill, §9.1).

A :class:`Notebook` is an ordered list of :class:`Cell` objects closed over
a shared environment dict.  Each cell is labelled ``print_df`` /
``print_series`` / ``code`` exactly as the paper labels its workload cells
(Table 3), and the runner measures per-cell wall time under a named
condition.

Under the ``no-opt`` condition the runner additionally force-recomputes
metadata and recommendations for every dataframe a cell touches — the
paper's "naive implementation ... where the results are explicitly computed
at the end of every cell involving a reference to the dataframe".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.config import config
from ..core.frame import LuxDataFrame
from .conditions import condition

__all__ = ["Cell", "CellTiming", "Notebook", "NotebookResult"]

CELL_KINDS = ("print_df", "print_series", "code")


@dataclass
class Cell:
    """One notebook cell: a label, a kind, and a body."""

    label: str
    kind: str
    body: Callable[[dict[str, Any]], Any]

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ValueError(f"unknown cell kind {self.kind!r}")


@dataclass
class CellTiming:
    label: str
    kind: str
    seconds: float


@dataclass
class NotebookResult:
    """Per-cell timings plus aggregate views used by Table 3 / Fig. 10-11."""

    notebook: str
    condition: str
    timings: list[CellTiming] = field(default_factory=list)

    def total(self, kind: str | None = None) -> float:
        return sum(t.seconds for t in self.timings if kind in (None, t.kind))

    def count(self, kind: str) -> int:
        return sum(1 for t in self.timings if t.kind == kind)

    def average_cell_runtime(self) -> float:
        return self.total() / max(len(self.timings), 1)

    def by_kind(self) -> dict[str, float]:
        return {kind: self.total(kind) for kind in CELL_KINDS}


class Notebook:
    """An executable, measurable notebook workload."""

    def __init__(
        self,
        name: str,
        setup: Callable[[], dict[str, Any]],
        cells: list[Cell],
    ) -> None:
        self.name = name
        self.setup = setup
        self.cells = list(cells)

    def counts(self) -> dict[str, int]:
        out = {k: 0 for k in CELL_KINDS}
        for cell in self.cells:
            out[cell.kind] += 1
        return out

    # ------------------------------------------------------------------
    def run(self, condition_name: str = "all-opt") -> NotebookResult:
        """Execute every cell under the condition, timing each one."""
        from ..core.optimizer.scheduler import drain_all

        result = NotebookResult(notebook=self.name, condition=condition_name)
        with condition(condition_name):
            env = self.setup()
            for cell in self.cells:
                start = time.perf_counter()
                value = cell.body(env)
                if cell.kind in ("print_df", "print_series") and value is not None:
                    # "Printing" = rendering the repr, which triggers the
                    # always-on machinery (or not, under the pandas condition).
                    repr(value)
                if condition_name == "no-opt":
                    self._naive_refresh(env, value)
                elapsed = time.perf_counter() - start
                result.timings.append(CellTiming(cell.label, cell.kind, elapsed))
                # Streamed (async) laggard actions complete during the user's
                # think-time between cells (§8.2 measures a median 2.8 s gap);
                # that wait is not attributable to any cell, so it is fenced
                # outside the timers.
                drain_all()
        return result

    @staticmethod
    def _naive_refresh(env: dict[str, Any], value: Any) -> None:
        """no-opt: recompute for the dataframe the cell referenced."""
        if not config.always_on:
            return
        candidates = [value, env.get("df"), env.get("result")]
        for obj in candidates:
            if isinstance(obj, LuxDataFrame):
                obj._expire()
                obj._refresh_all()
                return
