"""Benchmark harness: conditions, notebook driver, workloads, measurement."""

from .conditions import CONDITIONS, condition
from .measure import fit_power_law, format_table, recall_at_k, time_once
from .notebook import Cell, CellTiming, Notebook, NotebookResult
from .workloads import build_airbnb_notebook, build_communities_notebook

__all__ = [
    "CONDITIONS",
    "Cell",
    "CellTiming",
    "Notebook",
    "NotebookResult",
    "build_airbnb_notebook",
    "build_communities_notebook",
    "condition",
    "fit_power_law",
    "format_table",
    "recall_at_k",
    "time_once",
]
