"""The two benchmark notebooks (§9.2), modelled on public Kaggle EDA flows.

Cell-type counts match Table 3 exactly:

=============  ========  ============  =======
notebook       print df  print series  non-Lux
=============  ========  ============  =======
Airbnb         14        7             17
Communities    14        4             25
=============  ========  ============  =======

Each notebook follows the paper's description: loading, transformation,
cleaning, computing statistics, and (stand-in) machine-learning prep, with
dataframe/series prints interspersed to validate intermediate results.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..dataframe import qcut
from ..data.airbnb import make_airbnb
from ..data.communities import make_communities
from .notebook import Cell, Notebook

__all__ = ["build_airbnb_notebook", "build_communities_notebook"]


def _cell(label: str, kind: str, body: Callable[[dict[str, Any]], Any]) -> Cell:
    return Cell(label=label, kind=kind, body=body)


# ----------------------------------------------------------------------
# Airbnb: moderate width, many rows (14 df / 7 series / 17 code)
# ----------------------------------------------------------------------
def build_airbnb_notebook(n_rows: int = 50_000, seed: int = 0) -> Notebook:
    def setup() -> dict[str, Any]:
        return {"n_rows": n_rows, "seed": seed}

    cells = [
        # -- loading ----------------------------------------------------
        _cell("load csv", "code", lambda env: env.update(df=make_airbnb(env["n_rows"], env["seed"]))),
        _cell("peek df", "print_df", lambda env: env["df"]),
        _cell("head", "print_df", lambda env: env["df"].head(10)),
        _cell("shape", "code", lambda env: env["df"].shape),
        _cell("dtypes", "code", lambda env: env["df"].dtypes),
        # -- profiling --------------------------------------------------
        _cell("describe", "print_df", lambda env: env["df"].describe()),
        _cell("price series", "print_series", lambda env: env["df"]["price"]),
        _cell("room types", "print_series", lambda env: env["df"]["room_type"].value_counts()),
        _cell("nulls", "code", lambda env: env["df"].count()),
        _cell("nunique", "code", lambda env: env["df"].nunique()),
        # -- cleaning ---------------------------------------------------
        _cell("drop name col", "code", lambda env: env["df"].drop("name", inplace=True)),
        _cell("post-drop view", "print_df", lambda env: env["df"]),
        _cell("fill reviews", "code", lambda env: env["df"].fillna(0, inplace=True)),
        _cell("rename col", "code", lambda env: env["df"].rename(columns={"neighbourhood_group": "borough"}, inplace=True)),
        _cell("post-rename view", "print_df", lambda env: env["df"]),
        # -- transformation ----------------------------------------------
        _cell("log price", "code", lambda env: env["df"].__setitem__(
            "log_price", (env["df"]["price"] + 1.0).map(np.log))),
        _cell("log price hist", "print_series", lambda env: env["df"]["log_price"]),
        _cell("price tier", "code", lambda env: env["df"].__setitem__(
            "price_tier", qcut(env["df"]["price"], 3, labels=["Budget", "Mid", "Lux"]))),
        _cell("tier counts", "print_series", lambda env: env["df"]["price_tier"].value_counts()),
        _cell("post-bin view", "print_df", lambda env: env["df"]),
        # -- filtering / subsets -----------------------------------------
        _cell("manhattan subset", "code", lambda env: env.update(
            manhattan=env["df"][env["df"]["borough"] == "Manhattan"])),
        _cell("manhattan view", "print_df", lambda env: env["manhattan"]),
        _cell("cheap subset", "code", lambda env: env.update(
            cheap=env["df"][env["df"]["price"] < 100])),
        _cell("cheap view", "print_df", lambda env: env["cheap"]),
        _cell("cheap head", "print_df", lambda env: env["cheap"].head()),
        # -- aggregation --------------------------------------------------
        _cell("mean price by borough", "print_df", lambda env: env["df"].groupby("borough").mean()),
        _cell("counts by room type", "print_series", lambda env: env["df"].groupby("room_type").size()),
        _cell("pivot borough/room", "print_df", lambda env: env["df"].pivot_table(
            index="borough", columns="room_type", values="price", aggfunc="mean")),
        _cell("agg by tier", "print_df", lambda env: env["df"].groupby("price_tier").agg({"price": "mean", "number_of_reviews": "mean"})),
        # -- statistics ---------------------------------------------------
        _cell("corr matrix", "code", lambda env: env["df"][["price", "log_price", "minimum_nights", "number_of_reviews"]].corr()),
        _cell("price stats", "code", lambda env: (env["df"]["price"].mean(), env["df"]["price"].std())),
        _cell("reviews stats", "print_series", lambda env: env["df"]["number_of_reviews"]),
        # -- "ML prep" ----------------------------------------------------
        _cell("zscore price", "code", lambda env: env["df"].__setitem__(
            "price_z", (env["df"]["price"] - env["df"]["price"].mean()) / env["df"]["price"].std())),
        _cell("onehot-ish code", "code", lambda env: env["df"].__setitem__(
            "is_entire", (env["df"]["room_type"] == "Entire home/apt").astype("int64"))),
        _cell("feature view", "print_df", lambda env: env["df"][["price_z", "is_entire", "minimum_nights"]]),
        _cell("train mask", "code", lambda env: env.update(train=env["df"].sample(frac=0.8, random_state=1))),
        _cell("train view", "print_df", lambda env: env["train"]),
        _cell("top prices", "print_series", lambda env: env["df"]["price"].sort_values().tail(20)),
    ]
    return Notebook("airbnb", setup, cells)


# ----------------------------------------------------------------------
# Communities: wide frame (14 df / 4 series / 25 code)
# ----------------------------------------------------------------------
def build_communities_notebook(n_rows: int = 2_000, seed: int = 0) -> Notebook:
    def setup() -> dict[str, Any]:
        return {"n_rows": n_rows, "seed": seed}

    def numeric_cols(env: dict[str, Any]) -> list[str]:
        df = env["df"]
        return [c for c in df.columns if df.column(c).dtype.name == "float64"][:8]

    cells = [
        # -- loading ------------------------------------------------------
        _cell("load csv", "code", lambda env: env.update(df=make_communities(env["n_rows"], seed=env["seed"]))),
        _cell("peek df", "print_df", lambda env: env["df"]),
        _cell("head", "print_df", lambda env: env["df"].head()),
        _cell("shape", "code", lambda env: env["df"].shape),
        _cell("columns", "code", lambda env: env["df"].columns),
        _cell("dtypes", "code", lambda env: env["df"].dtypes),
        _cell("null counts", "code", lambda env: env["df"].count()),
        # -- profiling ------------------------------------------------------
        _cell("describe", "print_df", lambda env: env["df"][numeric_cols(env)].describe()),
        _cell("state counts", "print_series", lambda env: env["df"]["state"].value_counts()),
        _cell("crime series", "print_series", lambda env: env["df"][numeric_cols(env)[0]]),
        _cell("means", "code", lambda env: env["df"].mean()),
        _cell("variances", "code", lambda env: env["df"].var()),
        _cell("nunique", "code", lambda env: env["df"].nunique()),
        # -- cleaning --------------------------------------------------------
        _cell("dropna", "code", lambda env: env["df"].dropna(inplace=True)),
        _cell("post-clean view", "print_df", lambda env: env["df"]),
        _cell("rename", "code", lambda env: env["df"].rename(columns={"communityname": "community"}, inplace=True)),
        _cell("post-rename view", "print_df", lambda env: env["df"]),
        # -- transformation ----------------------------------------------------
        _cell("risk score", "code", lambda env: env["df"].__setitem__(
            "risk", sum((env["df"][c] for c in numeric_cols(env)[1:4]), env["df"][numeric_cols(env)[0]]))),
        _cell("risk view", "print_series", lambda env: env["df"]["risk"]),
        _cell("risk level", "code", lambda env: env["df"].__setitem__(
            "risk_level", qcut(env["df"]["risk"], 2, labels=["Low", "High"]))),
        _cell("post-risk view", "print_df", lambda env: env["df"]),
        _cell("drop helper", "code", lambda env: env["df"].drop("risk", inplace=True)),
        _cell("post-drop view", "print_df", lambda env: env["df"]),
        # -- subsets ----------------------------------------------------------
        _cell("california", "code", lambda env: env.update(ca=env["df"][env["df"]["state"] == "California"])),
        _cell("ca view", "print_df", lambda env: env["ca"]),
        _cell("high risk", "code", lambda env: env.update(high=env["df"][env["df"]["risk_level"] == "High"])),
        _cell("high view", "print_df", lambda env: env["high"]),
        _cell("high head", "print_df", lambda env: env["high"].head()),
        # -- aggregation ---------------------------------------------------------
        _cell("mean by state", "print_df", lambda env: env["df"].groupby("state")[numeric_cols(env)[:4]].mean()),
        _cell("size by level", "print_series", lambda env: env["df"].groupby("risk_level").size()),
        _cell("pivot state/level", "print_df", lambda env: env["df"].pivot_table(
            index="state", columns="risk_level", values=numeric_cols(env)[0], aggfunc="mean")),
        # -- statistics ------------------------------------------------------------
        _cell("corr pairs", "code", lambda env: env["df"][numeric_cols(env)[:6]].corr()),
        _cell("top corr find", "code", lambda env: max(
            abs(v)
            for row in env["df"][numeric_cols(env)[:4]].corr().to_records()
            for v in row.values()
            if isinstance(v, float) and abs(v) < 0.999)),
        _cell("quantiles", "code", lambda env: env["df"][numeric_cols(env)[0]].median()),
        # -- ML prep ---------------------------------------------------------------
        _cell("zscore block", "code", lambda env: [env["df"].__setitem__(
            f"z_{c}", (env["df"][c] - env["df"][c].mean()) / (env["df"][c].std() or 1.0)) for c in numeric_cols(env)[:3]]),
        _cell("target encode", "code", lambda env: env["df"].__setitem__(
            "target", (env["df"]["risk_level"] == "High").astype("int64"))),
        _cell("feature matrix", "code", lambda env: env.update(X=env["df"][[f"z_{c}" for c in numeric_cols(env)[:3]]])),
        _cell("X view", "print_df", lambda env: env["X"]),
        _cell("train split", "code", lambda env: env.update(train=env["df"].sample(frac=0.7, random_state=2))),
        _cell("train view", "print_df", lambda env: env["train"]),
        _cell("coef calc", "code", lambda env: np.linalg.lstsq(
            np.column_stack([env["X"].column(c).to_float() for c in env["X"].columns]),
            np.asarray(env["df"]["target"].to_list(), dtype=float), rcond=None)[0]),
        _cell("sorted communities", "code", lambda env: env["df"].sort_values("target", ascending=False).head(10)),
        _cell("final summary", "code", lambda env: env["df"].shape),
    ]
    return Notebook("communities", setup, cells)
