"""Measurement and reporting helpers shared by the benchmark targets."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

__all__ = [
    "fit_power_law",
    "format_table",
    "recall_at_k",
    "time_once",
]


def time_once(fn: Callable[[], Any]) -> tuple[float, Any]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Fit ``y = c * x^p`` by least squares in log space; returns (p, c).

    Used for Fig. 12 (left): the paper reports the no-opt curve scaling with
    power 2.53 over column count and all-opt near-linear at 1.07.
    """
    lx = np.log(np.asarray(xs, dtype=float))
    ly = np.log(np.asarray(ys, dtype=float))
    ok = np.isfinite(lx) & np.isfinite(ly)
    if ok.sum() < 2:
        return float("nan"), float("nan")
    p, logc = np.polyfit(lx[ok], ly[ok], 1)
    return float(p), float(math.exp(logc))


def recall_at_k(approx_ranking: Sequence[Any], exact_ranking: Sequence[Any], k: int) -> float:
    """|top-k(approx) ∩ top-k(exact)| / k — the paper's Recall@15 metric."""
    if k <= 0:
        return 0.0
    top_approx = set(list(approx_ranking)[:k])
    top_exact = set(list(exact_ranking)[:k])
    if not top_exact:
        return 1.0
    return len(top_approx & top_exact) / min(k, len(top_exact))


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Fixed-width text table for benchmark stdout reports."""
    def fmt(v: Any) -> str:
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) < 0.01 or abs(v) >= 10_000:
                return f"{v:.3e}"
            return f"{v:.3f}"
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in cells)) if cells else len(headers[j])
        for j in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
