"""Benchmark conditions (§9.1) and config save/restore helpers."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from ..core.config import config, config_overlay
from ..core.optimizer.scheduler import drain_all

__all__ = ["CONDITIONS", "condition"]

#: The five measured conditions, in the paper's order.
CONDITIONS = ("no-opt", "wflow", "wflow+prune", "all-opt", "pandas")


@contextmanager
def condition(name: str) -> Iterator[None]:
    """Apply a named condition's flag set, restoring config afterwards."""
    with config_overlay():
        config.apply_condition(name)
        try:
            yield
        finally:
            # Fence in-flight streaming work so one measured condition
            # cannot steal CPU from the next.
            drain_all()
