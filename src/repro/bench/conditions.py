"""Benchmark conditions (§9.1) and config save/restore helpers."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from ..core.config import config
from ..core.optimizer.scheduler import drain_all

__all__ = ["CONDITIONS", "condition"]

#: The five measured conditions, in the paper's order.
CONDITIONS = ("no-opt", "wflow", "wflow+prune", "all-opt", "pandas")


@contextmanager
def condition(name: str) -> Iterator[None]:
    """Apply a named condition's flag set, restoring config afterwards."""
    snapshot = config.snapshot()
    try:
        config.apply_condition(name)
        yield
    finally:
        # Fence in-flight streaming work so one measured condition cannot
        # steal CPU from the next.
        drain_all()
        config.restore(snapshot)
