"""Static HTML reports — the §10.3 "Integration with Downstream Reports".

The paper found per-chart code export unsustainable once users wanted to
share whole dashboards, motivating one-shot static exports.  This module
renders one or many LuxDataFrames into a single self-contained HTML report
(all actions, all charts, plus the data summary), suitable for sharing
with stakeholders who have no Python setup.
"""

from __future__ import annotations

import html as _html
import json
from typing import Any, Mapping

from .vegalite import to_vegalite

__all__ = ["render_report"]

_PAGE = """<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>{title}</title>
<script src="https://cdn.jsdelivr.net/npm/vega@5"></script>
<script src="https://cdn.jsdelivr.net/npm/vega-lite@5"></script>
<script src="https://cdn.jsdelivr.net/npm/vega-embed@6"></script>
<style>
body {{ font-family: Georgia, serif; max-width: 1080px; margin: 2em auto; }}
h1 {{ border-bottom: 3px solid #4c78a8; padding-bottom: 6px; }}
h2 {{ color: #4c78a8; margin-top: 1.6em; }}
h3 {{ margin-bottom: 4px; }}
.charts {{ display: flex; flex-wrap: wrap; gap: 18px; }}
.chart {{ border: 1px solid #e0e0e0; border-radius: 4px; padding: 8px; }}
.meta {{ font-size: 13px; color: #555; }}
table.summary {{ border-collapse: collapse; font-size: 13px; margin: 8px 0; }}
table.summary td, table.summary th {{ border: 1px solid #ccc; padding: 3px 9px; }}
</style>
</head>
<body>
<h1>{title}</h1>
{sections}
<script>
const SPECS = {specs_json};
for (const [id, spec] of Object.entries(SPECS)) {{
  if (window.vegaEmbed) {{
    vegaEmbed('#' + id, spec, {{actions: false}}).catch(() => {{}});
  }} else {{
    const el = document.getElementById(id);
    if (el) el.textContent = JSON.stringify(spec, null, 1);
  }}
}}
</script>
</body>
</html>
"""


def _summary_table(frame: Any) -> str:
    rows = []
    meta = frame.metadata
    for attr in meta:
        rows.append(
            "<tr>"
            f"<td>{_html.escape(attr.name)}</td>"
            f"<td>{attr.data_type}</td>"
            f"<td>{attr.cardinality}</td>"
            f"<td>{attr.null_count}</td>"
            "</tr>"
        )
    return (
        '<table class="summary"><thead><tr>'
        "<th>attribute</th><th>type</th><th>cardinality</th><th>missing</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


def render_report(
    frames: Mapping[str, Any],
    title: str = "Lux report",
    charts_per_action: int = 4,
) -> str:
    """Render a named collection of LuxDataFrames into one HTML report."""
    sections: list[str] = []
    specs: dict[str, dict[str, Any]] = {}
    for f_i, (name, frame) in enumerate(frames.items()):
        parts = [f"<h2>{_html.escape(name)}</h2>"]
        parts.append(
            f'<p class="meta">{frame.shape[0]} rows × {frame.shape[1]} '
            "columns</p>"
        )
        parts.append(_summary_table(frame))
        recs = frame.recommendations
        for action in recs.keys():
            vislist = recs[action]
            if not len(vislist):
                continue
            parts.append(
                f"<h3>{_html.escape(action)}</h3>"
                f'<p class="meta">{len(vislist)} recommendation(s)</p>'
            )
            divs = []
            for v_i, vis in enumerate(list(vislist)[:charts_per_action]):
                if vis.spec is None:
                    continue
                div_id = f"report-{f_i}-{_slug(action)}-{v_i}"
                specs[div_id] = to_vegalite(vis.spec)
                divs.append(f'<div class="chart" id="{div_id}"></div>')
            parts.append(f'<div class="charts">{"".join(divs)}</div>')
        sections.append("\n".join(parts))
    return _PAGE.format(
        title=_html.escape(title),
        sections="\n".join(sections),
        specs_json=json.dumps(specs),
    )


def _slug(text: str) -> str:
    return "".join(ch if ch.isalnum() else "-" for ch in text)
