"""Visualization layer: Vega-Lite-style specs with swappable renderers.

Stands in for Altair/Vega-Lite in the paper's stack.  A :class:`VisSpec`
holds mark + encodings + processed data; renderers turn it into Vega-Lite
JSON, terminal unicode charts, a standalone HTML widget, or exported
Altair/matplotlib source code.
"""

from .ascii import render_ascii
from .code_export import to_altair_code, to_matplotlib_code
from .encoding import CHANNELS, FIELD_TYPES, Encoding
from .html import render_widget
from .marks import MARKS, infer_mark
from .report import render_report
from .spec import VisSpec
from .vegalite import to_vegalite

__all__ = [
    "CHANNELS",
    "Encoding",
    "FIELD_TYPES",
    "MARKS",
    "VisSpec",
    "infer_mark",
    "render_ascii",
    "render_report",
    "render_widget",
    "to_altair_code",
    "to_matplotlib_code",
    "to_vegalite",
]
