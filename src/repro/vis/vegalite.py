"""VisSpec -> Vega-Lite v5 JSON dict, plus wire-safe payloads.

:func:`to_vegalite` builds the chart spec for notebook/HTML rendering;
:func:`spec_payload` wraps it into the fully JSON-serializable record the
recommendation service stores and serves (deep-sanitized via
:func:`json_safe`, so numpy scalars and datetimes can never leak into a
stored payload and fail at response time).
"""

from __future__ import annotations

import datetime as _dt
from typing import Any

import numpy as np

from .spec import VisSpec

__all__ = ["to_vegalite", "json_safe", "spec_payload"]

_SCHEMA = "https://vega.github.io/schema/vega-lite/v5.json"


def _json_safe(value: Any) -> Any:
    if value is None:
        return None
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        v = float(value)
        return None if np.isnan(v) else v
    if isinstance(value, np.datetime64):
        return str(value.astype("datetime64[s]"))
    if isinstance(value, (_dt.date, _dt.datetime)):
        return value.isoformat()
    if isinstance(value, float) and np.isnan(value):
        return None
    return value


def to_vegalite(spec: VisSpec) -> dict[str, Any]:
    """Build the Vega-Lite spec; processed data is embedded inline."""
    encoding: dict[str, Any] = {}
    for enc in spec.encodings:
        encoding[enc.channel] = enc.to_vegalite()

    mark: Any = {"bar": "bar", "histogram": "bar"}.get(spec.mark, spec.mark)
    if spec.mark == "point":
        mark = {"type": "point", "filled": True, "opacity": 0.7}
    if spec.mark == "geoshape":
        mark = {"type": "geoshape"}

    out: dict[str, Any] = {
        "$schema": _SCHEMA,
        "title": spec.title,
        "mark": mark,
        "encoding": encoding,
    }
    if spec.data is not None:
        out["data"] = {
            "values": [
                {k: _json_safe(v) for k, v in row.items()} for row in spec.data
            ]
        }
    else:
        out["data"] = {"name": "table"}
    if spec.filters:
        out["transform"] = [
            {"filter": _filter_expr(attr, op, value)}
            for attr, op, value in spec.filters
        ]
    return out


def json_safe(value: Any) -> Any:
    """Deep-sanitize ``value`` into plain JSON types (dicts/lists walked)."""
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return [json_safe(v) for v in value.tolist()]
    if isinstance(value, (np.bool_, bool)):
        return bool(value)
    return _json_safe(value)


def spec_payload(spec: VisSpec, score: float | None = None) -> dict[str, Any]:
    """The service's wire format for one recommended visualization.

    Everything the API needs to render and rank: the vega-lite spec (data
    inline), the interestingness score, and enough summary fields (mark,
    title, fields, filters) for clients that only list recommendations
    without rendering them.  ``key`` is the stable candidate identity
    (:func:`~repro.vis.spec.candidate_key`) that per-vis provenance maps
    are keyed on; it is a pure function of the spec's signature, so the
    foreground and background paths emit identical keys.  Guaranteed
    ``json.dumps``-able.
    """
    from .spec import candidate_key

    return {
        "key": candidate_key(spec),
        "title": spec.title,
        "mark": spec.mark,
        "fields": spec.fields(),
        "filters": json_safe([list(f) for f in spec.filters]),
        "score": None if score is None else round(float(score), 6),
        "vegalite": json_safe(to_vegalite(spec)),
    }


def _filter_expr(attr: str, op: str, value: Any) -> str:
    literal = f"'{value}'" if isinstance(value, str) else repr(value)
    js_op = {"=": "==", "!=": "!=", ">": ">", "<": "<", ">=": ">=", "<=": "<="}[op]
    return f"datum['{attr}'] {js_op} {literal}"
