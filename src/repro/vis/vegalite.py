"""VisSpec -> Vega-Lite v5 JSON dict."""

from __future__ import annotations

import datetime as _dt
from typing import Any

import numpy as np

from .spec import VisSpec

__all__ = ["to_vegalite"]

_SCHEMA = "https://vega.github.io/schema/vega-lite/v5.json"


def _json_safe(value: Any) -> Any:
    if value is None:
        return None
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        v = float(value)
        return None if np.isnan(v) else v
    if isinstance(value, np.datetime64):
        return str(value.astype("datetime64[s]"))
    if isinstance(value, (_dt.date, _dt.datetime)):
        return value.isoformat()
    if isinstance(value, float) and np.isnan(value):
        return None
    return value


def to_vegalite(spec: VisSpec) -> dict[str, Any]:
    """Build the Vega-Lite spec; processed data is embedded inline."""
    encoding: dict[str, Any] = {}
    for enc in spec.encodings:
        encoding[enc.channel] = enc.to_vegalite()

    mark: Any = {"bar": "bar", "histogram": "bar"}.get(spec.mark, spec.mark)
    if spec.mark == "point":
        mark = {"type": "point", "filled": True, "opacity": 0.7}
    if spec.mark == "geoshape":
        mark = {"type": "geoshape"}

    out: dict[str, Any] = {
        "$schema": _SCHEMA,
        "title": spec.title,
        "mark": mark,
        "encoding": encoding,
    }
    if spec.data is not None:
        out["data"] = {
            "values": [
                {k: _json_safe(v) for k, v in row.items()} for row in spec.data
            ]
        }
    else:
        out["data"] = {"name": "table"}
    if spec.filters:
        out["transform"] = [
            {"filter": _filter_expr(attr, op, value)}
            for attr, op, value in spec.filters
        ]
    return out


def _filter_expr(attr: str, op: str, value: Any) -> str:
    literal = f"'{value}'" if isinstance(value, str) else repr(value)
    js_op = {"=": "==", "!=": "!=", ">": ">", "<": "<", ">=": ">=", "<=": "<="}[op]
    return f"datum['{attr}'] {js_op} {literal}"
