"""Mark (chart) types and the mark-selection rule table.

The compiler's *Infer* stage (§7.1.2) chooses a mark from the combination of
field types on the spatial channels, following the rule-based heuristics the
paper cites (Mackinlay's Show Me / Few's best practices).
"""

from __future__ import annotations

__all__ = ["MARKS", "infer_mark"]

#: Supported mark types and the Vega-Lite mark string they render as.
MARKS = {
    "bar": "bar",
    "line": "line",
    "point": "point",  # scatterplot
    "tick": "tick",
    "rect": "rect",  # heatmap
    "geoshape": "geoshape",  # choropleth map
    "area": "area",
    "histogram": "bar",  # binned bar
}


def infer_mark(x_type: str | None, y_type: str | None, binned: bool = False) -> str:
    """Pick a mark from the field types on x and y.

    Rules (Q = quantitative, N = nominal/geographic, T = temporal):

    - Q alone, binned        -> histogram
    - N alone                -> bar (count)
    - T alone                -> line (count over time)
    - geographic alone       -> geoshape (choropleth)
    - Q x Q                  -> point (scatter)
    - N x Q / Q x N          -> bar
    - T x Q                  -> line
    - N x N                  -> rect (count heatmap)
    """
    def norm(t: str | None) -> str | None:
        return None if t is None else t

    x, y = norm(x_type), norm(y_type)
    if x == "geographic" or y == "geographic":
        return "geoshape"
    if y is None or x is None:
        only = x or y
        if only == "quantitative":
            return "histogram" if binned else "tick"
        if only == "temporal":
            return "line"
        return "bar"
    if x == "temporal" or y == "temporal":
        return "line"
    if x == "quantitative" and y == "quantitative":
        return "rect" if binned else "point"
    if x == "quantitative" or y == "quantitative":
        return "bar"
    return "rect"
