"""Standalone HTML widget output.

Replaces the ipywidgets frontend: :func:`render_widget` produces a single
HTML file with the pandas-style table view, a toggle, and one tab per
action whose charts are embedded as Vega-Lite specs (rendered by vega-embed
when opened with network access, with an inline JSON fallback otherwise).
"""

from __future__ import annotations

import html as _html
import json
from typing import Any, Mapping, Sequence

from .spec import VisSpec
from .vegalite import to_vegalite

__all__ = ["render_widget"]

_PAGE = """<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>{title}</title>
<script src="https://cdn.jsdelivr.net/npm/vega@5"></script>
<script src="https://cdn.jsdelivr.net/npm/vega-lite@5"></script>
<script src="https://cdn.jsdelivr.net/npm/vega-embed@6"></script>
<style>
body {{ font-family: sans-serif; margin: 1.5em; }}
.tabs button {{ padding: 6px 14px; border: none; background: #eee; cursor: pointer; }}
.tabs button.active {{ background: #4c78a8; color: white; }}
.panel {{ display: none; padding: 10px 0; }}
.panel.active {{ display: flex; flex-wrap: wrap; gap: 16px; }}
.chart {{ border: 1px solid #ddd; padding: 6px; }}
table.df {{ border-collapse: collapse; font-size: 13px; }}
table.df td, table.df th {{ border: 1px solid #ccc; padding: 3px 8px; }}
#toggle {{ margin: 10px 0; padding: 6px 14px; cursor: pointer; }}
</style>
</head>
<body>
<h2>{title}</h2>
<button id="toggle" onclick="toggleView()">Toggle Pandas/Lux</button>
<div id="table-view">{table}</div>
<div id="lux-view" style="display:none">
  <div class="tabs">{tab_buttons}</div>
  {panels}
</div>
<script>
function toggleView() {{
  const t = document.getElementById('table-view');
  const l = document.getElementById('lux-view');
  const showLux = l.style.display === 'none';
  l.style.display = showLux ? 'block' : 'none';
  t.style.display = showLux ? 'none' : 'block';
}}
function showTab(name) {{
  document.querySelectorAll('.panel').forEach(p => p.classList.remove('active'));
  document.querySelectorAll('.tabs button').forEach(b => b.classList.remove('active'));
  document.getElementById('panel-' + name).classList.add('active');
  document.getElementById('tab-' + name).classList.add('active');
}}
const SPECS = {specs_json};
for (const [id, spec] of Object.entries(SPECS)) {{
  if (window.vegaEmbed) {{
    vegaEmbed('#' + id, spec, {{actions: false}}).catch(() => {{}});
  }} else {{
    document.getElementById(id).textContent = JSON.stringify(spec, null, 1);
  }}
}}
{activate_first}
</script>
</body>
</html>
"""


def _table_html(records: Sequence[Mapping[str, Any]], columns: Sequence[str]) -> str:
    head = "".join(f"<th>{_html.escape(str(c))}</th>" for c in columns)
    body_rows = []
    for row in records:
        cells = "".join(
            f"<td>{_html.escape('' if row.get(c) is None else str(row.get(c)))}</td>"
            for c in columns
        )
        body_rows.append(f"<tr>{cells}</tr>")
    return (
        f'<table class="df"><thead><tr>{head}</tr></thead>'
        f"<tbody>{''.join(body_rows)}</tbody></table>"
    )


def render_widget(
    actions: Mapping[str, Sequence[VisSpec]],
    table_records: Sequence[Mapping[str, Any]] = (),
    table_columns: Sequence[str] = (),
    title: str = "Lux widget",
) -> str:
    """Build the full widget HTML for a dict of action name -> charts."""
    tab_buttons = []
    panels = []
    specs: dict[str, dict[str, Any]] = {}
    for tab_i, (name, charts) in enumerate(actions.items()):
        safe = "".join(ch if ch.isalnum() else "-" for ch in name)
        tab_buttons.append(
            f'<button id="tab-{safe}" onclick="showTab(\'{safe}\')">'
            f"{_html.escape(name)} ({len(charts)})</button>"
        )
        divs = []
        for j, chart in enumerate(charts):
            div_id = f"vis-{safe}-{j}"
            specs[div_id] = to_vegalite(chart)
            divs.append(f'<div class="chart" id="{div_id}"></div>')
        panels.append(f'<div class="panel" id="panel-{safe}">{"".join(divs)}</div>')

    first = next(iter(actions), None)
    first_safe = (
        "".join(ch if ch.isalnum() else "-" for ch in first) if first else None
    )
    activate = f"showTab('{first_safe}');" if first_safe else ""
    return _PAGE.format(
        title=_html.escape(title),
        table=_table_html(table_records, table_columns),
        tab_buttons="".join(tab_buttons),
        panels="".join(panels),
        specs_json=json.dumps(specs),
        activate_first=activate,
    )
