"""VisSpec: a complete, renderer-independent visualization specification.

A spec is the *output* of Lux's intent compiler: mark + encodings +
(optionally) the processed data attached by the execution engine.  Renderers
(Vega-Lite JSON, ASCII, HTML, code export) all consume this one object,
mirroring the paper's swappable-renderer design (Fig. 8).
"""

from __future__ import annotations

import hashlib
from typing import Any, Sequence

from .encoding import Encoding
from .marks import MARKS

__all__ = ["VisSpec", "candidate_key", "filter_signature"]


def filter_signature(filters: Any) -> tuple:
    """Hashable identity of a filter clause list (order-insensitive).

    The single definition shared by spec dedup (:meth:`VisSpec.signature`)
    and the executor's shared-scan cache, so the two identities can never
    drift apart.
    """
    return tuple(sorted((a, op, repr(v)) for a, op, v in filters))


def candidate_key(spec: "VisSpec") -> str:
    """Stable per-vis identity string derived from :meth:`VisSpec.signature`.

    The key is deterministic across processes (pure function of mark,
    encodings, and filter signature — no ids, no hashes of live objects),
    so candidate-level footprints, store entries, and provenance maps can
    all refer to the same vis by the same short token.
    """
    raw = repr(spec.signature()).encode("utf-8")
    return hashlib.blake2b(raw, digest_size=8).hexdigest()


class VisSpec:
    """Mark + encodings + optional inline data and filter description."""

    def __init__(
        self,
        mark: str,
        encodings: Sequence[Encoding],
        title: str | None = None,
        filters: Sequence[tuple[str, str, Any]] = (),
    ) -> None:
        if mark not in MARKS:
            raise ValueError(f"unknown mark {mark!r}")
        self.mark = mark
        self.encodings = list(encodings)
        self.filters = list(filters)
        self.title = title or self._default_title()
        #: list-of-records attached after execution; None until processed.
        self.data: list[dict[str, Any]] | None = None

    # ------------------------------------------------------------------
    def get_encoding(self, channel: str) -> Encoding | None:
        for enc in self.encodings:
            if enc.channel == channel:
                return enc
        return None

    @property
    def x(self) -> Encoding | None:
        return self.get_encoding("x")

    @property
    def y(self) -> Encoding | None:
        return self.get_encoding("y")

    @property
    def color(self) -> Encoding | None:
        return self.get_encoding("color")

    def fields(self) -> list[str]:
        return [e.field for e in self.encodings if e.field]

    def _default_title(self) -> str:
        parts = [e.title for e in self.encodings if e.channel in ("x", "y")]
        title = " vs ".join(parts) if len(parts) == 2 else (parts[0] if parts else "")
        if self.filters:
            conds = ", ".join(f"{a} {op} {v}" for a, op, v in self.filters)
            title = f"{title} ({conds})" if title else conds
        return title

    def filter_description(self) -> str:
        return " and ".join(f"{a} {op} {v!r}" for a, op, v in self.filters)

    # ------------------------------------------------------------------
    def to_vegalite(self) -> dict[str, Any]:
        """Render to a Vega-Lite v5 spec dict (inline data when processed)."""
        from .vegalite import to_vegalite

        return to_vegalite(self)

    def to_ascii(self, width: int = 60, height: int = 14) -> str:
        """Render to a unicode terminal chart (requires processed data)."""
        from .ascii import render_ascii

        return render_ascii(self, width=width, height=height)

    def to_altair_code(self) -> str:
        """Python source for the equivalent Altair chart (export feature)."""
        from .code_export import to_altair_code

        return to_altair_code(self)

    def to_matplotlib_code(self) -> str:
        """Python source for the equivalent matplotlib chart."""
        from .code_export import to_matplotlib_code

        return to_matplotlib_code(self)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        encs = ", ".join(
            f"{e.channel}={e.field or 'count()'}"
            + (f":{e.aggregate}" if e.aggregate else "")
            for e in self.encodings
        )
        state = "processed" if self.data is not None else "unprocessed"
        return f"VisSpec<{self.mark}>({encs}) [{state}]"

    def signature(self) -> tuple:
        """Hashable identity used for caching and deduplication."""
        encs = tuple(
            # resolved_bin_size, not the raw field: an explicit size equal
            # to the config default and an unset size (0-sentinel) render
            # identically and must dedupe identically.
            (e.channel, e.field, e.field_type, e.aggregate, e.bin,
             e.resolved_bin_size)
            for e in sorted(self.encodings, key=lambda e: e.channel)
        )
        return (self.mark, encs, filter_signature(self.filters))
