"""Terminal renderer: unicode charts for processed VisSpecs.

This stands in for the Jupyter widget frontend — the paper excludes frontend
drawing time from all measurements, so a lightweight textual renderer
preserves every measured code path while keeping examples runnable in a
plain console.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .spec import VisSpec

__all__ = ["render_ascii"]

_BLOCKS = " ▏▎▍▌▋▊▉█"
_SHADES = " ░▒▓█"


def _series(spec: VisSpec, channel: str) -> list[Any]:
    enc = spec.get_encoding(channel)
    if enc is None or spec.data is None:
        return []
    key = enc.field if enc.field else "count"
    return [row.get(key) for row in spec.data]


def _fmt(v: Any, width: int = 12) -> str:
    if v is None:
        text = "NaN"
    elif isinstance(v, float):
        text = f"{v:.4g}"
    else:
        text = str(v)
    return text[:width].rjust(width)


def _hbar(label: Any, value: float, vmax: float, width: int) -> str:
    frac = 0.0 if vmax <= 0 else max(value, 0.0) / vmax
    cells = frac * width
    full = int(cells)
    rem = int((cells - full) * 8)
    bar = "█" * full + (_BLOCKS[rem] if rem else "")
    return f"{_fmt(label)} | {bar} {value:.4g}"


def render_ascii(spec: VisSpec, width: int = 60, height: int = 14) -> str:
    """Render a processed spec to a unicode chart string."""
    if spec.data is None:
        return f"[unprocessed] {spec!r}"
    if not spec.data:
        return f"{spec.title}\n(no data)"
    renderer = {
        "bar": _render_bar,
        "histogram": _render_bar,
        "line": _render_line,
        "area": _render_line,
        "point": _render_scatter,
        "tick": _render_scatter,
        "rect": _render_heatmap,
        "geoshape": _render_bar,
    }[spec.mark]
    body = renderer(spec, width, height)
    return f"{spec.title}\n{body}"


def _bar_axes(spec: VisSpec) -> tuple[str, str]:
    """(label_channel, value_channel) for bar-family marks."""
    x, y = spec.x, spec.y
    if x is not None and x.field_type == "quantitative" and x.aggregate:
        return "y", "x"
    if y is not None and (y.field_type == "quantitative" or y.aggregate):
        return "x", "y"
    return ("x", "y") if y is not None else ("x", "x")


def _render_bar(spec: VisSpec, width: int, height: int) -> str:
    label_ch, value_ch = _bar_axes(spec)
    labels = _series(spec, label_ch)
    values = [v if isinstance(v, (int, float)) and v is not None else 0.0
              for v in _series(spec, value_ch)]
    if not labels:
        labels = list(range(len(values)))
    color = spec.color
    lines = []
    vmax = max([abs(v) for v in values], default=1.0) or 1.0
    rows = list(zip(labels, values))
    if color is not None and spec.data is not None:
        groups = [row.get(color.field) for row in spec.data]
        rows = [(f"{l} / {g}", v) for (l, v), g in zip(rows, groups)]
    shown = rows[: max(height * 2, 20)]
    for label, value in shown:
        lines.append(_hbar(label, float(value), vmax, width - 20))
    if len(rows) > len(shown):
        lines.append(f"... ({len(rows) - len(shown)} more bars)")
    return "\n".join(lines)


def _grid_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int,
    height: int,
    char: str = "•",
) -> str:
    xs = np.asarray([x for x in xs if x is not None], dtype=float)
    ys = np.asarray([y for y in ys if y is not None], dtype=float)
    n = min(len(xs), len(ys))
    xs, ys = xs[:n], ys[:n]
    ok = ~(np.isnan(xs) | np.isnan(ys))
    xs, ys = xs[ok], ys[ok]
    if len(xs) == 0:
        return "(no data)"
    x0, x1 = float(xs.min()), float(xs.max())
    y0, y1 = float(ys.min()), float(ys.max())
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1
    grid = [[" "] * width for _ in range(height)]
    ci = np.clip(((xs - x0) / (x1 - x0) * (width - 1)).astype(int), 0, width - 1)
    ri = np.clip(((ys - y0) / (y1 - y0) * (height - 1)).astype(int), 0, height - 1)
    for c, r in zip(ci, ri):
        grid[height - 1 - r][c] = char
    lines = ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" x: [{x0:.4g}, {x1:.4g}]  y: [{y0:.4g}, {y1:.4g}]")
    return "\n".join(lines)


def _to_floats(values: list[Any]) -> list[float]:
    out = []
    for v in values:
        if v is None:
            out.append(np.nan)
        elif isinstance(v, (int, float)):
            out.append(float(v))
        else:
            out.append(np.nan)
    return out


def _render_scatter(spec: VisSpec, width: int, height: int) -> str:
    xs = _to_floats(_series(spec, "x"))
    ys = _to_floats(_series(spec, "y")) if spec.y is not None else [0.0] * len(xs)
    return _grid_plot(xs, ys, width, height)


def _render_line(spec: VisSpec, width: int, height: int) -> str:
    xs_raw = _series(spec, "x")
    xs = _to_floats(xs_raw)
    if all(np.isnan(x) for x in xs):
        xs = list(map(float, range(len(xs_raw))))
    ys = _to_floats(_series(spec, "y"))
    return _grid_plot(xs, ys, width, height, char="*")


def _render_heatmap(spec: VisSpec, width: int, height: int) -> str:
    xs = _series(spec, "x")
    ys = _series(spec, "y")
    counts = [row.get("count", 1) for row in (spec.data or [])]
    x_labels = sorted({x for x in xs if x is not None}, key=str)
    y_labels = sorted({y for y in ys if y is not None}, key=str)
    xi = {v: i for i, v in enumerate(x_labels)}
    yi = {v: i for i, v in enumerate(y_labels)}
    mat = np.zeros((len(y_labels), len(x_labels)))
    for x, y, c in zip(xs, ys, counts):
        if x is not None and y is not None:
            mat[yi[y], xi[x]] += c or 0
    vmax = mat.max() or 1.0
    lines = []
    for j in range(len(y_labels) - 1, -1, -1):
        row = "".join(
            _SHADES[min(int(mat[j, i] / vmax * (len(_SHADES) - 1) + 0.999), 4)]
            for i in range(len(x_labels))
        )
        lines.append(f"{_fmt(y_labels[j])} |{row}|")
    lines.append(f"{'':>12}  ({len(x_labels)} x-bins, max count {vmax:.0f})")
    return "\n".join(lines)
