"""Code export: emit Altair or matplotlib source for a VisSpec.

Reproduces the widget's export button (§3, Fig. 4): users click a chart,
pull it out as a ``Vis``, and print it as plotting code they can tweak and
share.  The emitted strings are self-contained programs assuming a pandas
dataframe named ``df`` (or ``vis_data`` for processed data).
"""

from __future__ import annotations


from .encoding import Encoding
from .spec import VisSpec

__all__ = ["to_altair_code", "to_matplotlib_code"]


def _alt_channel(enc: Encoding) -> str:
    shorthand_type = {
        "quantitative": "Q",
        "nominal": "N",
        "ordinal": "O",
        "temporal": "T",
        "geographic": "N",
    }[enc.field_type]
    if enc.aggregate == "count" and not enc.field:
        shorthand = "count():Q"
    elif enc.aggregate:
        agg = "mean" if enc.aggregate == "avg" else enc.aggregate
        shorthand = f"{agg}({enc.field}):{shorthand_type}"
    else:
        shorthand = f"{enc.field}:{shorthand_type}"
    args = [repr(shorthand)]
    if enc.bin:
        args.append(f"bin=alt.Bin(maxbins={enc.resolved_bin_size})")
    if enc.sort:
        args.append(f"sort={enc.sort!r}")
    ctor = {"x": "X", "y": "Y", "color": "Color", "size": "Size",
            "row": "Row", "column": "Column"}[enc.channel]
    return f"alt.{ctor}({', '.join(args)})"


def to_altair_code(spec: VisSpec) -> str:
    """Equivalent Altair (Vega-Lite) chart construction code."""
    mark_method = {
        "bar": "mark_bar()",
        "histogram": "mark_bar()",
        "line": "mark_line()",
        "area": "mark_area()",
        "point": "mark_point(filled=True, opacity=0.7)",
        "tick": "mark_tick()",
        "rect": "mark_rect()",
        "geoshape": "mark_geoshape()",
    }[spec.mark]
    lines = ["import altair as alt", ""]
    source = "df"
    if spec.filters:
        conds = " & ".join(
            f"(df[{attr!r}] {('==' if op == '=' else op)} {value!r})"
            for attr, op, value in spec.filters
        )
        lines.append(f"df = df[{conds}]")
    lines.append(f"chart = alt.Chart({source}).{mark_method}.encode(")
    for enc in spec.encodings:
        lines.append(f"    {enc.channel}={_alt_channel(enc)},")
    lines.append(")")
    lines.append(f"chart = chart.properties(title={spec.title!r})")
    lines.append("chart")
    return "\n".join(lines)


def to_matplotlib_code(spec: VisSpec) -> str:
    """Equivalent matplotlib code, including the data-wrangling glue.

    This is exactly the "boilerplate" the paper's Figure 6 contrasts with
    the one-line Lux intent — emitting it lets users customise charts with
    familiar tools.
    """
    lines = ["import matplotlib.pyplot as plt", ""]
    if spec.filters:
        conds = " & ".join(
            f"(df[{attr!r}] {('==' if op == '=' else op)} {value!r})"
            for attr, op, value in spec.filters
        )
        lines.append(f"df = df[{conds}]")

    x, y, color = spec.x, spec.y, spec.color
    if spec.mark == "histogram" and x is not None:
        lines += [
            f"plt.hist(df[{x.field!r}].dropna(), bins={x.resolved_bin_size})",
            f"plt.xlabel({x.field!r})",
            "plt.ylabel('Record Count')",
        ]
    elif spec.mark == "bar" and x is not None and y is not None:
        label, value = (x, y) if y.aggregate else (y, x)
        agg = (value.aggregate or "mean").replace("avg", "mean")
        lines += [
            f"bar = df.groupby({label.field!r})[{value.field!r}].{agg}()"
            if value.field
            else f"bar = df.groupby({label.field!r}).size()",
            "y_pos = range(len(bar))",
            "plt.barh(y_pos, bar, align='center')",
            "plt.yticks(y_pos, list(bar.index))",
            f"plt.xlabel({value.title!r})",
            f"plt.ylabel({label.field!r})",
        ]
    elif spec.mark in ("point", "tick") and x is not None:
        args = [f"df[{x.field!r}]"]
        if y is not None:
            args.append(f"df[{y.field!r}]")
        scatter = f"plt.scatter({', '.join(args)}, s=8, alpha=0.7"
        if color is not None:
            scatter += (
                f", c=df[{color.field!r}].astype('category').cat.codes, cmap='tab10'"
            )
        scatter += ")"
        lines.append(scatter)
        lines.append(f"plt.xlabel({x.field!r})")
        if y is not None:
            lines.append(f"plt.ylabel({y.field!r})")
    elif spec.mark in ("line", "area") and x is not None and y is not None:
        if y.aggregate and y.field:
            agg = (y.aggregate or "mean").replace("avg", "mean")
            lines.append(
                f"series = df.groupby({x.field!r})[{y.field!r}].{agg}()"
            )
        elif y.aggregate == "count" or not y.field:
            lines.append(f"series = df.groupby({x.field!r}).size()")
        else:
            lines.append(f"series = df.set_index({x.field!r})[{y.field!r}]")
        lines += [
            "plt.plot(series.index, series.values)",
            f"plt.xlabel({x.field!r})",
            f"plt.ylabel({(y.title if y else 'value')!r})",
        ]
    elif spec.mark == "rect" and x is not None and y is not None:
        lines += [
            f"table = df.pivot_table(index={y.field!r}, columns={x.field!r}, "
            "aggfunc='size', fill_value=0)",
            "plt.imshow(table, aspect='auto', cmap='viridis')",
            "plt.colorbar(label='Record Count')",
            f"plt.xlabel({x.field!r})",
            f"plt.ylabel({y.field!r})",
        ]
    elif spec.mark == "geoshape" and x is not None:
        value_enc = y or x
        lines += [
            "# choropleth rendering requires a basemap (e.g. geopandas);",
            "# falling back to a bar chart of the same aggregation",
            f"bar = df.groupby({x.field!r})[{value_enc.field!r}].mean()"
            if value_enc.field and value_enc.field != x.field
            else f"bar = df.groupby({x.field!r}).size()",
            "plt.bar(range(len(bar)), bar)",
            "plt.xticks(range(len(bar)), list(bar.index), rotation=90)",
        ]
    else:
        lines.append("# unsupported mark for matplotlib export")
    lines.append(f"plt.title({spec.title!r})")
    lines.append("plt.show()")
    return "\n".join(lines)
