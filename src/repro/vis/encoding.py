"""Visual encoding model: channels, field types, aggregates, binning.

This mirrors the Vega-Lite encoding algebra (the paper renders through
Altair, a Vega-Lite binding): an :class:`Encoding` maps one data field to
one visual channel, optionally through an aggregate or a binning transform.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

__all__ = ["CHANNELS", "Encoding", "FIELD_TYPES"]

CHANNELS = ("x", "y", "color", "size", "row", "column")

#: Lux's semantic data types (§8.1) mapped onto Vega-Lite field types.
FIELD_TYPES = ("quantitative", "nominal", "temporal", "geographic", "ordinal")

def _default_bins() -> int:
    """The configured default bin count (imported lazily so the vis layer
    stays importable without the core package)."""
    try:
        from ..core.config import config

        return int(config.default_bin_size)
    except Exception:  # pragma: no cover - core is always importable here
        return 10


_VEGA_TYPE = {
    "quantitative": "quantitative",
    "nominal": "nominal",
    "ordinal": "ordinal",
    "temporal": "temporal",
    # Vega-Lite has no geographic field type; choropleths key on nominal ids.
    "geographic": "nominal",
}


@dataclass(frozen=True)
class Encoding:
    """One field -> channel mapping.

    Attributes
    ----------
    channel:
        Visual channel, one of :data:`CHANNELS`.
    field:
        Column name (or "" for computed count axes).
    field_type:
        Semantic type, one of :data:`FIELD_TYPES`.
    aggregate:
        Optional aggregate ("mean", "sum", "count", ...) applied to the field.
    bin:
        Whether the field is binned before encoding.
    bin_size:
        Number of bins when ``bin`` is set; 0 (the default) defers to the
        consumer's default bin count (``config.default_bin_size``).
    sort:
        Optional sort direction for discrete axes ("ascending"/"descending").
    """

    channel: str
    field: str
    field_type: str
    aggregate: str | None = None
    bin: bool = False
    bin_size: int = 0
    sort: str | None = None

    def __post_init__(self) -> None:
        if self.channel not in CHANNELS:
            raise ValueError(f"unknown channel {self.channel!r}")
        if self.field_type not in FIELD_TYPES:
            raise ValueError(f"unknown field type {self.field_type!r}")

    def with_channel(self, channel: str) -> "Encoding":
        return replace(self, channel=channel)

    @property
    def resolved_bin_size(self) -> int:
        """The effective bin count: the explicit setting, else the config
        default.

        Every consumer (executors, renderers, code export) resolves the
        0-sentinel through this one property so displayed data and exported
        specs always agree on the bin count.
        """
        if self.bin_size > 0:
            return self.bin_size
        return _default_bins()

    @property
    def title(self) -> str:
        """Human-readable axis title, e.g. ``Mean of Age``."""
        if self.aggregate == "count":
            return "Record Count" if not self.field else f"Count of {self.field}"
        if self.aggregate:
            return f"{self.aggregate.capitalize()} of {self.field}"
        if self.bin:
            return f"{self.field} (binned)"
        return self.field

    def to_vegalite(self) -> dict[str, Any]:
        """Vega-Lite channel definition dict."""
        out: dict[str, Any] = {"type": _VEGA_TYPE[self.field_type]}
        if self.aggregate == "count" and not self.field:
            out["aggregate"] = "count"
        else:
            out["field"] = self.field
            if self.aggregate:
                out["aggregate"] = "mean" if self.aggregate == "avg" else self.aggregate
        if self.bin:
            out["bin"] = {"maxbins": self.resolved_bin_size}
        if self.sort:
            out["sort"] = self.sort
        out["title"] = self.title
        return out
