"""Binning: ``cut`` (fixed-width) and ``qcut`` (quantile) discretization.

Both return string-labelled Series, which the type-inference layer treats as
nominal — the behaviour the paper's §3 workflow relies on when Alice bins
``stringency`` into a binary ``stringency_level``.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .column import Column
from .series import Series

__all__ = ["cut", "qcut"]


def _as_series(data: Any) -> Series:
    if isinstance(data, Series):
        return data
    return Series(data)


def _interval_label(lo: float, hi: float, closed_left: bool) -> str:
    lb = "[" if closed_left else "("
    return f"{lb}{lo:.4g}, {hi:.4g}]"


def _apply_bins(
    series: Series,
    edges: np.ndarray,
    labels: Sequence[str] | None,
    include_lowest: bool,
) -> Series:
    if labels is not None and len(labels) != len(edges) - 1:
        raise ValueError(
            f"{len(labels)} labels for {len(edges) - 1} bins"
        )
    values = series.column.to_float()
    out: list[str | None] = []
    n_bins = len(edges) - 1
    for i, v in enumerate(values):
        if series.column.mask[i] or np.isnan(v):
            out.append(None)
            continue
        if include_lowest and v == edges[0]:
            b = 0
        elif v <= edges[0] or v > edges[-1]:
            out.append(None)
            continue
        else:
            b = int(np.searchsorted(edges, v, side="left")) - 1
            b = min(max(b, 0), n_bins - 1)
        if labels is not None:
            out.append(str(labels[b]))
        else:
            out.append(
                _interval_label(
                    float(edges[b]),
                    float(edges[b + 1]),
                    closed_left=include_lowest and b == 0,
                )
            )
    return Series(Column.from_data(out, "string"), name=series.name, index=series.index)


def cut(
    data: Any,
    bins: int | Sequence[float],
    labels: Sequence[str] | None = None,
    include_lowest: bool = True,
) -> Series:
    """Bin values into fixed-width (or explicitly edged) intervals."""
    series = _as_series(data)
    values = series.column.to_float()
    valid = values[~np.isnan(values)]
    if isinstance(bins, int):
        if bins < 1:
            raise ValueError("bins must be >= 1")
        if len(valid) == 0:
            edges = np.linspace(0.0, 1.0, bins + 1)
        else:
            lo, hi = float(valid.min()), float(valid.max())
            if lo == hi:
                lo -= 0.5
                hi += 0.5
            edges = np.linspace(lo, hi, bins + 1)
    else:
        edges = np.asarray(list(bins), dtype=np.float64)
        if len(edges) < 2 or not np.all(np.diff(edges) > 0):
            raise ValueError("bin edges must be strictly increasing")
    return _apply_bins(series, edges, labels, include_lowest)


def qcut(
    data: Any,
    q: int | Sequence[float],
    labels: Sequence[str] | None = None,
) -> Series:
    """Bin values into quantile-based intervals with ~equal populations."""
    series = _as_series(data)
    values = series.column.to_float()
    valid = values[~np.isnan(values)]
    if len(valid) == 0:
        raise ValueError("qcut requires at least one non-missing value")
    if isinstance(q, int):
        if q < 1:
            raise ValueError("q must be >= 1")
        quantiles = np.linspace(0.0, 1.0, q + 1)
    else:
        quantiles = np.asarray(list(q), dtype=np.float64)
    edges = np.quantile(valid, quantiles)
    edges = np.unique(edges)
    if len(edges) < 2:
        raise ValueError("cannot form bins: all values identical")
    if labels is not None and len(labels) != len(edges) - 1:
        raise ValueError(
            f"{len(labels)} labels for {len(edges) - 1} quantile bins "
            "(duplicate bin edges were dropped)"
        )
    return _apply_bins(series, edges, labels, include_lowest=True)
