"""Relational joins (``merge``) via hash join on key tuples."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .column import Column
from .frame import DataFrame
from .index import RangeIndex

__all__ = ["merge"]


def _key_rows(frame: DataFrame, keys: Sequence[str]) -> list[tuple[Any, ...] | None]:
    """Per-row key tuples; ``None`` for rows with any missing key part."""
    cols = [frame.column(k) for k in keys]
    out: list[tuple[Any, ...] | None] = []
    for i in range(len(frame)):
        if any(c.mask[i] for c in cols):
            out.append(None)
            continue
        parts = []
        for c in cols:
            v = c.values[i]
            parts.append(v.item() if hasattr(v, "item") and c.dtype.name != "datetime" else v)
        out.append(tuple(parts))
    return out


def merge(
    left: DataFrame,
    right: DataFrame,
    how: str = "inner",
    on: str | Sequence[str] | None = None,
    left_on: str | Sequence[str] | None = None,
    right_on: str | Sequence[str] | None = None,
    suffixes: tuple[str, str] = ("_x", "_y"),
) -> DataFrame:
    """Join two frames on equality of key columns.

    Supports ``how`` in {"inner", "left", "right", "outer"}.  Non-key name
    collisions are disambiguated with ``suffixes`` as in pandas.
    """
    if how not in ("inner", "left", "right", "outer"):
        raise ValueError(f"unsupported join type {how!r}")
    if on is not None:
        left_keys = right_keys = [on] if isinstance(on, str) else list(on)
    else:
        if left_on is None or right_on is None:
            common = [c for c in left.columns if c in right.columns]
            if not common:
                raise ValueError("no common columns to merge on")
            left_keys = right_keys = common
        else:
            left_keys = [left_on] if isinstance(left_on, str) else list(left_on)
            right_keys = [right_on] if isinstance(right_on, str) else list(right_on)
    if len(left_keys) != len(right_keys):
        raise ValueError("left and right key counts differ")
    for k in left_keys:
        if k not in left:
            raise KeyError(f"left key {k!r} not found")
    for k in right_keys:
        if k not in right:
            raise KeyError(f"right key {k!r} not found")

    lkeys = _key_rows(left, left_keys)
    rkeys = _key_rows(right, right_keys)

    table: dict[tuple[Any, ...], list[int]] = {}
    for j, key in enumerate(rkeys):
        if key is not None:
            table.setdefault(key, []).append(j)

    left_idx: list[int] = []
    right_idx: list[int] = []
    matched_right = np.zeros(len(right), dtype=bool)
    for i, key in enumerate(lkeys):
        matches = table.get(key) if key is not None else None
        if matches:
            for j in matches:
                left_idx.append(i)
                right_idx.append(j)
                matched_right[j] = True
        elif how in ("left", "outer"):
            left_idx.append(i)
            right_idx.append(-1)
    if how in ("right", "outer"):
        for j in range(len(right)):
            if not matched_right[j]:
                left_idx.append(-1)
                right_idx.append(j)

    li = np.asarray(left_idx, dtype=np.int64)
    ri = np.asarray(right_idx, dtype=np.int64)

    same_key = left_keys == right_keys
    data: dict[str, Column] = {}
    right_cols = [
        c for c in right.columns if not (same_key and c in right_keys)
    ]
    for name in left.columns:
        out_name = name
        if name in right_cols:
            out_name = name + suffixes[0]
        col = left.column(name).take(li)
        if same_key and name in left_keys and how in ("right", "outer"):
            # Fill key values from the right side for right-only rows.
            k = right_keys[left_keys.index(name)]
            rcol = right.column(k).take(np.where(ri < 0, 0, ri))
            fill = (li < 0) & (ri >= 0)
            for pos in np.flatnonzero(fill):
                col.values[pos] = rcol.values[pos]
                col.mask[pos] = rcol.mask[pos]
        data[out_name] = col
    for name in right_cols:
        out_name = name + suffixes[1] if name in left.columns else name
        data[out_name] = right.column(name).take(ri)

    return left._wrap(data, RangeIndex(len(li)), op="merge")
