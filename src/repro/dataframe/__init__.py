"""A from-scratch columnar dataframe engine (pandas substitute).

This subpackage is the substrate the Lux reproduction is built on: the paper
wraps pandas, and pandas is not available in this environment, so the
dataframe API surface that Lux instruments — construction, column access,
boolean filtering, groupby/aggregation, merge, pivot, binning, CSV I/O — is
implemented here on numpy.

Quick example::

    from repro import dataframe as rdf

    df = rdf.DataFrame({"city": ["a", "b", "a"], "pop": [1.0, 2.0, 3.0]})
    df.groupby("city").mean()
"""

from .column import Column
from .cut import cut, qcut
from .datetimes import date_range, to_datetime
from .dtypes import BOOL, DATETIME, FLOAT64, INT64, STRING, DType
from .frame import DataFrame, concat
from .groupby import GroupBy
from .index import Index, RangeIndex
from .io import read_csv, read_csv_string, to_csv
from .join import merge
from .reshape import crosstab, melt, pivot, pivot_table
from .series import Series

__all__ = [
    "BOOL",
    "Column",
    "DATETIME",
    "DType",
    "DataFrame",
    "FLOAT64",
    "GroupBy",
    "INT64",
    "Index",
    "RangeIndex",
    "STRING",
    "Series",
    "concat",
    "crosstab",
    "cut",
    "date_range",
    "melt",
    "merge",
    "pivot",
    "pivot_table",
    "qcut",
    "read_csv",
    "read_csv_string",
    "to_csv",
    "to_datetime",
]
