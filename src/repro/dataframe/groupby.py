"""Group-by and aggregation.

Grouping factorizes the key columns into integer codes and aggregates with
vectorized numpy kernels (``bincount`` for sums/counts, ``ufunc.at`` for
min/max, a sum-of-squares identity for variance).  Rows whose key is missing
are dropped, matching pandas' default.

The aggregated frame signals "pre-aggregated structure" to Lux in two ways:
single-key groupbys produce a labelled :class:`Index` over the group keys,
and the derived-frame hook receives ``op="groupby_agg"`` — both are inputs
to the paper's structure- and history-based recommendations (§6).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

import numpy as np

from .column import Column
from .dtypes import INT64, is_numeric
from .frame import DataFrame
from .index import Index, RangeIndex
from .series import Series

__all__ = ["GroupBy", "SeriesGroupBy"]

_AGG_ALIASES: dict[Any, str] = {
    "mean": "mean",
    "average": "mean",
    "avg": "mean",
    "sum": "sum",
    "count": "count",
    "size": "count",
    "min": "min",
    "max": "max",
    "var": "var",
    "variance": "var",
    "std": "std",
    "stdev": "std",
    "median": "median",
    "first": "first",
    "last": "last",
}


def normalize_aggfunc(fn: Any) -> str:
    """Map an aggregation spec (name / numpy callable) to a canonical name."""
    if callable(fn):
        name = getattr(fn, "__name__", "")
        if name in _AGG_ALIASES:
            return _AGG_ALIASES[name]
        if name == "nanmean":
            return "mean"
        raise TypeError(f"unsupported aggregation callable {fn!r}")
    key = str(fn).lower()
    if key not in _AGG_ALIASES:
        raise TypeError(f"unsupported aggregation {fn!r}")
    return _AGG_ALIASES[key]


class _Grouping:
    """Factorized key columns: group ids per row plus per-group key values.

    ``factorize`` optionally overrides how key columns are encoded; the
    executor's shared-scan cache passes a memoized factorizer here so one
    recommendation pass factorizes each key column exactly once.
    """

    def __init__(
        self,
        frame: DataFrame,
        keys: Sequence[str],
        factorize: Callable[[str], tuple[np.ndarray, list[Any]]] | None = None,
    ) -> None:
        self.keys = list(keys)
        for k in self.keys:
            if k not in frame:
                raise KeyError(f"groupby key {k!r} not found")
        codes_list: list[np.ndarray] = []
        labels_list: list[list[Any]] = []
        for k in self.keys:
            if factorize is not None:
                codes, labels = factorize(k)
            else:
                codes, labels = frame.column(k).factorize()
            codes_list.append(codes)
            labels_list.append(labels)
        valid = np.ones(len(frame), dtype=bool)
        for codes in codes_list:
            valid &= codes >= 0
        if len(self.keys) == 1:
            combined = codes_list[0]
            n_groups = len(labels_list[0])
            group_ids = np.where(valid, combined, -1)
            # Compact to only observed groups, preserving label order.
            observed = np.zeros(n_groups, dtype=bool)
            observed[group_ids[valid]] = True
            remap = -np.ones(n_groups, dtype=np.int64)
            remap[observed] = np.arange(int(observed.sum()))
            self.group_ids = np.where(valid, remap[np.where(valid, combined, 0)], -1)
            kept = np.flatnonzero(observed)
            self.key_values: list[list[Any]] = [[labels_list[0][i] for i in kept]]
            self.n_groups = len(kept)
        else:
            stacked = np.stack(codes_list, axis=1)
            stacked_valid = stacked[valid]
            if len(stacked_valid) == 0:
                self.group_ids = -np.ones(len(frame), dtype=np.int64)
                self.key_values = [[] for _ in self.keys]
                self.n_groups = 0
            else:
                uniq, inverse = np.unique(stacked_valid, axis=0, return_inverse=True)
                ids = -np.ones(len(frame), dtype=np.int64)
                ids[valid] = inverse
                self.group_ids = ids
                self.key_values = [
                    [labels_list[j][code] for code in uniq[:, j]]
                    for j in range(len(self.keys))
                ]
                self.n_groups = len(uniq)
        self.valid = self.group_ids >= 0

    @classmethod
    def from_parent(cls, parent: "_Grouping", indices: np.ndarray) -> "_Grouping":
        """Derive the grouping of ``frame.iloc[indices]`` from the parent's.

        Slices the parent's ``group_ids`` and recompacts them to the
        groups observed in the cut — no refactorization of any key column.
        Bit-identical to building the grouping from parent-sliced
        factorizations (the executor cache's sample-link path): parent
        group ids are ordered by label-table order (single key) or sorted
        code tuples (multi key), and compacting a subset in ascending-id
        order preserves exactly that order.
        """
        out = cls.__new__(cls)
        out.keys = list(parent.keys)
        ids = parent.group_ids[np.asarray(indices, dtype=np.int64)]
        valid = ids >= 0
        observed = np.zeros(parent.n_groups, dtype=bool)
        observed[ids[valid]] = True
        kept = np.flatnonzero(observed)
        if len(kept) == 0:
            out.group_ids = -np.ones(len(ids), dtype=np.int64)
            out.key_values = [[] for _ in out.keys]
            out.n_groups = 0
        else:
            remap = -np.ones(parent.n_groups, dtype=np.int64)
            remap[kept] = np.arange(len(kept))
            out.group_ids = np.where(valid, remap[np.where(valid, ids, 0)], -1)
            out.key_values = [
                [values[i] for i in kept] for values in parent.key_values
            ]
            out.n_groups = len(kept)
        out.valid = out.group_ids >= 0
        return out


class GroupBy:
    """Deferred group-by over one or more key columns."""

    def __init__(
        self,
        frame: DataFrame,
        keys: Sequence[str],
        value_columns: Sequence[str] | None = None,
    ) -> None:
        self._frame = frame
        self._grouping = _Grouping(frame, keys)
        self.keys = list(keys)
        if value_columns is None:
            value_columns = [c for c in frame.columns if c not in self.keys]
        self._value_columns = list(value_columns)
        self._to_float: Callable[[str], np.ndarray] | None = None

    @classmethod
    def from_grouping(
        cls,
        frame: DataFrame,
        grouping: _Grouping,
        value_columns: Sequence[str] | None = None,
        to_float: Callable[[str], np.ndarray] | None = None,
    ) -> "GroupBy":
        """Build a GroupBy around an already-prepared :class:`_Grouping`.

        Lets the executor's computation cache reuse one factorization pass
        across every visualization grouping on the same keys.  ``to_float``
        optionally overrides value-column float conversion the same way
        ``_Grouping``'s ``factorize`` hook overrides key encoding, so the
        measure column converts once per pass instead of once per spec.
        """
        out = cls.__new__(cls)
        out._frame = frame
        out._grouping = grouping
        out.keys = list(grouping.keys)
        if value_columns is None:
            value_columns = [c for c in frame.columns if c not in out.keys]
        out._value_columns = list(value_columns)
        out._to_float = to_float
        return out

    # ------------------------------------------------------------------
    # Column subsetting: ``df.groupby("k")["v"]``
    # ------------------------------------------------------------------
    def __getitem__(self, key: str | list[str]) -> "GroupBy | SeriesGroupBy":
        if isinstance(key, str):
            if key not in self._frame:
                raise KeyError(key)
            return SeriesGroupBy(self, key)
        missing = [k for k in key if k not in self._frame]
        if missing:
            raise KeyError(f"columns not found: {missing}")
        out = GroupBy.__new__(GroupBy)
        out._frame = self._frame
        out._grouping = self._grouping
        out.keys = self.keys
        out._value_columns = list(key)
        out._to_float = self._to_float
        return out

    @property
    def ngroups(self) -> int:
        return self._grouping.n_groups

    def __iter__(self) -> Iterator[tuple[Any, DataFrame]]:
        g = self._grouping
        for gid in range(g.n_groups):
            key = tuple(vals[gid] for vals in g.key_values)
            if len(self.keys) == 1:
                key = key[0]
            yield key, self._frame[g.group_ids == gid]

    # ------------------------------------------------------------------
    # Aggregation kernels
    # ------------------------------------------------------------------
    def _aggregate_column(self, name: str, how: str) -> Column:
        g = self._grouping
        col = self._frame.column(name)
        ids = g.group_ids
        valid_row = g.valid & ~col.mask
        ids_v = ids[valid_row]
        n = g.n_groups

        counts = np.bincount(ids_v, minlength=n).astype(np.float64)
        if how == "count":
            return Column.from_data(counts.astype(np.int64))

        if col.dtype.name == "string" or how in ("first", "last", "median"):
            return self._aggregate_generic(col, how)

        # The injected converter (executor cache) returns a shared read-only
        # full-length view; the fancy index below copies, so kernels are
        # unaffected.  Conversion then happens once per pass, not per spec.
        full = self._to_float(name) if self._to_float is not None else col.to_float()
        vals = full[valid_row]
        empty = counts == 0
        if how == "sum":
            out = np.bincount(ids_v, weights=vals, minlength=n)
            return Column.from_data(
                out.astype(np.int64) if col.dtype is INT64 else out,
            )
        if how == "mean":
            sums = np.bincount(ids_v, weights=vals, minlength=n)
            with np.errstate(invalid="ignore", divide="ignore"):
                out = sums / counts
            out[empty] = np.nan
            return Column.from_data(out)
        if how in ("var", "std"):
            sums = np.bincount(ids_v, weights=vals, minlength=n)
            sqs = np.bincount(ids_v, weights=vals * vals, minlength=n)
            with np.errstate(invalid="ignore", divide="ignore"):
                mean = sums / counts
                var = (sqs - counts * mean * mean) / np.maximum(counts - 1, 1)
            var[counts < 2] = np.nan
            var = np.maximum(var, 0.0)
            return Column.from_data(np.sqrt(var) if how == "std" else var)
        if how == "min":
            out = np.full(n, np.inf)
            np.minimum.at(out, ids_v, vals)
            out[empty] = np.nan
            return _restore_int(out, col)
        if how == "max":
            out = np.full(n, -np.inf)
            np.maximum.at(out, ids_v, vals)
            out[empty] = np.nan
            return _restore_int(out, col)
        raise TypeError(f"unsupported aggregation {how!r}")

    def _aggregate_generic(self, col: Column, how: str) -> Column:
        g = self._grouping
        order = np.argsort(g.group_ids, kind="stable")
        order = order[g.group_ids[order] >= 0]
        boundaries = np.searchsorted(
            g.group_ids[order], np.arange(g.n_groups + 1)
        )
        out: list[Any] = []
        for gid in range(g.n_groups):
            rows = order[boundaries[gid] : boundaries[gid + 1]]
            rows = rows[~col.mask[rows]]
            if len(rows) == 0:
                out.append(None)
            elif how == "first":
                out.append(col[int(rows[0])])
            elif how == "last":
                out.append(col[int(rows[-1])])
            elif how == "median":
                out.append(float(np.median(col.to_float()[rows])))
            elif how == "count":
                out.append(len(rows))
            else:
                raise TypeError(f"unsupported aggregation {how!r} for {col.dtype}")
        return Column.from_data(out)

    def _result_frame(self, data: dict[str, Column]) -> DataFrame:
        g = self._grouping
        if len(self.keys) == 1:
            index = Index(Column.from_data(g.key_values[0]), name=self.keys[0])
            return self._frame._wrap(data, index, op="groupby_agg")
        full: dict[str, Column] = {}
        for j, k in enumerate(self.keys):
            full[k] = Column.from_data(g.key_values[j])
        full.update(data)
        return self._frame._wrap(full, RangeIndex(g.n_groups), op="groupby_agg")

    # ------------------------------------------------------------------
    # Public aggregation API
    # ------------------------------------------------------------------
    def agg(self, spec: Any) -> DataFrame:
        """Aggregate; ``spec`` is a name, callable, list, or column->spec dict."""
        if isinstance(spec, dict):
            data = {
                col: self._aggregate_column(col, normalize_aggfunc(fn))
                for col, fn in spec.items()
            }
            return self._result_frame(data)
        if isinstance(spec, (list, tuple)):
            data = {}
            for fn in spec:
                how = normalize_aggfunc(fn)
                for col in self._agg_targets(how):
                    data[f"{col}_{how}"] = self._aggregate_column(col, how)
            return self._result_frame(data)
        how = normalize_aggfunc(spec)
        data = {
            col: self._aggregate_column(col, how) for col in self._agg_targets(how)
        }
        return self._result_frame(data)

    def _agg_targets(self, how: str) -> list[str]:
        if how in ("count", "first", "last"):
            return self._value_columns
        return [
            c
            for c in self._value_columns
            if is_numeric(self._frame.column(c).dtype)
        ]

    def mean(self) -> DataFrame:
        return self.agg("mean")

    def sum(self) -> DataFrame:
        return self.agg("sum")

    def count(self) -> DataFrame:
        return self.agg("count")

    def min(self) -> DataFrame:
        return self.agg("min")

    def max(self) -> DataFrame:
        return self.agg("max")

    def var(self) -> DataFrame:
        return self.agg("var")

    def std(self) -> DataFrame:
        return self.agg("std")

    def median(self) -> DataFrame:
        return self.agg("median")

    def first(self) -> DataFrame:
        return self.agg("first")

    def size(self) -> Series:
        g = self._grouping
        counts = np.bincount(
            g.group_ids[g.valid], minlength=g.n_groups
        ).astype(np.int64)
        if len(self.keys) == 1:
            index = Index(Column.from_data(g.key_values[0]), name=self.keys[0])
        else:
            index = RangeIndex(g.n_groups)
        return Series(counts, name="size", index=index)

    def size_frame(self, name: str = "count") -> DataFrame:
        """Group sizes as a frame with the key columns materialized."""
        g = self._grouping
        counts = np.bincount(
            g.group_ids[g.valid], minlength=g.n_groups
        ).astype(np.int64)
        data: dict[str, Column] = {
            k: Column.from_data(g.key_values[j]) for j, k in enumerate(self.keys)
        }
        data[name] = Column.from_data(counts)
        return self._frame._wrap(data, RangeIndex(g.n_groups), op="groupby_agg")


class SeriesGroupBy:
    """Group-by restricted to a single value column; reductions give Series."""

    def __init__(self, parent: GroupBy, column: str) -> None:
        self._parent = parent
        self._column = column

    def _reduce(self, how: str) -> Series:
        col = self._parent._aggregate_column(self._column, how)
        g = self._parent._grouping
        if len(self._parent.keys) == 1:
            index = Index(Column.from_data(g.key_values[0]), name=self._parent.keys[0])
        else:
            index = RangeIndex(g.n_groups)
        return Series(col, name=self._column, index=index)

    def agg(self, spec: Any) -> Series:
        return self._reduce(normalize_aggfunc(spec))

    def mean(self) -> Series:
        return self._reduce("mean")

    def sum(self) -> Series:
        return self._reduce("sum")

    def count(self) -> Series:
        return self._reduce("count")

    def min(self) -> Series:
        return self._reduce("min")

    def max(self) -> Series:
        return self._reduce("max")

    def var(self) -> Series:
        return self._reduce("var")

    def std(self) -> Series:
        return self._reduce("std")

    def median(self) -> Series:
        return self._reduce("median")


def _restore_int(out: np.ndarray, col: Column) -> Column:
    """Return min/max results as ints when the source column was integral."""
    if col.dtype is INT64 and not np.isnan(out).any():
        return Column.from_data(out.astype(np.int64))
    return Column.from_data(out)
