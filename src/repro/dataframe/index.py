"""Row index objects.

The substrate supports two index flavours, matching what Lux's
structure-based recommendations need (§6 of the paper): a positional
:class:`RangeIndex` (the default) and a labelled :class:`Index` produced by
``groupby``/``pivot``/``set_index``.  Only single-level indexes are
supported, mirroring the paper's stated limitation ("Lux currently only
supports single-level indexes").
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from .column import Column

__all__ = ["Index", "RangeIndex"]


class Index:
    """An ordered collection of row labels backed by a :class:`Column`."""

    def __init__(self, data: Any, name: str | None = None) -> None:
        self.column = data if isinstance(data, Column) else Column.from_data(data)
        self.name = name

    def __len__(self) -> int:
        return len(self.column)

    def __getitem__(self, i: int) -> Any:
        return self.column[i]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.column)

    def __repr__(self) -> str:
        return f"Index({self.column.to_list()!r}, name={self.name!r})"

    @property
    def is_default(self) -> bool:
        """True when this index carries no information beyond row position."""
        return False

    def to_list(self) -> list[Any]:
        return self.column.to_list()

    def take(self, indices: np.ndarray) -> "Index":
        return Index(self.column.take(indices), self.name)

    def filter(self, keep: np.ndarray) -> "Index":
        return Index(self.column.filter(keep), self.name)

    def slice(self, sl: slice) -> "Index":
        return Index(self.column.slice(sl), self.name)

    def equals(self, other: "Index") -> bool:
        if isinstance(other, RangeIndex) != isinstance(self, RangeIndex):
            return False
        return self.column.equals(other.column)

    def get_loc(self, label: Any) -> int:
        """Position of the first occurrence of ``label``."""
        for i, v in enumerate(self.column):
            if v == label:
                return i
        raise KeyError(label)


class RangeIndex(Index):
    """The default 0..n-1 positional index; materialized lazily."""

    def __init__(self, n: int, name: str | None = None) -> None:
        self._n = n
        self.name = name

    @property
    def column(self) -> Column:  # type: ignore[override]
        return Column.from_data(np.arange(self._n, dtype=np.int64))

    @column.setter
    def column(self, value: Column) -> None:  # pragma: no cover - defensive
        raise AttributeError("RangeIndex is immutable")

    @property
    def is_default(self) -> bool:
        return True

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i: int) -> int:
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError(i)
        return i

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __repr__(self) -> str:
        return f"RangeIndex(n={self._n})"

    def take(self, indices: np.ndarray) -> Index:
        return RangeIndex(len(indices))

    def filter(self, keep: np.ndarray) -> Index:
        return RangeIndex(int(np.asarray(keep, dtype=bool).sum()))

    def slice(self, sl: slice) -> Index:
        return RangeIndex(len(range(*sl.indices(self._n))))

    def get_loc(self, label: Any) -> int:
        i = int(label)
        if not 0 <= i < self._n:
            raise KeyError(label)
        return i
