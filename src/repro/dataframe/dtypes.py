"""Data type system for the dataframe substrate.

The substrate supports five logical dtypes, each backed by a numpy storage
dtype plus a boolean validity mask (``True`` marks a *missing* entry):

==========  =================  ==========================================
logical     numpy storage      notes
==========  =================  ==========================================
``int64``   ``np.int64``       promoted to ``float64`` when nulls appear
``float64`` ``np.float64``     NaN values are treated as missing
``bool``    ``np.bool_``
``string``  ``object``         Python ``str`` elements
``datetime````datetime64[ns]`` ``NaT`` values are treated as missing
==========  =================  ==========================================

Masks are authoritative: a masked slot's payload is an arbitrary fill value
and must never be read by callers.  :func:`coerce` is the single entry point
for turning arbitrary Python/numpy data into a ``(values, mask, dtype)``
triple with these invariants.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Iterable

import numpy as np

__all__ = [
    "INT64",
    "FLOAT64",
    "BOOL",
    "STRING",
    "DATETIME",
    "DType",
    "coerce",
    "fill_value",
    "infer_dtype",
    "is_numeric",
    "result_dtype",
]


class DType:
    """A logical column dtype.

    Instances are singletons (``INT64``, ``FLOAT64``, ``BOOL``, ``STRING``,
    ``DATETIME``); compare with ``is`` or ``==``.
    """

    def __init__(self, name: str, numpy_dtype: Any) -> None:
        self.name = name
        self.numpy_dtype = np.dtype(numpy_dtype)

    def __repr__(self) -> str:
        return f"dtype[{self.name}]"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DType):
            return self.name == other.name
        if isinstance(other, str):
            return self.name == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.name)


INT64 = DType("int64", np.int64)
FLOAT64 = DType("float64", np.float64)
BOOL = DType("bool", np.bool_)
STRING = DType("string", object)
DATETIME = DType("datetime", "datetime64[ns]")

_BY_NAME = {d.name: d for d in (INT64, FLOAT64, BOOL, STRING, DATETIME)}
# Convenient aliases accepted anywhere a dtype name is accepted.
_BY_NAME.update(
    {
        "int": INT64,
        "float": FLOAT64,
        "str": STRING,
        "object": STRING,
        "datetime64": DATETIME,
        "datetime64[ns]": DATETIME,
    }
)


def lookup(name: str | DType) -> DType:
    """Resolve a dtype name or instance to the canonical ``DType``."""
    if isinstance(name, DType):
        return name
    try:
        return _BY_NAME[str(name)]
    except KeyError:
        raise TypeError(f"unknown dtype {name!r}") from None


def is_numeric(dtype: DType) -> bool:
    """True for dtypes that participate in arithmetic (int64/float64/bool)."""
    return dtype in (INT64, FLOAT64, BOOL)


def fill_value(dtype: DType) -> Any:
    """The payload stored at masked slots for ``dtype``."""
    if dtype is FLOAT64:
        return np.nan
    if dtype is INT64:
        return np.int64(0)
    if dtype is BOOL:
        return np.bool_(False)
    if dtype is DATETIME:
        return np.datetime64("NaT")
    return None


def result_dtype(left: DType, right: DType) -> DType:
    """Dtype of an arithmetic result between two numeric dtypes."""
    if left is FLOAT64 or right is FLOAT64:
        return FLOAT64
    if left is INT64 or right is INT64:
        return INT64
    return INT64 if (left is BOOL and right is BOOL) else FLOAT64


_DATETIME_TYPES = (np.datetime64, _dt.datetime, _dt.date)


def infer_dtype(values: Iterable[Any]) -> DType:
    """Infer the logical dtype of a sequence of Python scalars.

    Missing markers (``None`` and float NaN) are ignored during inference.
    Mixed numeric types promote to float; anything non-numeric falls back to
    string.
    """
    saw_float = saw_int = saw_bool = saw_dt = saw_str = False
    for v in values:
        if v is None:
            continue
        if isinstance(v, (bool, np.bool_)):
            saw_bool = True
        elif isinstance(v, (int, np.integer)):
            saw_int = True
        elif isinstance(v, (float, np.floating)):
            if not np.isnan(v):
                saw_float = True
            else:
                # NaN is a missing marker but implies a float container when
                # it is the only thing present.
                saw_float = saw_float or False
        elif isinstance(v, _DATETIME_TYPES):
            saw_dt = True
        else:
            saw_str = True
    if saw_str:
        return STRING
    if saw_dt and not (saw_float or saw_int or saw_bool):
        return DATETIME
    if saw_dt:
        return STRING
    if saw_float:
        return FLOAT64
    if saw_int:
        return INT64
    if saw_bool:
        return BOOL
    return FLOAT64


def _mask_from_nan(values: np.ndarray) -> np.ndarray:
    if values.dtype.kind == "f":
        return np.isnan(values)
    if values.dtype.kind == "M":
        return np.isnat(values)
    return np.zeros(len(values), dtype=bool)


def coerce(
    data: Any,
    dtype: str | DType | None = None,
) -> tuple[np.ndarray, np.ndarray, DType]:
    """Coerce arbitrary 1-D data into ``(values, mask, dtype)``.

    ``data`` may be a numpy array, a list/tuple of scalars, or a scalar
    paired with an explicit dtype.  When ``dtype`` is given, the data is cast
    to it; otherwise the dtype is inferred.
    """
    target = lookup(dtype) if dtype is not None else None

    if isinstance(data, np.ndarray):
        return _coerce_ndarray(data, target)

    data = list(data)
    if target is None:
        target = infer_dtype(data)
    n = len(data)
    mask = np.zeros(n, dtype=bool)
    if target is STRING:
        values = np.empty(n, dtype=object)
        for i, v in enumerate(data):
            if v is None or (isinstance(v, float) and np.isnan(v)):
                mask[i] = True
                values[i] = None
            else:
                values[i] = v if isinstance(v, str) else str(v)
        return values, mask, STRING
    if target is DATETIME:
        values = np.empty(n, dtype="datetime64[ns]")
        for i, v in enumerate(data):
            if v is None or (isinstance(v, float) and np.isnan(v)):
                mask[i] = True
                values[i] = np.datetime64("NaT")
            else:
                values[i] = np.datetime64(v, "ns")
        mask |= np.isnat(values)
        return values, mask, DATETIME

    # Numeric path: collect into float first to tolerate None/NaN, then
    # narrow back to the requested integer/bool container where possible.
    values_f = np.empty(n, dtype=np.float64)
    for i, v in enumerate(data):
        if v is None:
            mask[i] = True
            values_f[i] = np.nan
        else:
            fv = float(v)
            values_f[i] = fv
            if np.isnan(fv):
                mask[i] = True
    if target is FLOAT64:
        return values_f, mask, FLOAT64
    if mask.any() and target is INT64:
        # Int with nulls: keep int container; masked payloads are 0.
        out = np.zeros(n, dtype=np.int64)
        ok = ~mask
        out[ok] = values_f[ok].astype(np.int64)
        return out, mask, INT64
    if target is INT64:
        return values_f.astype(np.int64), mask, INT64
    if target is BOOL:
        out = np.zeros(n, dtype=bool)
        ok = ~mask
        out[ok] = values_f[ok] != 0.0
        return out, mask, BOOL
    raise TypeError(f"cannot coerce to {target!r}")


def _coerce_ndarray(
    arr: np.ndarray, target: DType | None
) -> tuple[np.ndarray, np.ndarray, DType]:
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D data, got shape {arr.shape}")
    kind = arr.dtype.kind
    if target is None:
        if kind in ("i", "u"):
            target = INT64
        elif kind == "f":
            target = FLOAT64
        elif kind == "b":
            target = BOOL
        elif kind == "M":
            target = DATETIME
        elif kind in ("U", "S", "O"):
            # Object arrays can still hold numbers; go through the list path.
            return coerce(arr.tolist(), None)
        else:
            raise TypeError(f"unsupported array dtype {arr.dtype}")

    if target is STRING and kind in ("U", "S"):
        values = arr.astype(object)
        return values, np.zeros(len(arr), dtype=bool), STRING
    if target is STRING and kind == "O":
        return coerce(arr.tolist(), STRING)
    if target is DATETIME:
        if kind == "M":
            values = arr.astype("datetime64[ns]")
        else:
            return coerce(arr.tolist(), DATETIME)
        return values, np.isnat(values), DATETIME
    if target is INT64:
        if kind == "f":
            mask = np.isnan(arr)
            if mask.any():
                out = np.zeros(len(arr), dtype=np.int64)
                out[~mask] = arr[~mask].astype(np.int64)
                return out, mask, INT64
            return arr.astype(np.int64), mask, INT64
        if kind in ("i", "u", "b"):
            return arr.astype(np.int64), np.zeros(len(arr), dtype=bool), INT64
        return coerce(arr.tolist(), INT64)
    if target is FLOAT64:
        if kind in ("i", "u", "b", "f"):
            values = arr.astype(np.float64)
            return values, np.isnan(values), FLOAT64
        return coerce(arr.tolist(), FLOAT64)
    if target is BOOL:
        if kind == "b":
            return arr.copy(), np.zeros(len(arr), dtype=bool), BOOL
        if kind in ("i", "u", "f"):
            mask = _mask_from_nan(arr)
            out = np.zeros(len(arr), dtype=bool)
            out[~mask] = arr[~mask] != 0
            return out, mask, BOOL
        return coerce(arr.tolist(), BOOL)
    if target is STRING:
        return coerce(arr.tolist(), STRING)
    raise TypeError(f"cannot coerce array of {arr.dtype} to {target!r}")
