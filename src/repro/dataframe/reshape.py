"""Reshaping: pivot, pivot_table, crosstab, melt.

``pivot``/``pivot_table`` produce frames with a labelled index — exactly the
"pre-aggregated dataframe" shape that the paper's Index action visualizes
row- or column-wise (Fig. 7).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from .column import Column
from .frame import DataFrame
from .groupby import GroupBy, normalize_aggfunc
from .index import Index, RangeIndex

__all__ = ["crosstab", "melt", "pivot", "pivot_table"]


def pivot_table(
    frame: DataFrame,
    index: str,
    columns: str,
    values: str,
    aggfunc: str | Callable = "mean",
) -> DataFrame:
    """Spread ``columns`` values into columns, aggregating ``values``."""
    how = normalize_aggfunc(aggfunc)
    # Aggregate on the (index, columns) pair first, then spread.
    agg = GroupBy(frame, [index, columns]).agg({values: how})
    row_codes, row_labels = agg.column(index).factorize()
    col_codes, col_labels = agg.column(columns).factorize()
    mat = np.full((len(row_labels), len(col_labels)), np.nan)
    vals = agg.column(values).to_float()
    for i in range(len(agg)):
        if row_codes[i] >= 0 and col_codes[i] >= 0:
            mat[row_codes[i], col_codes[i]] = vals[i]
    data = {
        str(label): Column.from_data(mat[:, j]) for j, label in enumerate(col_labels)
    }
    out_index = Index(Column.from_data(row_labels), name=index)
    return frame._wrap(data, out_index, op="pivot")


def pivot(frame: DataFrame, index: str, columns: str, values: str) -> DataFrame:
    """Reshape without aggregation; duplicate (index, columns) pairs raise."""
    pair_seen: set[tuple[Any, Any]] = set()
    icol, ccol = frame.column(index), frame.column(columns)
    for i in range(len(frame)):
        if icol.mask[i] or ccol.mask[i]:
            continue
        key = (icol[i], ccol[i])
        if key in pair_seen:
            raise ValueError(
                "pivot index/columns pair contains duplicate entries; "
                "use pivot_table with an aggfunc"
            )
        pair_seen.add(key)
    return pivot_table(frame, index=index, columns=columns, values=values, aggfunc="first")


def crosstab(row: Any, col: Any, rownames: Sequence[str] | None = None) -> DataFrame:
    """Frequency table of two Series-like inputs."""
    from .series import Series

    row = row if isinstance(row, Series) else Series(row, name="row")
    col = col if isinstance(col, Series) else Series(col, name="col")
    if len(row) != len(col):
        raise ValueError("crosstab inputs must share length")
    row_codes, row_labels = row.column.factorize()
    col_codes, col_labels = col.column.factorize()
    mat = np.zeros((len(row_labels), len(col_labels)), dtype=np.int64)
    for i in range(len(row)):
        if row_codes[i] >= 0 and col_codes[i] >= 0:
            mat[row_codes[i], col_codes[i]] += 1
    data = {
        str(label): Column.from_data(mat[:, j]) for j, label in enumerate(col_labels)
    }
    name = (rownames[0] if rownames else None) or row.name or "row"
    frame = DataFrame(data, index=Index(Column.from_data(row_labels), name=name))
    frame._init_derived(parent=None, op="pivot")  # type: ignore[arg-type]
    return frame


def melt(
    frame: DataFrame,
    id_vars: Sequence[str] | None = None,
    value_vars: Sequence[str] | None = None,
    var_name: str = "variable",
    value_name: str = "value",
) -> DataFrame:
    """Unpivot columns into (variable, value) long format."""
    id_vars = list(id_vars or [])
    value_vars = list(value_vars or [c for c in frame.columns if c not in id_vars])
    n = len(frame)
    data: dict[str, Column] = {}
    reps = len(value_vars)
    tiled = np.tile(np.arange(n, dtype=np.int64), reps)
    for name in id_vars:
        data[name] = frame.column(name).take(tiled)
    var_values: list[str] = []
    for v in value_vars:
        var_values.extend([v] * n)
    data[var_name] = Column.from_data(var_values)
    value_col: Column | None = None
    for v in value_vars:
        piece = frame.column(v)
        value_col = piece.copy() if value_col is None else value_col.concat(piece)
    data[value_name] = value_col if value_col is not None else Column.from_data([])
    return frame._wrap(data, RangeIndex(n * reps), op="melt")
