"""Series: a named, indexed 1-D column with vectorized operations."""

from __future__ import annotations

from typing import Any, Callable, Iterator

import numpy as np

from . import dtypes
from .column import Column
from .dtypes import BOOL, DATETIME, STRING, DType
from .index import Index, RangeIndex

__all__ = ["Series"]


class Series:
    """A single dataframe column together with its row index and name.

    Binary operations align positionally (both operands must share length),
    comparisons produce boolean Series suitable for frame filtering, and all
    reductions are missing-aware.
    """

    def __init__(
        self,
        data: Any,
        name: str | None = None,
        index: Index | None = None,
        dtype: str | DType | None = None,
    ) -> None:
        if isinstance(data, Series):
            column = data.column.copy()
            name = name if name is not None else data.name
            index = index if index is not None else data.index
        elif isinstance(data, Column):
            column = data
        else:
            column = Column.from_data(data, dtype)
        self.column = column
        self.name = name
        self.index = index if index is not None else RangeIndex(len(column))
        if len(self.index) != len(column):
            raise ValueError("index length does not match data length")

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.column)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.column)

    @property
    def dtype(self) -> DType:
        return self.column.dtype

    @property
    def values(self) -> np.ndarray:
        return self.column.values

    @property
    def shape(self) -> tuple[int]:
        return (len(self),)

    @property
    def empty(self) -> bool:
        return len(self) == 0

    def __repr__(self) -> str:
        n = len(self)
        shown = min(n, 10)
        lines = [f"{self.index[i]!r:>8}  {self.column[i]!r}" for i in range(shown)]
        if n > shown:
            lines.append(f"... ({n - shown} more)")
        lines.append(f"Name: {self.name}, dtype: {self.dtype.name}, length: {n}")
        return "\n".join(lines)

    def __getitem__(self, key: Any) -> Any:
        if isinstance(key, (Series, Column, np.ndarray, list)):
            keep = _as_bool_mask(key, len(self))
            return self._wrap(self.column.filter(keep), self.index.filter(keep))
        if isinstance(key, slice):
            return self._wrap(self.column.slice(key), self.index.slice(key))
        return self.column[self.index.get_loc(key)]

    def iloc_scalar(self, i: int) -> Any:
        """Positional scalar access (``s.iloc[i]`` equivalent)."""
        return self.column[i]

    def _wrap(self, column: Column, index: Index | None = None) -> "Series":
        return type(self)(
            column,
            name=self.name,
            index=index if index is not None else RangeIndex(len(column)),
        )

    def copy(self) -> "Series":
        return self._wrap(self.column.copy(), self.index)

    def equals(self, other: "Series") -> bool:
        return isinstance(other, Series) and self.column.equals(other.column)

    def to_list(self) -> list[Any]:
        return self.column.to_list()

    def to_numpy(self) -> np.ndarray:
        return self.column.values.copy()

    # ------------------------------------------------------------------
    # Missing data
    # ------------------------------------------------------------------
    def isna(self) -> "Series":
        return self._wrap(Column(self.column.isna(), np.zeros(len(self), bool), BOOL), self.index)

    def notna(self) -> "Series":
        return self._wrap(
            Column(~self.column.isna(), np.zeros(len(self), bool), BOOL), self.index
        )

    def dropna(self) -> "Series":
        keep = ~self.column.mask
        return self._wrap(self.column.filter(keep), self.index.filter(keep))

    def fillna(self, value: Any) -> "Series":
        return self._wrap(self.column.fillna(value), self.index)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def astype(self, dtype: str | DType) -> "Series":
        return self._wrap(self.column.astype(dtype), self.index)

    def rename(self, name: str) -> "Series":
        out = self.copy()
        out.name = name
        return out

    def map(self, fn: Callable[[Any], Any]) -> "Series":
        out = [None if v is None else fn(v) for v in self.column]
        return self._wrap(Column.from_data(out), self.index)

    def apply(self, fn: Callable[[Any], Any]) -> "Series":
        return self.map(fn)

    def isin(self, values: Any) -> "Series":
        return self._wrap(self.column.isin(values), self.index)

    def sort_values(self, ascending: bool = True) -> "Series":
        order = self.column.argsort(ascending=ascending)
        return self._wrap(self.column.take(order), self.index.take(order))

    def head(self, n: int = 5) -> "Series":
        return self[slice(0, n)]

    def tail(self, n: int = 5) -> "Series":
        return self[slice(max(len(self) - n, 0), len(self))]

    def unique(self) -> list[Any]:
        return self.column.unique()

    def nunique(self) -> int:
        return self.column.nunique()

    def value_counts(self) -> "Series":
        pairs = self.column.value_counts()
        labels = [p[0] for p in pairs]
        counts = [p[1] for p in pairs]
        return Series(counts, name=self.name, index=Index(labels, name=self.name))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self) -> float:
        return self.column.sum()

    def mean(self) -> float:
        return self.column.mean()

    def var(self, ddof: int = 1) -> float:
        return self.column.var(ddof=ddof)

    def std(self, ddof: int = 1) -> float:
        return self.column.std(ddof=ddof)

    def median(self) -> float:
        return self.column.median()

    def min(self) -> Any:
        return self.column.min()

    def max(self) -> Any:
        return self.column.max()

    def count(self) -> int:
        return self.column.count()

    def any(self) -> bool:
        if self.dtype is not BOOL:
            raise TypeError("any() requires a boolean series")
        return bool(self.column.values[~self.column.mask].any())

    def all(self) -> bool:
        if self.dtype is not BOOL:
            raise TypeError("all() requires a boolean series")
        return bool(self.column.values[~self.column.mask].all())

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _lift(self, other: Any, op: Callable[[Column, Any], Column]) -> "Series":
        rhs = other.column if isinstance(other, Series) else other
        return self._wrap(op(self.column, rhs), self.index)

    def __add__(self, other: Any) -> "Series":
        return self._lift(other, lambda a, b: a + b)

    def __radd__(self, other: Any) -> "Series":
        return self.__add__(other)

    def __sub__(self, other: Any) -> "Series":
        return self._lift(other, lambda a, b: a - b)

    def __rsub__(self, other: Any) -> "Series":
        return self._lift(other, lambda a, b: (a * -1) + b)

    def __mul__(self, other: Any) -> "Series":
        return self._lift(other, lambda a, b: a * b)

    def __rmul__(self, other: Any) -> "Series":
        return self.__mul__(other)

    def __truediv__(self, other: Any) -> "Series":
        return self._lift(other, lambda a, b: a / b)

    def __floordiv__(self, other: Any) -> "Series":
        return self._lift(other, lambda a, b: a // b)

    def __mod__(self, other: Any) -> "Series":
        return self._lift(other, lambda a, b: a % b)

    def __pow__(self, other: Any) -> "Series":
        return self._lift(other, lambda a, b: a**b)

    def __neg__(self) -> "Series":
        return self._wrap(-self.column, self.index)

    def __eq__(self, other: Any) -> "Series":  # type: ignore[override]
        return self._lift(other, lambda a, b: a == b)

    def __ne__(self, other: Any) -> "Series":  # type: ignore[override]
        return self._lift(other, lambda a, b: a != b)

    def __lt__(self, other: Any) -> "Series":
        return self._lift(other, lambda a, b: a < b)

    def __le__(self, other: Any) -> "Series":
        return self._lift(other, lambda a, b: a <= b)

    def __gt__(self, other: Any) -> "Series":
        return self._lift(other, lambda a, b: a > b)

    def __ge__(self, other: Any) -> "Series":
        return self._lift(other, lambda a, b: a >= b)

    def __and__(self, other: Any) -> "Series":
        return self._lift(other, lambda a, b: a & b)

    def __or__(self, other: Any) -> "Series":
        return self._lift(other, lambda a, b: a | b)

    def __invert__(self) -> "Series":
        return self._wrap(~self.column, self.index)

    def __hash__(self) -> int:  # Series compare elementwise, so not hashable
        raise TypeError("Series objects are unhashable")

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def str(self) -> "StringAccessor":
        from .strings import StringAccessor

        if self.dtype is not STRING:
            raise AttributeError(".str accessor requires a string series")
        return StringAccessor(self)

    @property
    def dt(self) -> "DatetimeAccessor":
        from .datetimes import DatetimeAccessor

        if self.dtype is not DATETIME:
            raise AttributeError(".dt accessor requires a datetime series")
        return DatetimeAccessor(self)

    # ------------------------------------------------------------------
    # Conversion to frame
    # ------------------------------------------------------------------
    def to_frame(self, name: str | None = None) -> "DataFrame":
        from .frame import DataFrame

        colname = name or self.name or "0"
        return DataFrame({colname: self.column}, index=self.index)

    def describe(self) -> dict[str, Any]:
        """Summary statistics (numeric: moments; string: cardinality)."""
        if dtypes.is_numeric(self.dtype):
            return {
                "count": self.count(),
                "mean": self.mean(),
                "std": self.std(),
                "min": self.min(),
                "median": self.median(),
                "max": self.max(),
            }
        return {
            "count": self.count(),
            "unique": self.nunique(),
            "top": self.value_counts().index[0] if self.count() else None,
        }


def _as_bool_mask(key: Any, n: int) -> np.ndarray:
    if isinstance(key, Series):
        key = key.column
    if isinstance(key, Column):
        if key.dtype is not BOOL:
            raise TypeError("boolean mask required for filtering")
        return key.values & ~key.mask
    arr = np.asarray(key)
    if arr.dtype.kind != "b":
        raise TypeError("boolean mask required for filtering")
    if len(arr) != n:
        raise ValueError("mask length does not match")
    return arr
