"""Typed 1-D column: the storage unit behind Series and DataFrame.

A :class:`Column` owns a numpy values array and a boolean validity mask
(``True`` = missing).  All dataframe operations bottom out in Column methods,
which keeps null semantics in exactly one place.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

import numpy as np

from . import dtypes
from .dtypes import BOOL, DATETIME, FLOAT64, INT64, STRING, DType

__all__ = ["Column"]


class Column:
    """An immutable-by-convention typed vector with missing-value support."""

    __slots__ = ("values", "mask", "dtype")

    def __init__(self, values: np.ndarray, mask: np.ndarray, dtype: DType) -> None:
        self.values = values
        self.mask = mask
        self.dtype = dtype

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_data(cls, data: Any, dtype: str | DType | None = None) -> "Column":
        """Build a column from arbitrary 1-D data (see :func:`dtypes.coerce`)."""
        if isinstance(data, Column):
            return data.astype(dtype) if dtype is not None else data.copy()
        values, mask, dt = dtypes.coerce(data, dtype)
        return cls(values, mask, dt)

    @classmethod
    def full(cls, n: int, value: Any, dtype: str | DType | None = None) -> "Column":
        """A length-``n`` column of a repeated scalar."""
        if value is None:
            dt = dtypes.lookup(dtype) if dtype is not None else STRING
            values = np.full(n, dtypes.fill_value(dt), dtype=dt.numpy_dtype)
            return cls(values, np.ones(n, dtype=bool), dt)
        return cls.from_data([value] * n, dtype)

    def copy(self) -> "Column":
        return Column(self.values.copy(), self.mask.copy(), self.dtype)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, i: int) -> Any:
        if self.mask[i]:
            return None
        v = self.values[i]
        if self.dtype is FLOAT64:
            return float(v)
        if self.dtype is INT64:
            return int(v)
        if self.dtype is BOOL:
            return bool(v)
        return v

    def __repr__(self) -> str:
        head = ", ".join(repr(self[i]) for i in range(min(len(self), 6)))
        suffix = ", ..." if len(self) > 6 else ""
        return f"Column<{self.dtype.name}>[{head}{suffix}] (n={len(self)})"

    def equals(self, other: "Column") -> bool:
        """Exact equality, treating missing slots as equal to each other."""
        if self.dtype is not other.dtype or len(self) != len(other):
            return False
        if not np.array_equal(self.mask, other.mask):
            return False
        ok = ~self.mask
        if self.dtype is STRING:
            return all(a == b for a, b in zip(self.values[ok], other.values[ok]))
        return bool(np.array_equal(self.values[ok], other.values[ok]))

    # ------------------------------------------------------------------
    # Selection / rearrangement
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by position.  ``-1`` produces a missing slot."""
        indices = np.asarray(indices)
        neg = indices < 0
        safe = np.where(neg, 0, indices)
        values = self.values[safe]
        mask = self.mask[safe] | neg
        if neg.any():
            values = values.copy()
            values[neg] = dtypes.fill_value(self.dtype)
        return Column(values, mask, self.dtype)

    def filter(self, keep: np.ndarray) -> "Column":
        """Select rows where boolean ``keep`` is True."""
        keep = np.asarray(keep, dtype=bool)
        return Column(self.values[keep], self.mask[keep], self.dtype)

    def slice(self, sl: slice) -> "Column":
        return Column(self.values[sl], self.mask[sl], self.dtype)

    def concat(self, other: "Column") -> "Column":
        """Append ``other``; dtypes unify via numeric promotion or string."""
        if self.dtype is other.dtype:
            return Column(
                np.concatenate([self.values, other.values]),
                np.concatenate([self.mask, other.mask]),
                self.dtype,
            )
        if dtypes.is_numeric(self.dtype) and dtypes.is_numeric(other.dtype):
            target = dtypes.result_dtype(self.dtype, other.dtype)
            return self.astype(target).concat(other.astype(target))
        return self.astype(STRING).concat(other.astype(STRING))

    # ------------------------------------------------------------------
    # Casting
    # ------------------------------------------------------------------
    def astype(self, dtype: str | DType) -> "Column":
        target = dtypes.lookup(dtype)
        if target is self.dtype:
            return self.copy()
        if target is STRING:
            out = np.empty(len(self), dtype=object)
            for i in range(len(self)):
                out[i] = None if self.mask[i] else str(self[i])
            return Column(out, self.mask.copy(), STRING)
        if self.dtype is STRING and target in (INT64, FLOAT64):
            data = [None if self.mask[i] else _parse_number(self.values[i]) for i in range(len(self))]
            values, mask, _ = dtypes.coerce(data, target)
            return Column(values, mask, target)
        if self.dtype is STRING and target is DATETIME:
            from .datetimes import parse_datetime_column

            return parse_datetime_column(self)
        values, mask, dt = dtypes.coerce(self.values, target)
        mask = mask | self.mask
        return Column(values, mask, dt)

    def to_float(self) -> np.ndarray:
        """Valid payloads as float64 with NaN at missing slots."""
        if self.dtype is FLOAT64:
            out = self.values.copy()
            out[self.mask] = np.nan
            return out
        if self.dtype is DATETIME:
            out = self.values.astype("datetime64[ns]").astype(np.int64).astype(np.float64)
            out[self.mask] = np.nan
            return out
        if self.dtype is STRING:
            raise TypeError("cannot convert string column to float")
        out = self.values.astype(np.float64)
        out[self.mask] = np.nan
        return out

    def to_list(self) -> list[Any]:
        return [self[i] for i in range(len(self))]

    # ------------------------------------------------------------------
    # Missing data
    # ------------------------------------------------------------------
    def isna(self) -> np.ndarray:
        return self.mask.copy()

    def null_count(self) -> int:
        return int(self.mask.sum())

    def fillna(self, value: Any) -> "Column":
        out = self.copy()
        if not out.mask.any():
            return out
        idx = np.flatnonzero(out.mask)
        if self.dtype is STRING:
            for i in idx:
                out.values[i] = str(value)
        elif self.dtype is DATETIME:
            out.values[idx] = np.datetime64(value, "ns")
        else:
            out.values[idx] = value
        out.mask[idx] = False
        return out

    def dropna(self) -> "Column":
        return self.filter(~self.mask)

    # ------------------------------------------------------------------
    # Reductions (missing-aware)
    # ------------------------------------------------------------------
    def _valid_floats(self) -> np.ndarray:
        return self.to_float()[~self.mask]

    def sum(self) -> float:
        v = self._valid_floats()
        return float(v.sum()) if len(v) else 0.0

    def mean(self) -> float:
        v = self._valid_floats()
        return float(v.mean()) if len(v) else float("nan")

    def var(self, ddof: int = 1) -> float:
        v = self._valid_floats()
        return float(v.var(ddof=ddof)) if len(v) > ddof else float("nan")

    def std(self, ddof: int = 1) -> float:
        v = self.var(ddof=ddof)
        return float(np.sqrt(v))

    def median(self) -> float:
        v = self._valid_floats()
        return float(np.median(v)) if len(v) else float("nan")

    def min(self) -> Any:
        if self.dtype is STRING:
            vals = [v for v in self.values[~self.mask]]
            return min(vals) if vals else None
        if self.dtype is DATETIME:
            vals = self.values[~self.mask]
            return vals.min() if len(vals) else None
        v = self._valid_floats()
        if not len(v):
            return None
        m = float(v.min())
        return int(m) if self.dtype is INT64 else m

    def max(self) -> Any:
        if self.dtype is STRING:
            vals = [v for v in self.values[~self.mask]]
            return max(vals) if vals else None
        if self.dtype is DATETIME:
            vals = self.values[~self.mask]
            return vals.max() if len(vals) else None
        v = self._valid_floats()
        if not len(v):
            return None
        m = float(v.max())
        return int(m) if self.dtype is INT64 else m

    def count(self) -> int:
        return int((~self.mask).sum())

    # ------------------------------------------------------------------
    # Uniques / cardinality
    # ------------------------------------------------------------------
    def unique(self) -> list[Any]:
        """Distinct non-missing values in first-appearance order."""
        seen: dict[Any, None] = {}
        ok = ~self.mask
        if self.dtype is STRING:
            for v in self.values[ok]:
                seen.setdefault(v)
        elif self.dtype is DATETIME:
            for v in self.values[ok]:
                seen.setdefault(v)
        else:
            for v in self.values[ok]:
                key = v.item() if hasattr(v, "item") else v
                seen.setdefault(key)
        return list(seen.keys())

    def nunique(self) -> int:
        return len(self.unique())

    def value_counts(self) -> list[tuple[Any, int]]:
        """(value, count) pairs sorted by descending count then value order."""
        counts: dict[Any, int] = {}
        ok = ~self.mask
        for v in self.values[ok]:
            key = v.item() if hasattr(v, "item") and self.dtype is not DATETIME else v
            counts[key] = counts.get(key, 0) + 1
        return sorted(counts.items(), key=lambda kv: -kv[1])

    def factorize(self) -> tuple[np.ndarray, list[Any]]:
        """Encode values as integer codes (missing = -1) plus unique labels."""
        labels: dict[Any, int] = {}
        codes = np.empty(len(self), dtype=np.int64)
        for i in range(len(self)):
            if self.mask[i]:
                codes[i] = -1
                continue
            v = self.values[i]
            key = v.item() if hasattr(v, "item") and self.dtype is not DATETIME else v
            code = labels.get(key)
            if code is None:
                code = len(labels)
                labels[key] = code
            codes[i] = code
        return codes, list(labels.keys())

    # ------------------------------------------------------------------
    # Elementwise ops
    # ------------------------------------------------------------------
    def _binary(
        self,
        other: Any,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray],
        out_dtype: DType | None = None,
    ) -> "Column":
        if isinstance(other, Column):
            if len(other) != len(self):
                raise ValueError("length mismatch in column operation")
            o_vals, o_mask = other.values, other.mask
            o_dtype = other.dtype
        else:
            o_vals, o_mask = other, np.zeros(len(self), dtype=bool)
            o_dtype = dtypes.infer_dtype([other]) if other is not None else STRING

        mask = self.mask | o_mask
        if self.dtype is STRING or o_dtype is STRING:
            # String ops are done elementwise through object arrays.
            left = self.values
            right = o_vals.values if isinstance(o_vals, Column) else o_vals
            n = len(self)
            out = np.empty(n, dtype=object)
            for i in range(n):
                if mask[i]:
                    out[i] = None
                    continue
                rv = right[i] if isinstance(right, np.ndarray) else right
                out[i] = op(left[i], rv)
            values, m2, dt = dtypes.coerce(out.tolist(), out_dtype)
            return Column(values, m2 | mask, dt)
        left_f = self.values
        right_f = o_vals
        with np.errstate(divide="ignore", invalid="ignore"):
            result = op(left_f, right_f)
        if out_dtype is None:
            if result.dtype.kind == "b":
                out_dtype = BOOL
            elif result.dtype.kind == "f":
                out_dtype = FLOAT64
            else:
                out_dtype = INT64
        values, m2, dt = dtypes.coerce(np.asarray(result), out_dtype)
        return Column(values, m2 | mask, dt)

    def __add__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: a + b)

    def __sub__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: a - b)

    def __mul__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: a * b)

    def __truediv__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: a / b, FLOAT64)

    def __floordiv__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: a // b)

    def __mod__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: a % b)

    def __pow__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: a**b)

    def __neg__(self) -> "Column":
        out = self.copy()
        out.values = -out.values
        return out

    def _compare(self, other: Any, op: Callable[[Any, Any], Any]) -> "Column":
        if self.dtype is DATETIME and isinstance(other, str):
            other = np.datetime64(other, "ns")
        if self.dtype is STRING:
            n = len(self)
            out = np.zeros(n, dtype=bool)
            right = other.values if isinstance(other, Column) else None
            mask = self.mask | (other.mask if isinstance(other, Column) else False)
            for i in range(n):
                if mask if isinstance(mask, bool) else mask[i]:
                    continue
                rv = right[i] if right is not None else other
                try:
                    out[i] = bool(op(self.values[i], rv))
                except TypeError:
                    out[i] = False
            m = mask if isinstance(mask, np.ndarray) else self.mask.copy()
            return Column(out, m.copy(), BOOL)
        return self._binary(other, op, BOOL)

    def __eq__(self, other: Any) -> "Column":  # type: ignore[override]
        return self._compare(other, lambda a, b: a == b)

    def __ne__(self, other: Any) -> "Column":  # type: ignore[override]
        return self._compare(other, lambda a, b: a != b)

    def __lt__(self, other: Any) -> "Column":
        return self._compare(other, lambda a, b: a < b)

    def __le__(self, other: Any) -> "Column":
        return self._compare(other, lambda a, b: a <= b)

    def __gt__(self, other: Any) -> "Column":
        return self._compare(other, lambda a, b: a > b)

    def __ge__(self, other: Any) -> "Column":
        return self._compare(other, lambda a, b: a >= b)

    def __and__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: a & b, BOOL)

    def __or__(self, other: Any) -> "Column":
        return self._binary(other, lambda a, b: a | b, BOOL)

    def __invert__(self) -> "Column":
        if self.dtype is not BOOL:
            raise TypeError("~ requires a boolean column")
        return Column(~self.values, self.mask.copy(), BOOL)

    def isin(self, values: Any) -> "Column":
        pool = set(values)
        out = np.zeros(len(self), dtype=bool)
        ok = ~self.mask
        for i in np.flatnonzero(ok):
            v = self.values[i]
            key = v.item() if hasattr(v, "item") and self.dtype is not DATETIME else v
            out[i] = key in pool
        return Column(out, np.zeros(len(self), dtype=bool), BOOL)

    # ------------------------------------------------------------------
    # Sorting helpers
    # ------------------------------------------------------------------
    def argsort(self, ascending: bool = True) -> np.ndarray:
        """Stable argsort with missing values placed last."""
        ok = ~self.mask
        if self.dtype is STRING:
            valid_idx = np.flatnonzero(ok)
            order = sorted(valid_idx, key=lambda i: self.values[i])
            if not ascending:
                order = order[::-1]
            order = np.asarray(order, dtype=np.int64)
        else:
            keys = self.to_float()
            keys_valid = np.where(ok, keys, np.inf)
            order = np.argsort(keys_valid if ascending else -keys_valid, kind="stable")
            order = order[ok[order]]
        missing = np.flatnonzero(self.mask)
        return np.concatenate([order, missing]) if len(missing) else np.asarray(order)


def _parse_number(text: Any) -> Any:
    if text is None:
        return None
    s = str(text).strip().replace(",", "")
    if not s:
        return None
    try:
        return float(s)
    except ValueError:
        return None
