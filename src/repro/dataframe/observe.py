"""Mutation observers: column-level change events for a frame's consumers.

The substrate keeps cache coherence *pull*-based: every in-place mutation
bumps ``DataFrame._data_version`` and consumers compare versions on read.
The always-on service needs a *push* signal too — a background
precomputation pass must start when the analyst edits the frame, not when
they next look — so :meth:`DataFrame._notify_mutation` (and
``LuxDataFrame``'s richer expiry path) additionally emits through this
registry.

Events carry a structured :class:`Delta`, not just an opaque version bump:
which columns changed, whether the row set or the schema changed, and
whether the change was *intent-only* (recommendation state) versus data.
Consumers use the delta to do work proportional to what changed — the
executor's computation cache keeps entries for untouched columns across a
bump, and the precompute engine reruns only the actions whose input
footprint intersects the delta.

The registry holds frames weakly (by id + weakref, never by hash: frames
compare elementwise) and drops a frame's callback list the moment the
frame is collected.  Callbacks run synchronously on the mutating thread as
``callback(frame, op, delta)`` and must be cheap and non-raising; the
service's engine only records the delta and flips a debounce timer here.
Exceptions are contained so a broken observer can never turn a dataframe
mutation into a crash.
"""

from __future__ import annotations

import threading
import warnings
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from .frame import DataFrame

__all__ = ["Delta", "register", "unregister", "emit", "observer_count"]


@dataclass(frozen=True)
class Delta:
    """What one mutation (or one coalesced burst) actually touched.

    ``columns_changed`` is the set of column names whose *values* are no
    longer what a pre-mutation reader saw — including columns added,
    dropped, or renamed (both old and new names).  ``None`` means unknown:
    consumers must assume everything changed.  ``rows_changed`` marks any
    change to the row set (length or order), which invalidates even
    untouched columns' row-aligned derivations.  ``schema_changed`` marks
    column add/drop/rename and semantic-type overrides.  ``intent_changed``
    marks recommendation-state changes (intent edits, type overrides); an
    *intent-only* delta leaves the data completely untouched.
    """

    columns_changed: "frozenset[str] | None" = None
    rows_changed: bool = False
    schema_changed: bool = False
    intent_changed: bool = False

    @property
    def intent_only(self) -> bool:
        """True when no data changed at all (pure recommendation-state)."""
        return (
            self.intent_changed
            and self.columns_changed is not None
            and not self.columns_changed
            and not self.rows_changed
            and not self.schema_changed
        )

    @property
    def full(self) -> bool:
        """True when column-level reasoning is impossible (assume all)."""
        return self.columns_changed is None or self.rows_changed

    def touches(self, columns: "Iterable[str] | None") -> bool:
        """Would a consumer keyed on ``columns`` see different data?

        ``columns=None`` means the consumer's inputs are unknown — it is
        affected by any data change.  Intent-only deltas touch no column
        set (intent dependence is the consumer's separate axis).
        """
        if self.intent_only:
            return False
        if self.full:
            return True
        if columns is None:
            return True
        return bool(self.columns_changed.intersection(columns))

    def union(self, other: "Delta") -> "Delta":
        """Coalesce two deltas (a debounced burst of mutations)."""
        if self.columns_changed is None or other.columns_changed is None:
            columns = None
        else:
            columns = self.columns_changed | other.columns_changed
        return Delta(
            columns_changed=columns,
            rows_changed=self.rows_changed or other.rows_changed,
            schema_changed=self.schema_changed or other.schema_changed,
            intent_changed=self.intent_changed or other.intent_changed,
        )

    @staticmethod
    def unknown() -> "Delta":
        """The conservative delta: everything may have changed."""
        return Delta(
            columns_changed=None,
            rows_changed=True,
            schema_changed=True,
            intent_changed=True,
        )

    @staticmethod
    def data(
        columns: Iterable[str],
        rows_changed: bool = False,
        schema_changed: bool = False,
    ) -> "Delta":
        return Delta(
            columns_changed=frozenset(str(c) for c in columns),
            rows_changed=rows_changed,
            schema_changed=schema_changed,
        )

    @staticmethod
    def intent() -> "Delta":
        """An intent-only change: data untouched, recommendations stale."""
        return Delta(columns_changed=frozenset(), intent_changed=True)


#: frame id -> (weakref to the frame, ordered callback list).
_OBSERVERS: dict[int, tuple["weakref.ref", list[Callable[..., None]]]] = {}  # guarded-by: _LOCK
_LOCK = threading.Lock()


def register(
    frame: "DataFrame", callback: Callable[[Any, str, Delta], None]
) -> Callable[[], None]:
    """Call ``callback(frame, op, delta)`` after every mutation of ``frame``.

    Returns an unsubscribe function (idempotent).  Registration keeps no
    strong reference to the frame; when the frame dies the entry
    disappears with it.
    """
    # Identity key is weakref-validated on read and dropped on collection,
    # so a recycled id never aliases.  check: ignore[unstable-key]
    key = id(frame)
    with _LOCK:
        entry = _OBSERVERS.get(key)
        if entry is None or entry[0]() is not frame:
            ref = weakref.ref(frame, lambda _, k=key: _drop(k))
            callbacks: list[Callable[..., None]] = []
            _OBSERVERS[key] = (ref, callbacks)
        else:
            callbacks = entry[1]
        callbacks.append(callback)

    def unsubscribe() -> None:
        unregister(frame, callback)

    return unsubscribe


def unregister(frame: "DataFrame", callback: Callable[..., None]) -> None:
    # Weakref-validated identity key (see register).  check: ignore[unstable-key]
    key = id(frame)
    with _LOCK:
        entry = _OBSERVERS.get(key)
        if entry is None:
            return
        callbacks = entry[1]
        if callback in callbacks:
            callbacks.remove(callback)
        if not callbacks:
            _OBSERVERS.pop(key, None)


def _drop(key: int) -> None:
    with _LOCK:
        _OBSERVERS.pop(key, None)


def observer_count(frame: "DataFrame") -> int:
    with _LOCK:
        # Weakref-validated identity key (see register).  check: ignore[unstable-key]
        entry = _OBSERVERS.get(id(frame))
        return len(entry[1]) if entry is not None and entry[0]() is frame else 0


def emit(frame: "DataFrame", op: str, delta: Delta | None = None) -> None:
    """Notify ``frame``'s observers; cheap no-op when none are registered.

    ``delta`` defaults to :meth:`Delta.unknown` so emitters that cannot
    describe their change stay safe (consumers assume everything moved).
    """
    # Deliberately unlocked fast-path probe: the common case (no observers)
    # must not serialize every mutation on _LOCK; the worst case is a stale
    # answer, re-checked under the lock below before anything is used.
    # check: ignore[guarded-by, unstable-key]
    entry = _OBSERVERS.get(id(frame))
    if entry is None:
        return
    with _LOCK:
        # Weakref-validated identity key (see register).  check: ignore[unstable-key]
        entry = _OBSERVERS.get(id(frame))
        if entry is None or entry[0]() is not frame:
            return
        callbacks = list(entry[1])
    if delta is None:
        delta = Delta.unknown()
    for callback in callbacks:
        try:
            callback(frame, op, delta)
        except Exception as exc:  # observers must never break mutations
            warnings.warn(f"mutation observer failed: {exc}", RuntimeWarning)
