"""Mutation observers: subscribe to a frame's content-version bumps.

The substrate keeps cache coherence *pull*-based: every in-place mutation
bumps ``DataFrame._data_version`` and consumers compare versions on read.
The always-on service needs a *push* signal too — a background
precomputation pass must start when the analyst edits the frame, not when
they next look — so :meth:`DataFrame._notify_mutation` (and
``LuxDataFrame``'s richer expiry path) additionally emits through this
registry.

The registry holds frames weakly (by id + weakref, never by hash: frames
compare elementwise) and drops a frame's callback list the moment the
frame is collected.  Callbacks run synchronously on the mutating thread
and must be cheap and non-raising; the service's engine only flips a
debounce timer here.  Exceptions are contained so a broken observer can
never turn a dataframe mutation into a crash.
"""

from __future__ import annotations

import threading
import warnings
import weakref
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from .frame import DataFrame

__all__ = ["register", "unregister", "emit", "observer_count"]

#: frame id -> (weakref to the frame, ordered callback list).
_OBSERVERS: dict[int, tuple["weakref.ref", list[Callable[[Any, str], None]]]] = {}
_LOCK = threading.Lock()


def register(
    frame: "DataFrame", callback: Callable[[Any, str], None]
) -> Callable[[], None]:
    """Call ``callback(frame, op)`` after every mutation of ``frame``.

    Returns an unsubscribe function (idempotent).  Registration keeps no
    strong reference to the frame; when the frame dies the entry
    disappears with it.
    """
    key = id(frame)
    with _LOCK:
        entry = _OBSERVERS.get(key)
        if entry is None or entry[0]() is not frame:
            ref = weakref.ref(frame, lambda _, k=key: _drop(k))
            callbacks: list[Callable[[Any, str], None]] = []
            _OBSERVERS[key] = (ref, callbacks)
        else:
            callbacks = entry[1]
        callbacks.append(callback)

    def unsubscribe() -> None:
        unregister(frame, callback)

    return unsubscribe


def unregister(frame: "DataFrame", callback: Callable[[Any, str], None]) -> None:
    key = id(frame)
    with _LOCK:
        entry = _OBSERVERS.get(key)
        if entry is None:
            return
        callbacks = entry[1]
        if callback in callbacks:
            callbacks.remove(callback)
        if not callbacks:
            _OBSERVERS.pop(key, None)


def _drop(key: int) -> None:
    with _LOCK:
        _OBSERVERS.pop(key, None)


def observer_count(frame: "DataFrame") -> int:
    with _LOCK:
        entry = _OBSERVERS.get(id(frame))
        return len(entry[1]) if entry is not None and entry[0]() is frame else 0


def emit(frame: "DataFrame", op: str) -> None:
    """Notify ``frame``'s observers; cheap no-op when none are registered."""
    entry = _OBSERVERS.get(id(frame))
    if entry is None:
        return
    with _LOCK:
        entry = _OBSERVERS.get(id(frame))
        if entry is None or entry[0]() is not frame:
            return
        callbacks = list(entry[1])
    for callback in callbacks:
        try:
            callback(frame, op)
        except Exception as exc:  # observers must never break mutations
            warnings.warn(f"mutation observer failed: {exc}", RuntimeWarning)
