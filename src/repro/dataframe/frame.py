"""DataFrame: the columnar table at the heart of the substrate.

The class is deliberately subclass-friendly: every operation that produces a
new frame routes through :meth:`DataFrame._wrap`, and every in-place
mutation calls :meth:`DataFrame._notify_mutation`.  ``repro.core.frame``
builds ``LuxDataFrame`` on these two hooks to implement the paper's history
tracking and metadata-expiry (``wflow``) without touching operator logic.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from . import dtypes, observe
from .column import Column
from .dtypes import BOOL, DType
from .index import Index, RangeIndex
from .series import Series, _as_bool_mask

__all__ = ["DataFrame", "concat"]


class _ILocIndexer:
    """Positional row selection: ``df.iloc[3]``, ``df.iloc[1:5]``, masks."""

    def __init__(self, frame: "DataFrame") -> None:
        self._frame = frame

    def __getitem__(self, key: Any) -> Any:
        frame = self._frame
        if isinstance(key, tuple):
            rows, cols = key
            return frame.iloc[rows][frame.columns[cols] if isinstance(cols, int) else cols]
        if isinstance(key, int):
            if key < 0:
                key += len(frame)
            return {name: frame._data[name][key] for name in frame.columns}
        if isinstance(key, slice):
            return frame._slice_rows(key)
        arr = np.asarray(key)
        if arr.dtype.kind == "b":
            return frame._filter_rows(arr)
        return frame._take_rows(arr.astype(np.int64))


class _LocIndexer:
    """Label-based row selection over the frame's index."""

    def __init__(self, frame: "DataFrame") -> None:
        self._frame = frame

    def __getitem__(self, key: Any) -> Any:
        frame = self._frame
        if isinstance(key, (Series, Column)) or (
            isinstance(key, (list, np.ndarray)) and len(key) == len(frame)
            and np.asarray(key).dtype.kind == "b"
        ):
            return frame[key]
        if isinstance(key, list):
            positions = np.asarray([frame.index.get_loc(k) for k in key], dtype=np.int64)
            return frame._take_rows(positions)
        return frame.iloc[frame.index.get_loc(key)]


class DataFrame:
    """An ordered mapping of column name -> :class:`Column`, plus a row index."""

    # Attributes set through normal ``df.attr = ...`` assignment rather than
    # column assignment.  Subclasses extend this.
    _internal_names: set[str] = {
        "_data",
        "_index",
        "_column_order",
    }

    #: Content-version counter, bumped by every in-place mutation.  Caches
    #: that hold derived per-frame state (row samples, the executor's
    #: computation cache) key on it to detect staleness even for plain
    #: frames that have no richer expiry hooks.
    _data_version: int = 0

    def __init__(
        self,
        data: Any = None,
        columns: Sequence[str] | None = None,
        index: Index | None = None,
    ) -> None:
        object.__setattr__(self, "_data", {})
        object.__setattr__(self, "_column_order", [])
        object.__setattr__(self, "_index", None)

        if data is None:
            data = {}
        if isinstance(data, DataFrame):
            for name in data.columns:
                self._data[name] = data._data[name].copy()
            self._column_order = list(data.columns)
            self._index = index if index is not None else data.index
            return
        if isinstance(data, Mapping):
            items = list(data.items())
        elif isinstance(data, list) and data and isinstance(data[0], Mapping):
            keys = list(columns) if columns else list(data[0].keys())
            items = [(k, [row.get(k) for row in data]) for k in keys]
            columns = None
        elif isinstance(data, list) and not data:
            items = [(c, []) for c in (columns or [])]
            columns = None
        else:
            raise TypeError(f"cannot construct DataFrame from {type(data).__name__}")

        n = None
        for name, values in items:
            col = values if isinstance(values, Column) else Column.from_data(
                values.column if isinstance(values, Series) else values
            )
            if n is None:
                n = len(col)
            elif len(col) != n:
                raise ValueError(
                    f"column {name!r} has length {len(col)}, expected {n}"
                )
            self._data[str(name)] = col
            self._column_order.append(str(name))
        if columns is not None:
            missing = [c for c in columns if c not in self._data]
            if missing:
                raise KeyError(f"columns not in data: {missing}")
            self._column_order = [str(c) for c in columns]
        self._index = index if index is not None else RangeIndex(n or 0)
        if self._column_order and len(self._index) != n:
            raise ValueError("index length does not match data")

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _wrap(
        self,
        data: dict[str, Column],
        index: Index,
        op: str,
        rows: tuple | None = None,
    ) -> "DataFrame":
        """Construct a derived frame.  Subclasses propagate state here.

        ``rows`` describes how the child's rows map onto the parent's when
        the derivation is a pure row subset — a tagged selector
        ``("mask", keep)`` / ``("take", indices)`` / ``("slice", sl, n)``
        left raw so subclasses that don't consume it pay no conversion.
        """
        out = type(self).__new__(type(self))
        object.__setattr__(out, "_data", data)
        object.__setattr__(out, "_column_order", list(data.keys()))
        object.__setattr__(out, "_index", index)
        out._init_derived(parent=self, op=op, rows=rows)
        return out

    def _init_derived(
        self, parent: "DataFrame", op: str, rows: tuple | None = None
    ) -> None:
        """Hook for subclasses; base frames carry no extra state."""

    def _notify_mutation(self, op: str, delta: "observe.Delta | None" = None) -> None:
        """Hook called after any in-place change; bumps ``_data_version``.

        ``delta`` describes what the mutation touched (column-level change
        tracking); ``None`` means unknown and consumers assume everything
        changed.  Subclasses overriding this must keep the version bump
        and the observer emission (LuxDataFrame does so via its
        ``_expire`` rules) and must propagate the delta.
        """
        object.__setattr__(self, "_data_version", self._data_version + 1)
        observe.emit(self, op, delta)

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        return list(self._column_order)

    @property
    def index(self) -> Index:
        return self._index

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self), len(self._column_order))

    @property
    def empty(self) -> bool:
        return len(self) == 0 or not self._column_order

    @property
    def dtypes(self) -> dict[str, DType]:
        return {name: self._data[name].dtype for name in self._column_order}

    @property
    def iloc(self) -> _ILocIndexer:
        return _ILocIndexer(self)

    @property
    def loc(self) -> _LocIndexer:
        return _LocIndexer(self)

    def __len__(self) -> int:
        if not self._column_order:
            return len(self._index) if self._index is not None else 0
        return len(self._data[self._column_order[0]])

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._column_order)

    def __getitem__(self, key: Any) -> Any:
        if isinstance(key, str):
            try:
                col = self._data[key]
            except KeyError:
                raise KeyError(f"column {key!r} not found") from None
            return self._make_series(col, key)
        if isinstance(key, list) and all(isinstance(k, str) for k in key):
            missing = [k for k in key if k not in self._data]
            if missing:
                raise KeyError(f"columns not found: {missing}")
            data = {k: self._data[k] for k in key}
            return self._wrap(data, self._index, op="select_columns")
        if isinstance(key, slice):
            return self._slice_rows(key)
        keep = _as_bool_mask(key, len(self))
        return self._filter_rows(keep)

    def __setitem__(self, key: str, value: Any) -> None:
        if not isinstance(key, str):
            raise TypeError("column assignment requires a string key")
        if isinstance(value, Series):
            col = value.column.copy()
        elif isinstance(value, Column):
            col = value.copy()
        elif np.isscalar(value) or value is None or isinstance(value, str):
            col = Column.full(len(self) if self._column_order else 0, value)
        else:
            col = Column.from_data(value)
        if self._column_order and len(col) != len(self):
            raise ValueError(
                f"length mismatch: column of {len(col)} vs frame of {len(self)}"
            )
        added = key not in self._data
        # Assigning the first column of an empty frame can change the row
        # set (the index is rebuilt); treat that as a row-level change.
        rows_changed = not self._column_order or (
            self._index is not None and len(self._index) != len(col)
        )
        if added:
            self._column_order.append(key)
        self._data[key] = col
        if self._index is None or len(self._index) != len(col):
            self._index = RangeIndex(len(col))
        self._notify_mutation(
            "setitem",
            observe.Delta.data(
                [key], rows_changed=rows_changed, schema_changed=added
            ),
        )

    def __delitem__(self, key: str) -> None:
        del self._data[key]
        self._column_order.remove(key)
        self._notify_mutation(
            "delitem", observe.Delta.data([key], schema_changed=True)
        )

    def __getattr__(self, name: str) -> Any:
        # Dot access to columns (``df.Age``), mirroring pandas.
        if name.startswith("_"):
            raise AttributeError(name)
        data = self.__dict__.get("_data")
        if data is not None and name in data:
            return self._make_series(data[name], name)
        raise AttributeError(f"{type(self).__name__!s} has no attribute {name!r}")

    def __setattr__(self, name: str, value: Any) -> None:
        if name in self._internal_names or name.startswith("_"):
            object.__setattr__(self, name, value)
        elif isinstance(value, (Series, Column, list, np.ndarray)) and name in self._data:
            self[name] = value
        else:
            object.__setattr__(self, name, value)

    def _make_series(self, col: Column, name: str) -> Series:
        return Series(col, name=name, index=self._index)

    # ------------------------------------------------------------------
    # Row selection internals
    # ------------------------------------------------------------------
    def _filter_rows(self, keep: np.ndarray) -> "DataFrame":
        data = {name: self._data[name].filter(keep) for name in self._column_order}
        return self._wrap(
            data, self._index.filter(keep), op="filter", rows=("mask", keep)
        )

    def _take_rows(self, indices: np.ndarray) -> "DataFrame":
        data = {name: self._data[name].take(indices) for name in self._column_order}
        return self._wrap(
            data, self._index.take(indices), op="take", rows=("take", indices)
        )

    def _slice_rows(self, sl: slice) -> "DataFrame":
        n = len(self)
        data = {name: self._data[name].slice(sl) for name in self._column_order}
        return self._wrap(
            data, self._index.slice(sl), op="slice", rows=("slice", sl, n)
        )

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------
    def head(self, n: int = 5) -> "DataFrame":
        out = self._slice_rows(slice(0, n))
        out._init_derived(parent=self, op="head")
        return out

    def tail(self, n: int = 5) -> "DataFrame":
        out = self._slice_rows(slice(max(len(self) - n, 0), len(self)))
        out._init_derived(parent=self, op="tail")
        return out

    def copy(self) -> "DataFrame":
        data = {name: self._data[name].copy() for name in self._column_order}
        return self._wrap(data, self._index, op="copy")

    def column(self, name: str) -> Column:
        """Direct access to the underlying storage column."""
        return self._data[name]

    def sample(
        self,
        n: int | None = None,
        frac: float | None = None,
        random_state: int | None = None,
    ) -> "DataFrame":
        if (n is None) == (frac is None):
            raise ValueError("specify exactly one of n or frac")
        size = n if n is not None else int(round(len(self) * float(frac)))
        size = min(size, len(self))
        rng = np.random.default_rng(random_state)
        idx = rng.choice(len(self), size=size, replace=False)
        return self._take_rows(np.sort(idx))

    # ------------------------------------------------------------------
    # Mutating / structural operations
    # ------------------------------------------------------------------
    def rename(
        self, columns: Mapping[str, str], inplace: bool = False
    ) -> "DataFrame | None":
        target = self if inplace else self.copy()
        renamed: set[str] = set()
        for old, new in columns.items():
            if old not in target._data:
                continue
            target._data[str(new)] = target._data.pop(old)
            pos = target._column_order.index(old)
            target._column_order[pos] = str(new)
            renamed.update((old, str(new)))
        if inplace:
            self._notify_mutation(
                "rename", observe.Delta.data(renamed, schema_changed=True)
            )
            return None
        target._init_derived(parent=self, op="rename")
        return target

    def drop(
        self, columns: str | Sequence[str], inplace: bool = False
    ) -> "DataFrame | None":
        names = [columns] if isinstance(columns, str) else list(columns)
        missing = [c for c in names if c not in self._data]
        if missing:
            raise KeyError(f"columns not found: {missing}")
        if inplace:
            for c in names:
                del self._data[c]
                self._column_order.remove(c)
            self._notify_mutation(
                "drop", observe.Delta.data(names, schema_changed=True)
            )
            return None
        data = {
            name: self._data[name] for name in self._column_order if name not in names
        }
        return self._wrap(data, self._index, op="drop")

    def dropna(
        self, subset: Sequence[str] | None = None, inplace: bool = False
    ) -> "DataFrame | None":
        names = list(subset) if subset else self._column_order
        keep = np.ones(len(self), dtype=bool)
        for name in names:
            keep &= ~self._data[name].mask
        if inplace:
            for name in self._column_order:
                self._data[name] = self._data[name].filter(keep)
            self._index = self._index.filter(keep)
            # Row-level change: every column's row alignment moved.
            self._notify_mutation(
                "dropna",
                observe.Delta.data(self._column_order, rows_changed=True),
            )
            return None
        return self._filter_rows(keep)

    def fillna(self, value: Any, inplace: bool = False) -> "DataFrame | None":
        if inplace:
            filled: list[str] = []
            for name in self._column_order:
                if self._data[name].mask.any():
                    try:
                        self._data[name] = self._data[name].fillna(value)
                    except (TypeError, ValueError):
                        continue
                    filled.append(name)
            self._notify_mutation("fillna", observe.Delta.data(filled))
            return None
        out = self.copy()
        out.fillna(value, inplace=True)
        out._init_derived(parent=self, op="fillna")
        return out

    def isna(self) -> "DataFrame":
        data = {
            name: Column(
                self._data[name].isna(), np.zeros(len(self), dtype=bool), BOOL
            )
            for name in self._column_order
        }
        return self._wrap(data, self._index, op="isna")

    def reset_index(self, drop: bool = False) -> "DataFrame":
        data: dict[str, Column] = {}
        if not drop and not self._index.is_default:
            data[self._index.name or "index"] = self._index.column.copy()
        for name in self._column_order:
            data[name] = self._data[name]
        return self._wrap(data, RangeIndex(len(self)), op="reset_index")

    def set_index(self, name: str) -> "DataFrame":
        if name not in self._data:
            raise KeyError(name)
        data = {c: self._data[c] for c in self._column_order if c != name}
        return self._wrap(data, Index(self._data[name].copy(), name=name), op="set_index")

    # ------------------------------------------------------------------
    # Sorting
    # ------------------------------------------------------------------
    def sort_values(
        self, by: str | Sequence[str], ascending: bool | Sequence[bool] = True
    ) -> "DataFrame":
        names = [by] if isinstance(by, str) else list(by)
        orders = (
            [ascending] * len(names)
            if isinstance(ascending, bool)
            else list(ascending)
        )
        order = np.arange(len(self), dtype=np.int64)
        # Stable sorts applied from the least-significant key.
        for name, asc in list(zip(names, orders))[::-1]:
            col = self._data[name].take(order)
            order = order[col.argsort(ascending=asc)]
        return self._take_rows(order)

    def nlargest(self, n: int, column: str) -> "DataFrame":
        return self.sort_values(column, ascending=False).head(n)

    def nsmallest(self, n: int, column: str) -> "DataFrame":
        return self.sort_values(column, ascending=True).head(n)

    # ------------------------------------------------------------------
    # Reductions & stats
    # ------------------------------------------------------------------
    def _numeric_columns(self) -> list[str]:
        return [
            name
            for name in self._column_order
            if dtypes.is_numeric(self._data[name].dtype)
        ]

    def mean(self) -> dict[str, float]:
        return {c: self._data[c].mean() for c in self._numeric_columns()}

    def sum(self) -> dict[str, float]:
        return {c: self._data[c].sum() for c in self._numeric_columns()}

    def min(self) -> dict[str, Any]:
        return {c: self._data[c].min() for c in self._column_order}

    def max(self) -> dict[str, Any]:
        return {c: self._data[c].max() for c in self._column_order}

    def var(self, ddof: int = 1) -> dict[str, float]:
        return {c: self._data[c].var(ddof=ddof) for c in self._numeric_columns()}

    def count(self) -> dict[str, int]:
        return {c: self._data[c].count() for c in self._column_order}

    def nunique(self) -> dict[str, int]:
        return {c: self._data[c].nunique() for c in self._column_order}

    def describe(self) -> "DataFrame":
        """Numeric summary table in the spirit of ``pandas.describe``."""
        stats = ["count", "mean", "std", "min", "median", "max"]
        numeric = self._numeric_columns()
        data: dict[str, Column] = {}
        for name in numeric:
            col = self._data[name]
            data[name] = Column.from_data(
                [
                    float(col.count()),
                    col.mean(),
                    col.std(),
                    float(col.min()) if col.count() else float("nan"),
                    col.median(),
                    float(col.max()) if col.count() else float("nan"),
                ]
            )
        out = DataFrame(data, index=Index(stats, name="statistic"))
        out._init_derived(parent=self, op="describe")
        return out

    def corr(self) -> "DataFrame":
        """Pairwise Pearson correlation between numeric columns."""
        numeric = self._numeric_columns()
        mat = np.empty((len(numeric), len(numeric)))
        cols = {c: self._data[c].to_float() for c in numeric}
        for i, a in enumerate(numeric):
            for j, b in enumerate(numeric):
                if j < i:
                    mat[i, j] = mat[j, i]
                    continue
                ok = ~np.isnan(cols[a]) & ~np.isnan(cols[b])
                if ok.sum() < 2:
                    mat[i, j] = np.nan
                    continue
                x, y = cols[a][ok], cols[b][ok]
                sx, sy = x.std(), y.std()
                if sx == 0 or sy == 0:
                    mat[i, j] = np.nan
                else:
                    mat[i, j] = float(np.corrcoef(x, y)[0, 1])
        data = {c: Column.from_data(mat[:, j]) for j, c in enumerate(numeric)}
        out = DataFrame(data, index=Index(numeric))
        out._init_derived(parent=self, op="corr")
        return out

    # ------------------------------------------------------------------
    # Relational operators (delegated to sibling modules)
    # ------------------------------------------------------------------
    def groupby(self, by: str | Sequence[str]) -> "GroupBy":
        from .groupby import GroupBy

        return GroupBy(self, [by] if isinstance(by, str) else list(by))

    def merge(
        self,
        right: "DataFrame",
        how: str = "inner",
        on: str | Sequence[str] | None = None,
        left_on: str | Sequence[str] | None = None,
        right_on: str | Sequence[str] | None = None,
        suffixes: tuple[str, str] = ("_x", "_y"),
    ) -> "DataFrame":
        from .join import merge as _merge

        return _merge(
            self,
            right,
            how=how,
            on=on,
            left_on=left_on,
            right_on=right_on,
            suffixes=suffixes,
        )

    def pivot(self, index: str, columns: str, values: str) -> "DataFrame":
        from .reshape import pivot as _pivot

        return _pivot(self, index=index, columns=columns, values=values)

    def pivot_table(
        self,
        index: str,
        columns: str,
        values: str,
        aggfunc: str | Callable = "mean",
    ) -> "DataFrame":
        from .reshape import pivot_table as _pivot_table

        return _pivot_table(
            self, index=index, columns=columns, values=values, aggfunc=aggfunc
        )

    def melt(
        self,
        id_vars: Sequence[str] | None = None,
        value_vars: Sequence[str] | None = None,
        var_name: str = "variable",
        value_name: str = "value",
    ) -> "DataFrame":
        from .reshape import melt as _melt

        return _melt(
            self,
            id_vars=id_vars,
            value_vars=value_vars,
            var_name=var_name,
            value_name=value_name,
        )

    # ------------------------------------------------------------------
    # Conversion / IO
    # ------------------------------------------------------------------
    def to_records(self) -> list[dict[str, Any]]:
        cols = {name: self._data[name] for name in self._column_order}
        return [
            {name: cols[name][i] for name in self._column_order}
            for i in range(len(self))
        ]

    def to_dict(self) -> dict[str, list[Any]]:
        return {name: self._data[name].to_list() for name in self._column_order}

    def to_csv(self, path: str, **kwargs: Any) -> None:
        from .io import to_csv as _to_csv

        _to_csv(self, path, **kwargs)

    def itertuples(self) -> Iterator[tuple[Any, ...]]:
        cols = [self._data[name] for name in self._column_order]
        for i in range(len(self)):
            yield tuple(c[i] for c in cols)

    def equals(self, other: "DataFrame") -> bool:
        if not isinstance(other, DataFrame):
            return False
        if self.columns != other.columns or len(self) != len(other):
            return False
        return all(self._data[c].equals(other._data[c]) for c in self._column_order)

    def content_hash(self) -> int:
        """Order-sensitive hash of the frame's full contents.

        Used by tests and by ``wflow`` freshness assertions to detect any
        accidental mutation (the WYSIWYG invariant from §10.3 of the paper).
        """
        acc = hash((tuple(self._column_order), len(self)))
        for name in self._column_order:
            col = self._data[name]
            acc ^= hash((name, col.dtype.name, col.mask.tobytes()))
            if col.dtype.name == "string":
                acc ^= hash(tuple(col.values.tolist()))
            else:
                acc ^= hash(col.values.tobytes())
        return acc

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return self.to_string(max_rows=10)

    def to_string(self, max_rows: int = 10) -> str:
        n = len(self)
        shown = min(n, max_rows)
        headers = ["" if self._index.is_default else (self._index.name or "")]
        headers += self._column_order
        rows: list[list[str]] = []
        for i in range(shown):
            label = str(self._index[i])
            rows.append(
                [label] + [_fmt(self._data[c][i]) for c in self._column_order]
            )
        widths = [
            max(len(headers[j]), *(len(r[j]) for r in rows)) if rows else len(headers[j])
            for j in range(len(headers))
        ]
        lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
        for r in rows:
            lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
        if n > shown:
            lines.append(f"... [{n} rows x {len(self._column_order)} columns]")
        else:
            lines.append(f"[{n} rows x {len(self._column_order)} columns]")
        return "\n".join(lines)


def _fmt(v: Any) -> str:
    if v is None:
        return "NaN"
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def concat(frames: Iterable[DataFrame]) -> DataFrame:
    """Vertically stack frames; columns are unioned in first-seen order."""
    frames = [f for f in frames if f is not None]
    if not frames:
        return DataFrame({})
    order: list[str] = []
    for f in frames:
        for c in f.columns:
            if c not in order:
                order.append(c)
    pieces: dict[str, Column] = {}
    for name in order:
        dtype = next(f.column(name).dtype for f in frames if name in f)
        parts: list[Column] = []
        for f in frames:
            if name in f:
                parts.append(f.column(name))
            else:
                parts.append(Column.full(len(f), None, dtype))
        col = parts[0]
        for p in parts[1:]:
            col = col.concat(p)
        pieces[name] = col
    return frames[0]._wrap(pieces, RangeIndex(sum(len(f) for f in frames)), op="concat")
