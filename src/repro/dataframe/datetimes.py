"""Datetime parsing and the ``.dt`` accessor.

Parsing accepts ISO-8601 strings (date or datetime), plus the common
``MM/DD/YYYY`` spreadsheet format — enough to load the CSVs the paper's
workloads use without a dateutil dependency.
"""

from __future__ import annotations

import re
from typing import Any

import numpy as np

from .column import Column
from .dtypes import DATETIME, INT64, STRING
from .series import Series

__all__ = ["DatetimeAccessor", "date_range", "parse_datetime_column", "to_datetime"]

_ISO_RE = re.compile(r"^\d{4}-\d{2}(-\d{2})?([ T]\d{2}:\d{2}(:\d{2})?(\.\d+)?)?$")
_US_RE = re.compile(r"^(\d{1,2})/(\d{1,2})/(\d{4})$")


def parse_datetime_scalar(value: Any) -> np.datetime64 | None:
    """Parse one value to datetime64[ns]; None when unparseable."""
    if value is None:
        return None
    if isinstance(value, np.datetime64):
        return value.astype("datetime64[ns]")
    s = str(value).strip()
    if not s:
        return None
    if _ISO_RE.match(s):
        try:
            return np.datetime64(s.replace(" ", "T"), "ns")
        except ValueError:
            return None
    m = _US_RE.match(s)
    if m:
        mm, dd, yyyy = (int(g) for g in m.groups())
        try:
            return np.datetime64(f"{yyyy:04d}-{mm:02d}-{dd:02d}", "ns")
        except ValueError:
            return None
    if s.isdigit() and len(s) == 4:
        # Bare year.
        return np.datetime64(f"{s}-01-01", "ns")
    return None


def parse_datetime_column(col: Column) -> Column:
    """Parse a string column into a datetime column (unparseable -> missing)."""
    n = len(col)
    values = np.empty(n, dtype="datetime64[ns]")
    mask = np.zeros(n, dtype=bool)
    for i in range(n):
        if col.mask[i]:
            values[i] = np.datetime64("NaT")
            mask[i] = True
            continue
        parsed = parse_datetime_scalar(col.values[i])
        if parsed is None:
            values[i] = np.datetime64("NaT")
            mask[i] = True
        else:
            values[i] = parsed
    return Column(values, mask, DATETIME)


def to_datetime(data: Any) -> Series:
    """Convert Series/list of strings or datetimes to a datetime Series."""
    series = data if isinstance(data, Series) else Series(data)
    if series.dtype is DATETIME:
        return series.copy()
    if series.dtype is STRING:
        return Series(
            parse_datetime_column(series.column), name=series.name, index=series.index
        )
    raise TypeError(f"cannot convert {series.dtype} to datetime")


def date_range(start: str, periods: int, freq: str = "D") -> Series:
    """Evenly spaced datetimes; freq in {D, W, M(30d), H, T(min), S}."""
    steps = {
        "D": np.timedelta64(1, "D"),
        "W": np.timedelta64(7, "D"),
        "M": np.timedelta64(30, "D"),
        "H": np.timedelta64(1, "h"),
        "T": np.timedelta64(1, "m"),
        "S": np.timedelta64(1, "s"),
    }
    if freq not in steps:
        raise ValueError(f"unsupported frequency {freq!r}")
    base = np.datetime64(start, "ns")
    step = steps[freq].astype("timedelta64[ns]")
    values = base + np.arange(periods) * step
    return Series(Column(values, np.zeros(periods, dtype=bool), DATETIME))


class DatetimeAccessor:
    """Component extraction from datetime Series (``s.dt.year`` etc.)."""

    def __init__(self, series: Series) -> None:
        self._series = series

    def _wrap_int(self, values: np.ndarray) -> Series:
        s = self._series
        col = Column(values.astype(np.int64), s.column.mask.copy(), INT64)
        return Series(col, name=s.name, index=s.index)

    @property
    def year(self) -> Series:
        v = self._series.column.values.astype("datetime64[Y]").astype(np.int64) + 1970
        return self._wrap_int(v)

    @property
    def month(self) -> Series:
        v = self._series.column.values.astype("datetime64[M]").astype(np.int64) % 12 + 1
        return self._wrap_int(v)

    @property
    def day(self) -> Series:
        days = self._series.column.values.astype("datetime64[D]")
        months = self._series.column.values.astype("datetime64[M]")
        v = (days - months.astype("datetime64[D]")).astype(np.int64) + 1
        return self._wrap_int(v)

    @property
    def weekday(self) -> Series:
        days = self._series.column.values.astype("datetime64[D]").astype(np.int64)
        return self._wrap_int((days + 3) % 7)  # 1970-01-01 was a Thursday

    @property
    def hour(self) -> Series:
        v = self._series.column.values.astype("datetime64[h]").astype(np.int64) % 24
        return self._wrap_int(v)

    def strftime(self, fmt: str) -> Series:
        s = self._series
        out = []
        for i in range(len(s)):
            if s.column.mask[i]:
                out.append(None)
            else:
                import datetime as _dt

                ts = s.column.values[i].astype("datetime64[s]").astype(int)
                out.append(_dt.datetime.utcfromtimestamp(int(ts)).strftime(fmt))
        return Series(Column.from_data(out, STRING), name=s.name, index=s.index)
