"""CSV input/output with type inference."""

from __future__ import annotations

import csv
import io as _io
from typing import Any, Iterable

from .column import Column
from .datetimes import parse_datetime_scalar
from .dtypes import DATETIME, FLOAT64, INT64, STRING
from .frame import DataFrame

__all__ = ["read_csv", "to_csv"]

_MISSING = {"", "na", "n/a", "nan", "null", "none", "-"}


def _infer_cell(text: str) -> Any:
    """Parse one CSV cell into int/float/str or None (missing)."""
    stripped = text.strip()
    if stripped.lower() in _MISSING:
        return None
    try:
        return int(stripped)
    except ValueError:
        pass
    # float() also accepts words like "inf"/"infinity"; require a digit so
    # such words stay strings.
    if any(ch.isdigit() for ch in stripped):
        try:
            return float(stripped)
        except ValueError:
            pass
    return stripped


def _build_column(cells: list[Any], parse_dates: bool) -> Column:
    saw_str = any(isinstance(c, str) for c in cells if c is not None)
    if saw_str:
        as_str = [None if c is None else str(c) for c in cells]
        col = Column.from_data(as_str, STRING)
        if parse_dates:
            non_missing = [c for c in as_str if c is not None]
            if non_missing and all(
                parse_datetime_scalar(c) is not None for c in non_missing[:50]
            ):
                parsed = col.astype(DATETIME)
                # Only accept the parse when it did not create new missing.
                if parsed.null_count() == col.null_count():
                    return parsed
        return col
    saw_float = any(isinstance(c, float) for c in cells if c is not None)
    has_missing = any(c is None for c in cells)
    if saw_float or has_missing:
        return Column.from_data(cells, FLOAT64)
    return Column.from_data(cells, INT64)


def read_csv(
    path_or_buffer: Any,
    delimiter: str = ",",
    parse_dates: bool = True,
    frame_cls: type[DataFrame] | None = None,
) -> DataFrame:
    """Load a CSV file (path, file object, or string buffer) into a frame.

    Numeric and datetime types are inferred per column; cells matching common
    missing markers ("", "NA", "NaN", ...) become missing values.
    """
    if hasattr(path_or_buffer, "read"):
        handle = path_or_buffer
        close = False
    else:
        handle = open(path_or_buffer, "r", newline="", encoding="utf-8")
        close = True
    try:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError("empty CSV input") from None
        names = _dedupe([h.strip() for h in header])
        raw: list[list[Any]] = [[] for _ in names]
        for row in reader:
            if not row:
                continue
            for j in range(len(names)):
                cell = row[j] if j < len(row) else ""
                raw[j].append(_infer_cell(cell))
    finally:
        if close:
            handle.close()

    data = {
        name: _build_column(cells, parse_dates) for name, cells in zip(names, raw)
    }
    cls = frame_cls or DataFrame
    return cls(data)


def _dedupe(names: Iterable[str]) -> list[str]:
    seen: dict[str, int] = {}
    out = []
    for name in names:
        if name in seen:
            seen[name] += 1
            out.append(f"{name}.{seen[name]}")
        else:
            seen[name] = 0
            out.append(name)
    return out


def to_csv(frame: DataFrame, path: Any, delimiter: str = ",") -> None:
    """Write a frame to CSV; missing values are written as empty cells."""
    if hasattr(path, "write"):
        handle = path
        close = False
    else:
        handle = open(path, "w", newline="", encoding="utf-8")
        close = True
    try:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(frame.columns)
        cols = [frame.column(c) for c in frame.columns]
        for i in range(len(frame)):
            row = []
            for col in cols:
                v = col[i]
                row.append("" if v is None else v)
            writer.writerow(row)
    finally:
        if close:
            handle.close()


def read_csv_string(text: str, **kwargs: Any) -> DataFrame:
    """Convenience: parse CSV from an in-memory string."""
    return read_csv(_io.StringIO(text), **kwargs)
