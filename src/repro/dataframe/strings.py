"""The ``.str`` accessor for string Series."""

from __future__ import annotations

import re
from typing import Any, Callable

from .column import Column
from .dtypes import BOOL, INT64, STRING
from .series import Series

__all__ = ["StringAccessor"]


class StringAccessor:
    """Vectorized string methods; missing values propagate as missing."""

    def __init__(self, series: Series) -> None:
        self._series = series

    def _map(self, fn: Callable[[str], Any], dtype: Any = STRING) -> Series:
        s = self._series
        out = [None if v is None else fn(v) for v in s.column]
        return Series(
            Column.from_data(out, dtype), name=s.name, index=s.index
        )

    def lower(self) -> Series:
        return self._map(str.lower)

    def upper(self) -> Series:
        return self._map(str.upper)

    def title(self) -> Series:
        return self._map(str.title)

    def strip(self) -> Series:
        return self._map(str.strip)

    def len(self) -> Series:
        return self._map(len, INT64)

    def contains(self, pattern: str, regex: bool = False, case: bool = True) -> Series:
        if regex:
            flags = 0 if case else re.IGNORECASE
            compiled = re.compile(pattern, flags)
            return self._map(lambda v: compiled.search(v) is not None, BOOL)
        if case:
            return self._map(lambda v: pattern in v, BOOL)
        low = pattern.lower()
        return self._map(lambda v: low in v.lower(), BOOL)

    def startswith(self, prefix: str) -> Series:
        return self._map(lambda v: v.startswith(prefix), BOOL)

    def endswith(self, suffix: str) -> Series:
        return self._map(lambda v: v.endswith(suffix), BOOL)

    def replace(self, old: str, new: str, regex: bool = False) -> Series:
        if regex:
            compiled = re.compile(old)
            return self._map(lambda v: compiled.sub(new, v))
        return self._map(lambda v: v.replace(old, new))

    def slice(self, start: int | None = None, stop: int | None = None) -> Series:
        return self._map(lambda v: v[start:stop])

    def split(self, sep: str, n: int = -1) -> Series:
        # Stored as string-joined lists are not supported; return first piece
        # lists as python objects would break the dtype lattice, so expose
        # ``get`` for element access instead.
        return self._map(lambda v: v.split(sep, n) if n >= 0 else v.split(sep), STRING)

    def get(self, sep: str, i: int) -> Series:
        """Split on ``sep`` and take piece ``i`` (missing if out of range)."""

        def pick(v: str) -> str | None:
            parts = v.split(sep)
            return parts[i] if -len(parts) <= i < len(parts) else None

        return self._map(pick)

    def zfill(self, width: int) -> Series:
        return self._map(lambda v: v.zfill(width))
