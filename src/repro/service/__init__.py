"""The always-on recommendation service (multi-session server mode).

Turns the library into a server: sessions isolate analysts (own frame,
history, frozen config overlay), a background engine precomputes
recommendation passes on every mutation so results are ready *before* the
analyst looks, a versioned byte-budgeted store makes the read path a
dictionary lookup, and a stdlib HTTP JSON API exposes the whole thing.

Quickstart (in-process)::

    from repro.service import SessionManager

    manager = SessionManager()
    session = manager.create(frame, overrides={"top_k": 5})
    session.frame["derived"] = session.frame["a"] * 2   # triggers precompute
    manager.engine.wait_idle()
    response = session.recommendations()                # store hit: no executor
    assert response["freshness"]["origin"] == "precompute"

Quickstart (HTTP)::

    PYTHONPATH=src python -m repro.service.http_api --port 8080
    curl -X POST localhost:8080/sessions -d '{"dataset": "hpi"}'
    curl localhost:8080/sessions/<id>/recommendations
    curl localhost:8080/healthz

Scaling out: ``--shards N`` (or ``config.service_shards``) serves the
same HTTP surface from N worker *processes*, sessions routed by a
consistent hash of the id; ``--snapshot-dir`` (or
``config.service_snapshot_dir``) persists per-session snapshots so
restarted workers come back warm.  See :mod:`repro.service.supervisor`
and :mod:`repro.service.persist`.
"""

from .http_api import ServiceServer, make_server
from .persist import SnapshotStore
from .precompute import PrecomputeEngine, QueueSaturated
from .session import Session, SessionManager, serialize_recommendations
from .shard import ShardService, WorkerUnreachable, shard_for
from .store import ResultStore
from .supervisor import Supervisor

__all__ = [
    "PrecomputeEngine",
    "QueueSaturated",
    "ResultStore",
    "ServiceServer",
    "Session",
    "SessionManager",
    "ShardService",
    "SnapshotStore",
    "Supervisor",
    "WorkerUnreachable",
    "make_server",
    "serialize_recommendations",
    "shard_for",
]
