"""The always-on recommendation service (multi-session server mode).

Turns the library into a server: sessions isolate analysts (own frame,
history, frozen config overlay), a background engine precomputes
recommendation passes on every mutation so results are ready *before* the
analyst looks, a versioned byte-budgeted store makes the read path a
dictionary lookup, and a stdlib HTTP JSON API exposes the whole thing.

Quickstart (in-process)::

    from repro.service import SessionManager

    manager = SessionManager()
    session = manager.create(frame, overrides={"top_k": 5})
    session.frame["derived"] = session.frame["a"] * 2   # triggers precompute
    manager.engine.wait_idle()
    response = session.recommendations()                # store hit: no executor
    assert response["freshness"]["origin"] == "precompute"

Quickstart (HTTP)::

    PYTHONPATH=src python -m repro.service.http_api --port 8080
    curl -X POST localhost:8080/sessions -d '{"dataset": "hpi"}'
    curl localhost:8080/sessions/<id>/recommendations
    curl localhost:8080/healthz
"""

from .http_api import ServiceServer, make_server
from .precompute import PrecomputeEngine, QueueSaturated
from .session import Session, SessionManager, serialize_recommendations
from .store import ResultStore

__all__ = [
    "PrecomputeEngine",
    "QueueSaturated",
    "ResultStore",
    "ServiceServer",
    "Session",
    "SessionManager",
    "make_server",
    "serialize_recommendations",
]
