"""Supervisor for the sharded multi-process service tier.

The parent half of the shard architecture (the worker half lives in
:mod:`repro.service.shard`): spawns N worker processes, routes every
session-scoped request to the worker that owns the session's shard
(:func:`~repro.service.shard.shard_for` on the session id), and restarts
crashed workers — which then recover their shard warm from the snapshot
directory.

Transport is one duplex ``multiprocessing`` pipe per worker carrying
length-prefixed JSON frames (``send_bytes``/``recv_bytes``).  Each
:class:`WorkerHandle` multiplexes concurrent HTTP handler threads over
its single pipe: requests carry an id, a daemon reader thread matches
responses back to waiting threads, and a send lock keeps frames whole.
A worker that does not answer within ``config.service_rpc_timeout_s``
(or whose pipe reports EOF) surfaces as
:class:`~repro.service.shard.WorkerUnreachable` — never a hang — which
the HTTP layer maps to 503.  ``/healthz`` probes every worker under a
short cap (``min(2.0, config.service_rpc_timeout_s)``) so one dead
worker delays the whole aggregation by at most that cap and is reported
as a ``worker_unreachable`` stanza instead of an error.

Workers are spawned (never forked): the supervisor process carries pool
threads and precompute timers that must not be duplicated into children.
Each worker starts from the supervisor's config snapshot with
``action_pool_workers`` divided across workers so N action pools do not
oversubscribe the host.

The supervisor deliberately does *not* hold any session state: the
session id is assigned here (before routing — the id determines the
shard) and everything else lives in the owning worker, so a supervisor
restart loses nothing that the workers' snapshot directories cannot
restore.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
import uuid
from typing import Any

from ..core import telemetry
from ..core.config import config
from . import metrics as service_metrics
from .shard import (
    WorkerUnreachable,
    decode_frame,
    raise_error,
    shard_for,
    worker_main,
)

__all__ = ["Supervisor", "WorkerHandle"]


class _Waiter:
    __slots__ = ("event", "response")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: dict[str, Any] | None = None


class WorkerHandle:
    """One worker process plus the RPC multiplexer over its pipe."""

    def __init__(
        self, shard: int, process: "multiprocessing.process.BaseProcess", conn: Any
    ) -> None:
        self.shard = shard
        self.process = process
        self.conn = conn
        self._lock = threading.Lock()
        self._pending: dict[int, _Waiter] = {}  # guarded-by: _lock
        self._next_id = 0  # guarded-by: _lock
        self._dead = False  # guarded-by: _lock
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"lux-shard-{shard}-reader",
            daemon=True,
        )
        self._reader.start()

    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        params: dict[str, Any] | None = None,
        timeout: float | None = None,
    ) -> Any:
        """Send one RPC and wait for its matched response.

        Raises :class:`WorkerUnreachable` when the worker is dead or the
        timeout (default ``config.service_rpc_timeout_s``) elapses —
        callers never block indefinitely on a crashed worker.  Encoded
        worker errors are re-raised as their original exception types
        (see :func:`~repro.service.shard.raise_error`).
        """
        if timeout is None:
            timeout = float(config.service_rpc_timeout_s)
        waiter = _Waiter()
        started = time.perf_counter()
        with telemetry.span(
            "rpc.request", method=method, shard=self.shard
        ) as rpc_span:
            if params and params.get("session"):
                rpc_span.attrs["session"] = str(params["session"])
            request: dict[str, Any] = {
                "id": 0,
                "method": method,
                "params": params or {},
                # Propagated inside the frame so worker-side spans stitch
                # to this request's trace.
                "trace": {
                    "id": rpc_span.trace_id,
                    "span": rpc_span.span_id,
                    "sampled": rpc_span.sampled,
                },
            }
            with self._lock:
                if self._dead:
                    raise WorkerUnreachable(f"shard {self.shard} worker is down")
                self._next_id += 1
                request_id = self._next_id
                request["id"] = request_id
                self._pending[request_id] = waiter
                frame = json.dumps(request, separators=(",", ":")).encode("utf-8")
                try:
                    # Under the same lock as the id allocation: pipe frames
                    # from concurrent handler threads must not interleave.
                    self.conn.send_bytes(frame)
                except (OSError, ValueError):
                    self._pending.pop(request_id, None)
                    self._dead = True
                    raise WorkerUnreachable(
                        f"shard {self.shard} worker pipe is closed"
                    ) from None
            try:
                answered = waiter.event.wait(timeout)
            finally:
                telemetry.histogram(
                    "lux_rpc_client_seconds",
                    "supervisor-side RPC round trip by method and shard",
                    ("method", "shard"),
                ).observe(time.perf_counter() - started, (method, self.shard))
            if not answered:
                with self._lock:
                    self._pending.pop(request_id, None)
                telemetry.counter(
                    "lux_rpc_errors_total",
                    "RPCs that failed or timed out, by shard",
                    ("shard",),
                ).inc(labels=(self.shard,))
                raise WorkerUnreachable(
                    f"shard {self.shard} did not answer {method!r} "
                    f"within {timeout:.1f}s"
                )
            response = waiter.response or {}
            if response.get("ok"):
                return response.get("result")
            telemetry.counter(
                "lux_rpc_errors_total",
                "RPCs that failed or timed out, by shard",
                ("shard",),
            ).inc(labels=(self.shard,))
            raise_error(response.get("error") or {})

    def _read_loop(self) -> None:
        while True:
            try:
                raw = self.conn.recv_bytes()
            except (EOFError, OSError):
                break  # worker exited (or was killed)
            try:
                response = decode_frame(raw)
            except ValueError:
                continue
            with self._lock:
                waiter = self._pending.pop(response.get("id"), None)
            if waiter is not None:
                waiter.response = response
                waiter.event.set()
        self._mark_dead()

    def _mark_dead(self) -> None:
        """Fail every in-flight request instead of leaving threads hung."""
        with self._lock:
            self._dead = True
            pending = list(self._pending.values())
            self._pending.clear()
        for waiter in pending:
            waiter.response = {
                "ok": False,
                "error": {
                    "kind": "unreachable",
                    "message": f"shard {self.shard} worker died mid-request",
                },
            }
            waiter.event.set()

    # ------------------------------------------------------------------
    def alive(self) -> bool:
        with self._lock:
            dead = self._dead
        return not dead and self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker (fault injection: no flush, no goodbye)."""
        self.process.kill()
        self.process.join(timeout=10)
        self._close()

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: the worker flushes snapshots before exit."""
        try:
            self.request("shutdown", timeout=timeout)
        except (WorkerUnreachable, RuntimeError):
            pass  # already dead (or wedged — terminate below)
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=10)
        self._close()

    def _close(self) -> None:
        self._mark_dead()
        try:
            self.conn.close()
        except OSError:
            pass


class Supervisor:
    """Routes sessions across N spawned workers; restarts the crashed."""

    def __init__(
        self,
        n_workers: int | None = None,
        snapshot_dir: str | None = None,
    ) -> None:
        if n_workers is None:
            n_workers = int(config.service_shards) or 2
        self.n_workers = max(1, int(n_workers))
        if snapshot_dir is None:
            snapshot_dir = str(config.service_snapshot_dir) or None
        self.snapshot_dir = snapshot_dir
        self._ctx = multiprocessing.get_context("spawn")
        base = config.snapshot()
        # Divide the host's cores across the workers' action pools: N
        # workers each sizing their pool to the full host would
        # oversubscribe it N-fold.
        base["action_pool_workers"] = max(
            2, (os.cpu_count() or 1) // self.n_workers
        )
        base["service_shards"] = 0  # workers are single-process inside
        base["service_snapshot_dir"] = snapshot_dir or ""
        self._base_config = base
        self._lock = threading.Lock()
        self._workers: list[WorkerHandle] = [  # guarded-by: _lock
            self._spawn(i) for i in range(self.n_workers)
        ]

    # ------------------------------------------------------------------
    def _spawn(self, shard: int) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                shard,
                self.n_workers,
                self._base_config,
                self.snapshot_dir,
            ),
            name=f"lux-shard-{shard}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the child holds its own copy
        return WorkerHandle(shard, process, parent_conn)

    def _worker_for(self, session_id: str) -> WorkerHandle:
        with self._lock:
            return self._workers[shard_for(session_id, self.n_workers)]

    def _handles(self) -> list[WorkerHandle]:
        with self._lock:
            return list(self._workers)

    def worker(self, shard: int) -> WorkerHandle:
        with self._lock:
            return self._workers[shard]

    # ------------------------------------------------------------------
    # Session API (mirrors the single-process backend)
    # ------------------------------------------------------------------
    def create_session(self, body: dict[str, Any]) -> dict[str, Any]:
        # The id is assigned here, before routing: it determines the
        # shard, so the worker must not invent its own.
        body = dict(body)
        if not body.get("session_id"):
            body["session_id"] = uuid.uuid4().hex[:12]
        return self._worker_for(body["session_id"]).request("create", body)

    def session_ids(self) -> list[str]:
        ids: list[str] = []
        for handle in self._handles():
            try:
                ids.extend(handle.request("list")["sessions"])
            except WorkerUnreachable:
                continue  # degraded listing beats a 503 on /sessions
        return sorted(ids)

    def info(self, session_id: str) -> dict[str, Any]:
        return self._worker_for(session_id).request(
            "info", {"session": session_id}
        )

    def close_session(self, session_id: str) -> dict[str, Any]:
        return self._worker_for(session_id).request(
            "close", {"session": session_id}
        )

    def set_intent(self, session_id: str, intent: Any) -> dict[str, Any]:
        return self._worker_for(session_id).request(
            "intent", {"session": session_id, "intent": intent}
        )

    def mutate(self, session_id: str, body: dict[str, Any]) -> dict[str, Any]:
        params = {**body, "session": session_id}
        return self._worker_for(session_id).request("mutate", params)

    def recommendations(
        self, session_id: str, action: str | None = None, v1: bool = False
    ) -> str:
        """The recommendation payload as a pre-serialized JSON string.

        ``v1`` rides the RPC so the worker builds the typed provenance
        envelope itself — the supervisor forwards the bytes untouched, so
        the /v1/ wire shape is identical in-process and behind the shard
        tier.
        """
        result = self._worker_for(session_id).request(
            "recommendations",
            {"session": session_id, "action": action, "v1": v1},
        )
        return result["payload_json"]

    def wait_idle(self, timeout: float = 30.0) -> bool:
        return all(
            handle.request("wait_idle", {"timeout": timeout}, timeout=timeout + 5.0)[
                "idle"
            ]
            for handle in self._handles()
        )

    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        """Aggregate liveness without ever blocking on a dead worker.

        Each worker is probed under a short timeout; one that does not
        answer contributes a ``worker_unreachable`` stanza and flips the
        aggregate status to ``degraded``.  The top-level ``precompute``
        / ``store`` / ``pool.queues`` / ``sessions`` aggregates keep the
        shape the load harness's monitor (and operators' dashboards)
        already read on single-process deployments.
        """
        cap = min(2.0, float(config.service_rpc_timeout_s))
        status = "ok"
        workers: list[dict[str, Any]] = []
        backlog = 0
        store_bytes = 0
        sessions = 0
        queues: dict[str, dict[str, int]] = {}
        for handle in self._handles():
            try:
                stanza = handle.request("healthz", timeout=cap)
            except (WorkerUnreachable, RuntimeError) as exc:
                status = "degraded"
                workers.append(
                    {
                        "status": "worker_unreachable",
                        "shard": handle.shard,
                        "error": str(exc),
                    }
                )
                continue
            workers.append(stanza)
            backlog += stanza.get("precompute", {}).get("backlog_depth", 0)
            store_bytes += stanza.get("store", {}).get("bytes", 0)
            sessions += stanza.get("sessions", 0)
            for band, tags in (stanza.get("pool", {}).get("queues") or {}).items():
                merged = queues.setdefault(band, {})
                for tag, depth in (tags or {}).items():
                    merged[tag] = merged.get(tag, 0) + int(depth)
        return {
            "status": status,
            "shards": self.n_workers,
            "sessions": sessions,
            "pool": {"queues": queues},
            "precompute": {"backlog_depth": backlog},
            "store": {"bytes": store_bytes},
            "workers": workers,
            # Router-side latency view only (per-worker breakdowns live in
            # each worker stanza's own "telemetry" key).
            "telemetry": service_metrics.summaries(),
        }

    # ------------------------------------------------------------------
    def metrics(self) -> dict[str, Any]:
        """Merged metrics snapshot: every worker plus the supervisor.

        Mirrors :meth:`healthz`'s probe discipline — a bounded per-worker
        timeout, dead shards reported (``lux_worker_up`` 0) instead of
        failing the scrape.  The merge is exact bucket-wise addition
        because all processes share histogram bounds (same base config).
        """
        cap = min(2.0, float(config.service_rpc_timeout_s))
        snapshots: list[dict[str, Any]] = [service_metrics.collect_process()]
        up: dict[tuple[str, ...], float] = {}
        for handle in self._handles():
            try:
                result = handle.request("metrics", timeout=cap)
            except (WorkerUnreachable, RuntimeError):
                up[(str(handle.shard),)] = 0.0
                continue
            up[(str(handle.shard),)] = 1.0
            snapshots.append(result.get("snapshot") or {})
        merged = service_metrics.merge_snapshots(snapshots)
        merged["lux_worker_up"] = service_metrics.static_gauge(
            ("shard",), up, help="worker liveness as seen by the supervisor"
        )
        return merged

    def trace(self, session_id: str, limit: int = 100) -> dict[str, Any]:
        """Recent spans for one session: owning worker + router-side spans.

        The worker validates the session exists (404 otherwise); the
        supervisor contributes its own HTTP/RPC spans tagged with the
        session id, sorted into one timeline with the worker's.
        """
        result = self._worker_for(session_id).request(
            "trace", {"session": session_id, "limit": limit}
        )
        spans = list(result.get("spans") or [])
        spans.extend(telemetry.spans(session_id=session_id, limit=limit))
        spans.sort(key=lambda s: s.get("start", 0.0))
        if limit >= 0:
            spans = spans[-limit:]
        return {"session": session_id, "spans": spans}

    # ------------------------------------------------------------------
    # Lifecycle / fault injection
    # ------------------------------------------------------------------
    def kill_worker(self, shard: int) -> None:
        """SIGKILL one worker mid-flight (the load harness's fault hook)."""
        self.worker(shard).kill()

    def restart_worker(self, shard: int) -> WorkerHandle:
        """Replace a (dead or live) worker; the new one restores its shard
        warm from the snapshot directory before serving."""
        with self._lock:
            old = self._workers[shard]
        if old.process.is_alive():
            old.kill()
        else:
            old._close()
        handle = self._spawn(shard)
        with self._lock:
            self._workers[shard] = handle
        return handle

    def stop(self) -> None:
        """Graceful top-down shutdown: every worker flushes and exits."""
        for handle in self._handles():
            handle.stop()

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.stop()
