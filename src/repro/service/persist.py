"""Per-session snapshots: warm state that survives a process restart.

A :class:`SnapshotStore` serializes everything a worker needs to resume a
session exactly where it left off — the frame's columns (numpy arrays +
validity masks), its intent clauses, its operation history, the explicit
data-type overrides, the frozen config overrides, and the
:class:`~repro.service.store.ResultStore` payloads of the last completed
pass — into one directory per session::

    <root>/<session_id>/
        frame-<data_version>.npz            # v::<col> / m::<col> arrays
        results-<data_version>-<epoch>.json # manifest + per-action records
        snapshot.json                       # the commit record, written last

Every file is version-stamped with the ``(data_version, intent_epoch)``
pair it was captured at, and every write goes through a same-directory
temp file + ``os.replace`` — so a crash mid-save leaves the previous
snapshot fully readable, never a torn one.  ``snapshot.json`` names the
exact content files it commits; anything else in the directory is a
leftover and is pruned after the commit.  An intent-only change (data
version unchanged) reuses the existing frame file instead of rewriting
the column data.

Restores are *lazy about payloads*: :meth:`SnapshotStore.restore_session`
rebuilds the frame and session eagerly (cheap — one ``np.load``) but only
notes where the results file lives; the session rehydrates it into the
live ResultStore on its first read at the matching version
(:meth:`~repro.service.session.Session._hydrate_results`), so restoring a
thousand sessions does not deserialize a thousand payload sets up front.

Concurrency: per-session file operations are serialized by the session's
own lock (``save`` takes it; the engine already holds it when saving
after a publish — the lock is reentrant).  The store's internal lock only
guards the rate-limit map and counters.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from ..core.clause import Clause
from ..core.config import config
from ..core.errors import LuxWarning
from ..core.frame import LuxDataFrame
from ..core.history import History
from ..dataframe.column import Column
from ..dataframe.dtypes import lookup as lookup_dtype
from ..dataframe.index import Index, RangeIndex

if TYPE_CHECKING:  # pragma: no cover
    from .session import Session
    from .store import ResultStore

__all__ = ["SnapshotStore", "clause_to_payload", "clause_from_payload"]

#: The commit record's filename inside each session directory.
SNAPSHOT_FILE = "snapshot.json"

#: Bumped when the on-disk layout changes incompatibly; a restore of a
#: different schema is skipped (never guessed at).
SCHEMA = 1


# ----------------------------------------------------------------------
# Clause round-trip
# ----------------------------------------------------------------------
def clause_to_payload(clause: Clause) -> dict[str, Any]:
    """One intent clause as a JSON-safe dict (exact field dump)."""
    return {
        "attribute": clause.attribute,
        "value": clause.value,
        "filter_op": clause.filter_op,
        "channel": clause.channel,
        "aggregation": clause.aggregation,
        "aggregation_specified": clause.aggregation_specified,
        "bin_size": clause.bin_size,
        "data_type": clause.data_type,
        "sort": clause.sort,
        "description": clause.description,
    }


def clause_from_payload(payload: Mapping[str, Any]) -> Clause:
    """Rebuild a clause field-by-field (like ``Clause.copy``), bypassing
    ``__init__`` so ``aggregation_specified`` survives the round trip —
    the constructor would re-derive it from the (already normalized)
    aggregation value."""
    out = Clause.__new__(Clause)
    out.attribute = payload["attribute"]
    out.value = payload["value"]
    out.filter_op = payload["filter_op"]
    out.channel = payload["channel"]
    out.aggregation = payload["aggregation"]
    out.aggregation_specified = bool(payload["aggregation_specified"])
    out.bin_size = int(payload["bin_size"])
    out.data_type = payload["data_type"]
    out.sort = payload["sort"]
    out.description = payload["description"]
    return out


# ----------------------------------------------------------------------
# Frame round-trip
# ----------------------------------------------------------------------
def _frame_arrays(frame: LuxDataFrame) -> dict[str, np.ndarray]:
    """The npz key map: ``v::<col>`` values, ``m::<col>`` masks."""
    arrays: dict[str, np.ndarray] = {}
    for name in frame.columns:
        col = frame._data[name]
        arrays[f"v::{name}"] = col.values
        arrays[f"m::{name}"] = col.mask
    index = frame._index
    if index is not None and not index.is_default:
        arrays["iv::index"] = index.column.values
        arrays["im::index"] = index.column.mask
    return arrays


def _index_meta(frame: LuxDataFrame) -> dict[str, Any]:
    index = frame._index
    if index is None or index.is_default:
        return {"kind": "range", "name": getattr(index, "name", None)}
    return {"kind": "labelled", "name": index.name,
            "dtype": index.column.dtype.name}


def _rebuild_frame(meta: dict[str, Any], arrays: Mapping[str, np.ndarray]) -> LuxDataFrame:
    """A LuxDataFrame with the snapshot's exact columns and lux state.

    Construction bypasses ``__init__`` (which would re-coerce data and
    reset versions) and the intent setter (which would bump the epoch):
    state is attached directly, the way ``DataFrame._wrap`` builds
    derived frames.
    """
    data: dict[str, Column] = {}
    for colmeta in meta["columns"]:
        name = colmeta["name"]
        dtype = lookup_dtype(colmeta["dtype"])
        values = np.asarray(arrays[f"v::{name}"])
        mask = np.asarray(arrays[f"m::{name}"], dtype=bool)
        data[name] = Column(values, mask, dtype)

    index_meta = meta["index"]
    if index_meta["kind"] == "range":
        index: Index = RangeIndex(int(meta["rows"]), name=index_meta.get("name"))
    else:
        index = Index(
            Column(
                np.asarray(arrays["iv::index"]),
                np.asarray(arrays["im::index"], dtype=bool),
                lookup_dtype(index_meta["dtype"]),
            ),
            name=index_meta.get("name"),
        )

    frame = LuxDataFrame.__new__(LuxDataFrame)
    frame._setup_lux_state()
    object.__setattr__(frame, "_data", data)
    object.__setattr__(frame, "_column_order", [c["name"] for c in meta["columns"]])
    object.__setattr__(frame, "_index", index)
    frame._intent_clauses = [clause_from_payload(c) for c in meta["intent"]]
    frame._history = History.from_payload(meta["history"])
    frame._restored_type_overrides = dict(meta.get("type_overrides") or {})
    dv, epoch = meta["version"]
    frame._data_version = int(dv)
    frame._intent_epoch = int(epoch)
    return frame


def _atomic_write(path: Path, data: bytes) -> None:
    """Same-directory temp + ``os.replace``: readers see old or new, never torn."""
    tmp = path.with_name(f".tmp-{path.name}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


class SnapshotStore:
    """Directory of per-session snapshots with atomic, versioned commits."""

    def __init__(self, root: str | Path, interval_s: float | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._interval_override = interval_s
        self._lock = threading.Lock()
        self._last_saved: dict[str, float] = {}  # guarded-by: _lock
        self._counters = {  # guarded-by: _lock
            "saved": 0,
            "skipped_interval": 0,
            "frame_rewrites": 0,
            "restored": 0,
            "restore_failed": 0,
            "dropped": 0,
            "save_failed": 0,
        }

    def interval_s(self) -> float:
        if self._interval_override is not None:
            return self._interval_override
        return max(float(config.service_snapshot_interval_s), 0.0)

    def _bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] += by

    def session_dir(self, session_id: str) -> Path:
        return self.root / session_id

    def ids(self) -> list[str]:
        """Session ids with a committed snapshot on disk."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if (entry / SNAPSHOT_FILE).is_file()
        )

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def save(
        self,
        session: "Session",
        results: Mapping[str, dict[str, Any]] | None = None,
        manifest: list[str] | None = None,
        force: bool = False,
    ) -> bool:
        """Persist the session's current state; True when a commit happened.

        Rate-limited by ``config.service_snapshot_interval_s`` unless
        ``force`` (shutdown flushes force).  ``results`` are the stored
        records of the pass at the session's current version (fetched
        from the live store when omitted); a session with no stored pass
        still snapshots its frame — recovery is then warm-frame /
        cold-results, which beats rebuilding from nothing.
        """
        now = time.monotonic()
        interval = self.interval_s()
        if not force and interval > 0:
            with self._lock:
                last = self._last_saved.get(session.id)
                if last is not None and now - last < interval:
                    self._counters["skipped_interval"] += 1
                    return False
        try:
            with session.lock:
                self._save_locked(session, results, manifest)
        except Exception as exc:
            self._bump("save_failed")
            warnings.warn(f"snapshot save failed for {session.id}: {exc}", LuxWarning)
            return False
        with self._lock:
            self._last_saved[session.id] = now
            self._counters["saved"] += 1
        return True

    def _save_locked(
        self,
        session: "Session",
        results: Mapping[str, dict[str, Any]] | None,
        manifest: list[str] | None,
    ) -> None:
        frame = session.frame
        version = session.version
        dv, epoch = version
        if results is None and session.store is not None:
            results = session.store.get_pass(session.id, version)
        if results is not None and manifest is None:
            manifest = list(results)

        directory = self.session_dir(session.id)
        directory.mkdir(parents=True, exist_ok=True)

        frame_file = f"frame-{dv}.npz"
        frame_path = directory / frame_file
        if not frame_path.is_file():
            # Intent-only versions reuse the frame file already committed
            # at this data version; only a data change rewrites columns.
            tmp = directory / f".tmp-{frame_file}"
            with open(tmp, "wb") as handle:
                np.savez(handle, **_frame_arrays(frame))
            os.replace(tmp, frame_path)
            self._bump("frame_rewrites")

        results_file = None
        if results is not None:
            results_file = f"results-{dv}-{epoch}.json"
            _atomic_write(
                directory / results_file,
                json.dumps(
                    {"manifest": manifest, "records": dict(results)},
                    separators=(",", ":"),
                ).encode("utf-8"),
            )

        if frame._metadata_cache is not None:
            type_overrides = dict(getattr(frame._metadata_cache, "_overrides", {}))
        else:
            type_overrides = dict(getattr(frame, "_restored_type_overrides", {}) or {})

        record = {
            "schema": SCHEMA,
            "session": session.id,
            "version": [dv, epoch],
            "saved_at": time.time(),
            "created_at": session.created_at,
            "overrides": dict(session.overrides),
            "intent": [clause_to_payload(c) for c in frame._intent_clauses],
            "history": frame._history.to_payload(),
            "type_overrides": type_overrides,
            "rows": len(frame),
            "columns": [
                {"name": name, "dtype": frame._data[name].dtype.name}
                for name in frame.columns
            ],
            "index": _index_meta(frame),
            "frame_file": frame_file,
            "results_file": results_file,
        }
        _atomic_write(
            directory / SNAPSHOT_FILE,
            json.dumps(record, separators=(",", ":")).encode("utf-8"),
        )
        self._prune(directory, keep={frame_file, results_file, SNAPSHOT_FILE})

    @staticmethod
    def _prune(directory: Path, keep: set[str | None]) -> None:
        """Unlink superseded content files after the commit record landed."""
        for entry in directory.iterdir():
            if entry.name not in keep:
                try:
                    entry.unlink()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    def restore_session(
        self, session_id: str, store: "ResultStore | None" = None
    ) -> "Session | None":
        """Rebuild one session from its committed snapshot, or None.

        Corrupt or incompatible snapshots are skipped with a warning —
        recovery of the healthy majority must never be blocked by one bad
        directory.  Result payloads are NOT loaded here: the returned
        session carries a rehydration marker and loads them from disk on
        its first read at the snapshot version.
        """
        from .session import Session

        directory = self.session_dir(session_id)
        try:
            meta = json.loads((directory / SNAPSHOT_FILE).read_text("utf-8"))
            if meta.get("schema") != SCHEMA:
                raise ValueError(f"unsupported snapshot schema {meta.get('schema')!r}")
            with np.load(directory / meta["frame_file"], allow_pickle=True) as npz:
                frame = _rebuild_frame(meta, npz)
            session = Session(
                meta["session"], frame, overrides=meta["overrides"], store=store
            )
            session.created_at = float(meta["created_at"])
            if meta.get("results_file"):
                session._pending_results = (
                    directory / meta["results_file"],
                    tuple(meta["version"]),
                )
        except Exception as exc:
            self._bump("restore_failed")
            warnings.warn(
                f"snapshot restore failed for {session_id}: {exc}", LuxWarning
            )
            return None
        self._bump("restored")
        return session

    def drop(self, session_id: str) -> bool:
        """Delete a closed session's snapshot directory."""
        directory = self.session_dir(session_id)
        if not directory.is_dir():
            return False
        for entry in directory.iterdir():
            try:
                entry.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        try:
            directory.rmdir()
        except OSError:  # pragma: no cover - a racing save re-created files
            return False
        self._bump("dropped")
        return True

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {"root": str(self.root), "interval_s": self.interval_s(),
                    **self._counters}
