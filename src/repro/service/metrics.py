"""Metrics exposition and cross-process merging for the service tier.

Builds on :mod:`repro.core.telemetry`:

* :func:`collect_process` snapshots this process's registry into a
  JSON-safe dict (what the ``metrics`` shard RPC returns);
* :func:`merge_snapshots` adds snapshots from N workers bucket-wise —
  exact because every process derives identical histogram bounds from
  ``config.telemetry_histogram_buckets`` (merge is associative, tested);
* :func:`render_prometheus` emits Prometheus text exposition v0.0.4;
* :func:`parse_exposition` is the matching reader (used by the load
  bench cross-check and the CI snapshot validator);
* :func:`register_service_gauges` wires live store/cache/engine/session
  gauges for one ``SessionManager`` — callbacks are lock-free attribute
  reads (the ``telemetry-hygiene`` check rule's contract);
* ``python -m repro.service.metrics SNAPSHOT.txt`` validates a scraped
  snapshot (non-empty, parseable) — CI fails on a broken scrape.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core import telemetry
from ..core.executor.cache import computation_cache

__all__ = [
    "collect_process",
    "merge_snapshots",
    "render_prometheus",
    "parse_exposition",
    "percentile_from_counts",
    "histogram_summary",
    "summaries",
    "observe_request",
    "register_service_gauges",
    "static_gauge",
]


def collect_process() -> Dict[str, Dict[str, Any]]:
    """Snapshot this process's metrics registry (JSON-safe)."""

    return telemetry.registry().collect()


def static_gauge(
    labelnames: Iterable[str], values: Dict[Tuple[str, ...], float], help: str = ""
) -> Dict[str, Any]:
    """A snapshot-shaped gauge entry built from literal values.

    Used by the supervisor to inject per-shard liveness (``lux_worker_up``)
    into a merged snapshot without registering process-local callbacks.
    """

    return {
        "type": "gauge",
        "help": help,
        "labels": list(labelnames),
        "values": {"\x1f".join(k): float(v) for k, v in values.items()},
    }


def merge_snapshots(snapshots: Iterable[Dict[str, Dict[str, Any]]]) -> Dict[str, Dict[str, Any]]:
    """Add snapshots element-wise; associative and commutative.

    Counters and gauges sum per label set.  Histograms sum per-bucket
    counts, total counts, and sums — valid only when bounds agree, which
    holds by construction (workers inherit the bucket knob from the base
    config snapshot); a snapshot with mismatched bounds is skipped for
    that metric and surfaced via ``lux_metrics_merge_conflicts``.
    """

    merged: Dict[str, Dict[str, Any]] = {}
    conflicts = 0
    for snap in snapshots:
        if not snap:
            continue
        for name, entry in snap.items():
            base = merged.get(name)
            if base is None:
                merged[name] = {
                    "type": entry["type"],
                    "help": entry.get("help", ""),
                    "labels": list(entry.get("labels", [])),
                    "values": {
                        k: (dict(v) if isinstance(v, dict) else v)
                        for k, v in entry.get("values", {}).items()
                    },
                }
                if "bounds" in entry:
                    merged[name]["bounds"] = list(entry["bounds"])
                continue
            if base["type"] != entry["type"]:
                conflicts += 1
                continue
            if base["type"] == "histogram":
                if list(entry.get("bounds", [])) != base.get("bounds", []):
                    conflicts += 1
                    continue
                for key, row in entry.get("values", {}).items():
                    brow = base["values"].get(key)
                    if brow is None:
                        base["values"][key] = dict(row)
                    else:
                        brow["counts"] = [
                            a + b for a, b in zip(brow["counts"], row["counts"])
                        ]
                        brow["count"] += row["count"]
                        brow["sum"] += row["sum"]
            else:
                for key, value in entry.get("values", {}).items():
                    base["values"][key] = base["values"].get(key, 0.0) + value
    if conflicts:
        merged["lux_metrics_merge_conflicts"] = static_gauge(
            (), {(): float(conflicts)}, help="snapshots dropped during merge"
        )
    return merged


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labelnames: List[str], key: str, extra: Optional[Tuple[str, str]] = None) -> str:
    values = key.split("\x1f") if key else []
    pairs = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, values)
    ]
    if extra is not None:
        pairs.append(f'{extra[0]}="{_escape_label(extra[1])}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_bound(bound: float) -> str:
    text = repr(float(bound))
    return text


def render_prometheus(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Prometheus text exposition (v0.0.4) for a snapshot."""

    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["type"]
        labelnames = list(entry.get("labels", []))
        help_text = entry.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        values = entry.get("values", {})
        if kind == "histogram":
            bounds = entry.get("bounds", [])
            for key in sorted(values):
                row = values[key]
                cumulative = 0
                for bound, count in zip(bounds, row["counts"]):
                    cumulative += count
                    label = _label_str(labelnames, key, ("le", _format_bound(bound)))
                    lines.append(f"{name}_bucket{label} {cumulative}")
                cumulative += row["counts"][len(bounds)] if len(row["counts"]) > len(bounds) else 0
                label = _label_str(labelnames, key, ("le", "+Inf"))
                lines.append(f"{name}_bucket{label} {cumulative}")
                lines.append(f"{name}_sum{_label_str(labelnames, key)} {row['sum']}")
                lines.append(f"{name}_count{_label_str(labelnames, key)} {row['count']}")
        else:
            for key in sorted(values):
                lines.append(f"{name}{_label_str(labelnames, key)} {values[key]}")
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> List[Tuple[str, Dict[str, str], float]]:
    """Parse Prometheus text exposition into ``(name, labels, value)`` samples.

    Raises ``ValueError`` on any malformed non-comment line; the CI
    snapshot validator relies on that strictness.
    """

    samples: List[Tuple[str, Dict[str, str], float]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            label_part, value_part = rest.rsplit("}", 1)
            labels: Dict[str, str] = {}
            if label_part:
                depth_buf = ""
                in_quotes = False
                parts: List[str] = []
                for ch in label_part:
                    if ch == '"' and (not depth_buf or depth_buf[-1] != "\\"):
                        in_quotes = not in_quotes
                    if ch == "," and not in_quotes:
                        parts.append(depth_buf)
                        depth_buf = ""
                    else:
                        depth_buf += ch
                if depth_buf:
                    parts.append(depth_buf)
                for pair in parts:
                    key, _, quoted = pair.partition("=")
                    if not quoted.startswith('"') or not quoted.endswith('"'):
                        raise ValueError(f"malformed label in line: {raw!r}")
                    labels[key.strip()] = (
                        quoted[1:-1]
                        .replace("\\n", "\n")
                        .replace('\\"', '"')
                        .replace("\\\\", "\\")
                    )
        else:
            name, _, value_part = line.partition(" ")
            labels = {}
        value_bits = value_part.strip().split()
        if not name.strip() or not value_bits:
            raise ValueError(f"malformed sample line: {raw!r}")
        samples.append((name.strip(), labels, float(value_bits[0])))
    return samples


def percentile_from_counts(bounds: List[float], counts: List[int], q: float) -> float:
    """Upper-bound percentile estimate from fixed-bucket counts (seconds)."""

    total = sum(counts)
    if total <= 0:
        return 0.0
    target = q * total
    cumulative = 0
    for i, count in enumerate(counts):
        cumulative += count
        if cumulative >= target:
            return bounds[i] if i < len(bounds) else bounds[-1] * 2.0
    return bounds[-1] * 2.0


def histogram_summary(entry: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Per-label ``{count, p50_ms, p95_ms, p99_ms}`` from a histogram entry."""

    bounds = entry.get("bounds", [])
    out: Dict[str, Dict[str, Any]] = {}
    for key, row in entry.get("values", {}).items():
        label = key.replace("\x1f", "/") if key else "all"
        counts = row["counts"]
        out[label] = {
            "count": row["count"],
            "p50_ms": percentile_from_counts(bounds, counts, 0.50) * 1000.0,
            "p95_ms": percentile_from_counts(bounds, counts, 0.95) * 1000.0,
            "p99_ms": percentile_from_counts(bounds, counts, 0.99) * 1000.0,
        }
    return out


_SUMMARY_HISTOGRAMS = {
    "http": "lux_http_request_seconds",
    "rpc_client": "lux_rpc_client_seconds",
    "rpc_handle": "lux_rpc_handle_seconds",
    "precompute_pass": "lux_precompute_pass_seconds",
    "precompute_phase": "lux_precompute_phase_seconds",
}


def summaries(snapshot: Optional[Dict[str, Dict[str, Any]]] = None) -> Dict[str, Any]:
    """Per-route / per-pass latency summaries for ``/healthz``."""

    if snapshot is None:
        snapshot = collect_process()
    out: Dict[str, Any] = {}
    for alias, name in _SUMMARY_HISTOGRAMS.items():
        entry = snapshot.get(name)
        if entry and entry.get("type") == "histogram" and entry.get("values"):
            out[alias] = histogram_summary(entry)
    return out


def observe_request(route: str, method: str, status: int, seconds: float) -> None:
    """Record one HTTP request (called centrally by the HTTP router)."""

    telemetry.counter(
        "lux_http_requests_total",
        "HTTP requests by route, method, and status",
        ("route", "method", "status"),
    ).inc(labels=(route, method, status))
    telemetry.histogram(
        "lux_http_request_seconds",
        "HTTP request latency by route",
        ("route",),
    ).observe(seconds, (route,))


def _slot_total(field: str):
    # Named (not lambda) reader: iterates cache slots without the cache
    # lock; a concurrent resize raises and the gauge skips one scrape.
    def read() -> float:
        total = 0
        for slot in list(computation_cache._slots.values()):
            total += getattr(slot, field)
        return float(total)

    return read


def _dict_reader(mapping: Dict[str, Any], key: str):
    def read() -> float:
        return float(mapping.get(key, 0))

    return read


def register_service_gauges(manager: Any) -> None:
    """Register live gauges for one SessionManager's store/engine/cache.

    Callbacks are lock-free reads of plain counters (ints are torn-free
    under the GIL); re-registration replaces callbacks, so the latest
    manager in a process wins.
    """

    store = manager.store
    engine = manager.engine
    g = telemetry.gauge
    g("lux_store_bytes", "result store resident bytes").set_function(lambda: store._nbytes)
    g("lux_store_bytes_peak", "result store peak bytes").set_function(lambda: store._bytes_peak)
    g("lux_store_entries", "result store entries").set_function(lambda: len(store._entries))
    g("lux_store_hits_total", "result store hits").set_function(lambda: store._hits)
    g("lux_store_misses_total", "result store misses").set_function(lambda: store._misses)
    g("lux_store_evictions_total", "result store evictions").set_function(
        lambda: store._evictions
    )
    g("lux_store_carried_total", "results carried across versions").set_function(
        lambda: store._carried
    )
    g("lux_cache_bytes", "computation cache resident bytes").set_function(
        _slot_total("nbytes")
    )
    g("lux_cache_hits_total", "computation cache hits").set_function(_slot_total("hits"))
    g("lux_cache_misses_total", "computation cache misses").set_function(
        _slot_total("misses")
    )
    g("lux_sessions", "live sessions in this process").set_function(
        lambda: len(manager._sessions)
    )
    passes = telemetry.gauge(
        "lux_precompute_passes_total",
        "precompute passes by outcome",
        ("result",),
    )
    for key in ("completed", "cancelled", "failed", "shed", "deferred", "rejected"):
        passes.set_function(_dict_reader(engine._counters, key), (key,))


def main(argv: Optional[List[str]] = None) -> int:
    """Validate a scraped ``/metrics`` snapshot file (CI gate)."""

    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.service.metrics SNAPSHOT.txt", file=sys.stderr)
        return 2
    try:
        with open(argv[0], "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        print(f"metrics snapshot unreadable: {exc}", file=sys.stderr)
        return 1
    try:
        samples = parse_exposition(text)
    except ValueError as exc:
        print(f"metrics snapshot unparseable: {exc}", file=sys.stderr)
        return 1
    if not samples:
        print("metrics snapshot is empty", file=sys.stderr)
        return 1
    names = sorted({name for name, _, _ in samples})
    print(f"metrics snapshot ok: {len(samples)} samples, {len(names)} series")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
