"""Versioned recommendation result store: the always-on read path.

Holds serialized vega-lite payloads keyed on ``(session, version, action)``
where ``version`` is the frame's ``(_data_version, _intent_epoch)`` pair.
When the background precompute engine wins the race against the analyst's
next look, a read is a dictionary lookup; when it loses (or an entry was
evicted), the caller falls back to a foreground pass and back-fills the
store.

Staleness is impossible by construction, not by invalidation: readers key
their lookup on the frame's *current* version, so entries recorded at any
older version are simply unreachable (the same contract the executor's
computation cache uses).  Old entries age out of the byte-budgeted LRU
instead of being chased by invalidation hooks; closing a session drops its
entries eagerly.

The store is byte-budgeted (``config.service_store_budget_mb``) with exact
accounting — every payload is measured as its serialized JSON byte length
at insertion (payloads are JSON-safe by contract; see
``repro.vis.vegalite.spec_payload``).  Entries whose size alone exceeds
the whole budget are rejected rather than stored: caching one would evict
everything else and then be evicted itself.

A *pass* (all actions computed against one version) is stored atomically:
per-action entries plus a manifest listing the action names, so a
whole-dashboard read can distinguish "pass complete" from "some actions
evicted" and recompute only in the latter case.  Evicting a pass member
also purges the pass's manifest (a manifest naming missing entries would
otherwise dangle forever), and a manifest is only written when every
member it names is resident.

Incremental recomputation adds a third provenance next to ``precompute``
and ``foreground``: :meth:`ResultStore.carry` re-publishes an action's
still-valid payload from the previous version under the new one with
``origin == "carried"`` and the original ``computed_at``, so the engine's
partial passes produce complete, manifest-backed versions without
recomputing unaffected actions.  Candidate-level reruns go one step
finer: a partially recomputed action lands with ``origin == "mixed"``
plus a per-vis ``vis_origins`` map, and each executed action's
per-candidate score records are stored under the reserved
:func:`candidate_entry` namespace — advisory entries that no manifest
lists and whose eviction never invalidates a pass.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from typing import Any, Mapping, Sequence

from ..core.config import config

__all__ = ["ResultStore", "candidate_entry"]

#: Reserved pseudo-action naming the per-(session, version) manifest.
MANIFEST = "_manifest"

#: Reserved prefix for per-candidate record entries (see
#: :func:`candidate_entry`).  The separator byte cannot appear in an
#: action name, so the namespace can never collide with a real action.
CANDIDATE_PREFIX = "_cand\x1f"


def candidate_entry(action: str, vis_key: str) -> str:
    """The reserved entry name for one candidate's score record.

    The incremental engine stores one tiny ``{"approx", "score",
    "displayed"}`` record per candidate vis of each executed action, so
    the next partial pass can carry unaffected candidates' scores at vis
    granularity.  These entries are advisory: they are never listed in a
    pass manifest, and evicting one never invalidates the pass it belongs
    to (a missing record just means that candidate is recomputed).
    """
    return f"{CANDIDATE_PREFIX}{action}\x1f{vis_key}"


class _Entry:
    __slots__ = ("payload", "origin", "computed_at", "nbytes", "vis_origins")

    def __init__(
        self,
        payload: Any,
        origin: str,
        nbytes: int,
        computed_at: float | None = None,
        vis_origins: "dict[str, str] | None" = None,
    ) -> None:
        self.payload = payload
        self.origin = origin
        self.computed_at = time.time() if computed_at is None else computed_at
        self.nbytes = nbytes
        #: Per-vis provenance for mixed-origin entries (candidate-level
        #: partial reruns): ``vis_key -> origin``.  None means every vis
        #: shares the entry's ``origin``.
        self.vis_origins = vis_origins


class ResultStore:
    """Byte-budgeted LRU over serialized recommendation payloads."""

    def __init__(self, budget_bytes: int | None = None) -> None:
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.RLock()
        self._budget_override = budget_bytes
        self._nbytes = 0  # guarded-by: _lock
        self._bytes_peak = 0  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock
        self._carried = 0  # guarded-by: _lock

    def budget_bytes(self) -> int:
        """The active byte budget; 0 means unbounded."""
        if self._budget_override is not None:
            return self._budget_override
        return max(int(config.service_store_budget_mb), 0) << 20

    # ------------------------------------------------------------------
    @staticmethod
    def _key(session_id: str, version: tuple, action: str) -> tuple:
        return (session_id, tuple(version), action)

    def put(
        self,
        session_id: str,
        version: tuple,
        action: str,
        payload: Any,
        origin: str = "precompute",
        computed_at: float | None = None,
        vis_origins: "dict[str, str] | None" = None,
    ) -> bool:
        """Insert one action's payload; False when it alone busts the budget."""
        nbytes = len(json.dumps(payload, separators=(",", ":")))
        entry = _Entry(
            payload, origin, nbytes, computed_at=computed_at, vis_origins=vis_origins
        )
        return self._insert(self._key(session_id, version, action), entry)

    def _insert(self, key: tuple, entry: _Entry) -> bool:
        """Insert a pre-sized entry and enforce the byte budget."""
        budget = self.budget_bytes()
        if budget and entry.nbytes > budget:
            return False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._nbytes -= old.nbytes
            self._entries[key] = entry
            self._nbytes += entry.nbytes
            self._bytes_peak = max(self._bytes_peak, self._nbytes)
            if budget:
                while self._nbytes > budget and len(self._entries) > 1:
                    self._evict_lru()
        return True

    def _evict_lru(self) -> None:  # requires-lock: _lock
        """Drop the LRU entry — and, when it is an action payload, the
        manifest that lists it.

        Without the purge, evicting a pass member mid-insertion (or later
        under byte pressure) left a dangling manifest row: a pass that can
        never be served whole again, whose manifest sat in the LRU
        consuming bytes and answering action-existence probes for payloads
        that no longer exist.  Candidate record entries are exempt in both
        directions: evicting one leaves the pass servable whole (records
        are advisory), and no manifest ever lists them.  The caller holds
        ``self._lock``.
        """
        key, evicted = self._entries.popitem(last=False)
        self._nbytes -= evicted.nbytes
        self._evictions += 1
        if key[2] != MANIFEST and not key[2].startswith(CANDIDATE_PREFIX):
            manifest = self._entries.pop((key[0], key[1], MANIFEST), None)
            if manifest is not None:
                self._nbytes -= manifest.nbytes

    def put_pass(
        self,
        session_id: str,
        version: tuple,
        payloads: Mapping[str, Any],
        origin: str = "precompute",
        manifest: "Sequence[str] | None" = None,
        origins: "Mapping[str, str] | None" = None,
        vis_origins: "Mapping[str, dict[str, str]] | None" = None,
    ) -> None:
        """Store a whole pass: one entry per action plus the manifest.

        ``manifest`` overrides the listed action names — the incremental
        engine passes the *full* ordered action set when some entries were
        carried forward (already present at this version) rather than
        inserted here.  ``origins`` overrides ``origin`` per action and
        ``vis_origins`` attaches per-vis provenance — both used by
        candidate-level partial passes, whose rerun actions land with
        ``origin == "mixed"`` plus a ``vis_key -> origin`` map.  The
        manifest is only written if every listed action's entry is still
        resident: byte pressure during insertion may already have evicted
        early members, and a manifest naming missing entries would be
        dangling on arrival.  The residency check and the manifest insert
        happen under one lock acquisition — a concurrent writer evicting a
        member between the two would otherwise re-create exactly the
        dangling row this guards against.
        """
        for action, payload in payloads.items():
            self.put(
                session_id,
                version,
                action,
                payload,
                origin=origins.get(action, origin) if origins else origin,
                vis_origins=vis_origins.get(action) if vis_origins else None,
            )
        names = list(manifest) if manifest is not None else list(payloads.keys())
        nbytes = len(json.dumps(names, separators=(",", ":")))
        budget = self.budget_bytes()
        if budget and nbytes > budget:
            return
        entry = _Entry(names, origin, nbytes)
        key = self._key(session_id, version, MANIFEST)
        with self._lock:
            if any(
                self._key(session_id, version, name) not in self._entries
                for name in names
            ):
                return
            old = self._entries.pop(key, None)
            if old is not None:
                self._nbytes -= old.nbytes
            self._entries[key] = entry
            self._nbytes += nbytes
            self._bytes_peak = max(self._bytes_peak, self._nbytes)
            if budget:
                while self._nbytes > budget and len(self._entries) > 1:
                    self._evict_lru()

    def restore_pass(
        self,
        session_id: str,
        version: tuple,
        records: Mapping[str, Mapping[str, Any]],
        manifest: "Sequence[str] | None" = None,
    ) -> bool:
        """Rehydrate a snapshotted pass, preserving each record's provenance.

        The service's persistence layer saves the store's own records
        (payload + origin + ``computed_at``) next to the frame snapshot;
        on the first read after a restart this re-inserts them verbatim —
        origins stay ``precompute``/``carried``/``mixed``, ``computed_at``
        stays the original pass time (so ``freshness.age_s`` reports the
        true staleness across the restart, not zero).  Returns True when
        the manifest landed, i.e. the pass is servable whole.
        """
        for action, record in records.items():
            nbytes = record.get("nbytes")
            if nbytes is None:
                self.put(
                    session_id,
                    version,
                    action,
                    record["payload"],
                    origin=record.get("origin", "precompute"),
                    computed_at=record.get("computed_at"),
                    vis_origins=record.get("vis_origins"),
                )
            else:
                # The snapshot recorded the exact accounting size at the
                # original insertion — reuse it instead of re-serializing
                # every payload on the (latency-critical) warm path.
                entry = _Entry(
                    record["payload"],
                    record.get("origin", "precompute"),
                    int(nbytes),
                    computed_at=record.get("computed_at"),
                    vis_origins=record.get("vis_origins"),
                )
                self._insert(self._key(session_id, version, action), entry)
        names = list(manifest) if manifest is not None else list(records)
        self.put_pass(session_id, version, {}, manifest=names)
        with self._lock:
            return self._key(session_id, version, MANIFEST) in self._entries

    def carry(
        self,
        session_id: str,
        old_version: tuple,
        new_version: tuple,
        action: str,
    ) -> bool:
        """Re-publish one action's payload under ``new_version``.

        The incremental engine calls this for actions whose input
        footprint missed the mutation delta: the previous pass's result is
        still exactly what a cold pass would compute, so it is carried
        forward under the new ``(session, data_version, intent_epoch)``
        key with provenance ``carried`` and its original ``computed_at``.
        Returns False when the source entry is gone (evicted) — the caller
        must rerun the action instead.  A carried entry is uniform by
        definition, so any per-vis origin map collapses to None; carrying
        a candidate record entry does not count toward the ``carried``
        stat (records are advisory bookkeeping, not served payloads).
        """
        with self._lock:
            entry = self._entries.get(self._key(session_id, old_version, action))
            if entry is None:
                return False
            # Reuse the source's exact byte size: re-serializing the
            # payload here would put O(payload) CPU back on the very path
            # whose point is doing no work for unaffected actions.
            copied = _Entry(
                entry.payload, "carried", entry.nbytes, computed_at=entry.computed_at
            )
        ok = self._insert(self._key(session_id, new_version, action), copied)
        if ok and not action.startswith(CANDIDATE_PREFIX):
            with self._lock:
                self._carried += 1
        return ok

    def get(
        self, session_id: str, version: tuple, action: str
    ) -> dict[str, Any] | None:
        """One action's stored record at exactly ``version``, or None.

        The returned dict wraps the payload with provenance (``origin``,
        ``computed_at``) so the API can report freshness.
        """
        key = self._key(session_id, version, action)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            # nbytes rides along so snapshots can persist each record's
            # exact accounting size; restore_pass then re-inserts without
            # re-serializing the payload just to measure it.
            record = {
                "payload": entry.payload,
                "origin": entry.origin,
                "computed_at": entry.computed_at,
                "nbytes": entry.nbytes,
            }
            if entry.vis_origins is not None:
                record["vis_origins"] = dict(entry.vis_origins)
            return record

    def get_pass(
        self, session_id: str, version: tuple
    ) -> dict[str, dict[str, Any]] | None:
        """All actions of a completed pass at ``version``; None on any gap."""
        manifest = self.get(session_id, version, MANIFEST)
        if manifest is None:
            return None
        out: dict[str, dict[str, Any]] = {}
        for action in manifest["payload"]:
            record = self.get(session_id, version, action)
            if record is None:  # evicted under byte pressure
                return None
            out[action] = record
        return out

    # ------------------------------------------------------------------
    def drop_session(self, session_id: str) -> int:
        """Eagerly free every entry of a closed session."""
        with self._lock:
            doomed = [k for k in self._entries if k[0] == session_id]
            for key in doomed:
                self._nbytes -= self._entries.pop(key).nbytes
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._nbytes = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._nbytes,
                "bytes_peak": self._bytes_peak,
                "budget_bytes": self.budget_bytes(),
                "sessions": len({k[0] for k in self._entries}),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "carried": self._carried,
            }
