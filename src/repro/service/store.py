"""Versioned recommendation result store: the always-on read path.

Holds serialized vega-lite payloads keyed on ``(session, version, action)``
where ``version`` is the frame's ``(_data_version, _intent_epoch)`` pair.
When the background precompute engine wins the race against the analyst's
next look, a read is a dictionary lookup; when it loses (or an entry was
evicted), the caller falls back to a foreground pass and back-fills the
store.

Staleness is impossible by construction, not by invalidation: readers key
their lookup on the frame's *current* version, so entries recorded at any
older version are simply unreachable (the same contract the executor's
computation cache uses).  Old entries age out of the byte-budgeted LRU
instead of being chased by invalidation hooks; closing a session drops its
entries eagerly.

The store is byte-budgeted (``config.service_store_budget_mb``) with exact
accounting — every payload is measured as its serialized JSON byte length
at insertion (payloads are JSON-safe by contract; see
``repro.vis.vegalite.spec_payload``).  Entries whose size alone exceeds
the whole budget are rejected rather than stored: caching one would evict
everything else and then be evicted itself.

A *pass* (all actions computed against one version) is stored atomically:
per-action entries plus a manifest listing the action names, so a
whole-dashboard read can distinguish "pass complete" from "some actions
evicted" and recompute only in the latter case.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from typing import Any, Mapping

from ..core.config import config

__all__ = ["ResultStore"]

#: Reserved pseudo-action naming the per-(session, version) manifest.
MANIFEST = "_manifest"


class _Entry:
    __slots__ = ("payload", "origin", "computed_at", "nbytes")

    def __init__(self, payload: Any, origin: str, nbytes: int) -> None:
        self.payload = payload
        self.origin = origin
        self.computed_at = time.time()
        self.nbytes = nbytes


class ResultStore:
    """Byte-budgeted LRU over serialized recommendation payloads."""

    def __init__(self, budget_bytes: int | None = None) -> None:
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._lock = threading.RLock()
        self._budget_override = budget_bytes
        self._nbytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def budget_bytes(self) -> int:
        """The active byte budget; 0 means unbounded."""
        if self._budget_override is not None:
            return self._budget_override
        return max(int(config.service_store_budget_mb), 0) << 20

    # ------------------------------------------------------------------
    @staticmethod
    def _key(session_id: str, version: tuple, action: str) -> tuple:
        return (session_id, tuple(version), action)

    def put(
        self,
        session_id: str,
        version: tuple,
        action: str,
        payload: Any,
        origin: str = "precompute",
    ) -> bool:
        """Insert one action's payload; False when it alone busts the budget."""
        nbytes = len(json.dumps(payload, separators=(",", ":")))
        budget = self.budget_bytes()
        if budget and nbytes > budget:
            return False
        entry = _Entry(payload, origin, nbytes)
        key = self._key(session_id, version, action)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._nbytes -= old.nbytes
            self._entries[key] = entry
            self._nbytes += nbytes
            if budget:
                while self._nbytes > budget and len(self._entries) > 1:
                    _, evicted = self._entries.popitem(last=False)
                    self._nbytes -= evicted.nbytes
                    self._evictions += 1
        return True

    def put_pass(
        self,
        session_id: str,
        version: tuple,
        payloads: Mapping[str, Any],
        origin: str = "precompute",
    ) -> None:
        """Store a whole pass: one entry per action plus the manifest."""
        for action, payload in payloads.items():
            self.put(session_id, version, action, payload, origin=origin)
        self.put(
            session_id, version, MANIFEST, list(payloads.keys()), origin=origin
        )

    def get(
        self, session_id: str, version: tuple, action: str
    ) -> dict[str, Any] | None:
        """One action's stored record at exactly ``version``, or None.

        The returned dict wraps the payload with provenance (``origin``,
        ``computed_at``) so the API can report freshness.
        """
        key = self._key(session_id, version, action)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return {
                "payload": entry.payload,
                "origin": entry.origin,
                "computed_at": entry.computed_at,
            }

    def get_pass(
        self, session_id: str, version: tuple
    ) -> dict[str, dict[str, Any]] | None:
        """All actions of a completed pass at ``version``; None on any gap."""
        manifest = self.get(session_id, version, MANIFEST)
        if manifest is None:
            return None
        out: dict[str, dict[str, Any]] = {}
        for action in manifest["payload"]:
            record = self.get(session_id, version, action)
            if record is None:  # evicted under byte pressure
                return None
            out[action] = record
        return out

    # ------------------------------------------------------------------
    def drop_session(self, session_id: str) -> int:
        """Eagerly free every entry of a closed session."""
        with self._lock:
            doomed = [k for k in self._entries if k[0] == session_id]
            for key in doomed:
                self._nbytes -= self._entries.pop(key).nbytes
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._nbytes = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._nbytes,
                "budget_bytes": self.budget_bytes(),
                "sessions": len({k[0] for k in self._entries}),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }
