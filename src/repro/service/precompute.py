"""Background precomputation: the paper's always-on promise, made literal.

The engine subscribes to each watched session's frame through
``repro.dataframe.observe`` (fired by ``DataFrame._notify_mutation`` /
``LuxDataFrame._expire`` on every ``_data_version`` bump, and by intent
changes).  A mutation arms a debounce timer; when it fires, a full
recommendation pass is submitted to the shared worker pool **tagged with
the session id and demoted to the background band**, so precompute work
round-robins fairly across sessions and never delays interactive prints
or API reads.

Scheduling discipline per session:

- **Debounce** (``config.precompute_debounce_s``): a burst of mutations
  (a loop writing row-by-row) coalesces into one pass.
- **In-flight dedup**: while a pass for the current version is queued or
  running, further triggers at that version are no-ops.
- **Stale cancellation**: when the version moves, the superseded pass is
  cancelled — before start via ``Future.cancel``, mid-run cooperatively
  via the cancel event ``run_actions`` polls between actions
  (:class:`~repro.core.errors.PassCancelled`) — and a fresh pass is
  scheduled.

A completed pass lands in the :class:`~repro.service.store.ResultStore`
keyed on the version it computed — *only* if that version is still
current, so the store can never be populated with results for data that
no longer exists.  The frame's own memoized recommendation cache is
refreshed under the same guard, making in-process prints free too.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import TYPE_CHECKING, Any

from ..core import pool
from ..core.actions.registry import default_registry
from ..core.config import config
from ..core.errors import LuxWarning, PassCancelled
from ..core.optimizer.scheduler import run_actions
from ..dataframe import observe
from .session import serialize_recommendations

if TYPE_CHECKING:  # pragma: no cover
    from .session import Session
    from .store import ResultStore

__all__ = ["PrecomputeEngine"]


class _Inflight:
    __slots__ = ("version", "future", "cancel")

    def __init__(self, version: tuple, future: Any, cancel: threading.Event):
        self.version = version
        self.future = future
        self.cancel = cancel


class PrecomputeEngine:
    """Schedules and runs background recommendation passes per session."""

    def __init__(
        self, store: "ResultStore", debounce_s: float | None = None
    ) -> None:
        self.store = store
        self._debounce_override = debounce_s
        self._lock = threading.Lock()
        self._unsubscribe: dict[str, Any] = {}
        self._timers: dict[str, threading.Timer] = {}
        self._inflight: dict[str, _Inflight] = {}
        self._counters = {
            "scheduled": 0,
            "completed": 0,
            "cancelled": 0,
            "stale": 0,
            "failed": 0,
        }

    def debounce_s(self) -> float:
        if self._debounce_override is not None:
            return self._debounce_override
        return max(float(config.precompute_debounce_s), 0.0)

    # ------------------------------------------------------------------
    # Watch / unwatch
    # ------------------------------------------------------------------
    def watch(self, session: "Session") -> None:
        """Schedule a pass after every future mutation of the session frame."""
        with self._lock:
            if session.id in self._unsubscribe:
                return

            def on_mutation(_frame: Any, _op: str, s: "Session" = session) -> None:
                if config.precompute:
                    self.schedule(s)

            self._unsubscribe[session.id] = observe.register(
                session.frame, on_mutation
            )

    def unwatch(self, session: "Session") -> None:
        with self._lock:
            unsubscribe = self._unsubscribe.pop(session.id, None)
            timer = self._timers.pop(session.id, None)
            inflight = self._inflight.pop(session.id, None)
        if unsubscribe is not None:
            unsubscribe()
        if timer is not None:
            timer.cancel()
        if inflight is not None:
            inflight.cancel.set()
            inflight.future.cancel()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, session: "Session", immediate: bool = False) -> None:
        """Arm (or re-arm) the session's debounce; submit when it fires."""
        delay = 0.0 if immediate else self.debounce_s()
        with self._lock:
            pending = self._timers.pop(session.id, None)
        if pending is not None:
            pending.cancel()
        if delay <= 0:
            self._submit(session)
            return
        timer = threading.Timer(delay, self._submit, args=(session,))
        timer.daemon = True
        with self._lock:
            self._timers[session.id] = timer
        timer.start()

    def _submit(self, session: "Session") -> None:
        with self._lock:
            self._timers.pop(session.id, None)
            version = session.version
            inflight = self._inflight.get(session.id)
            if inflight is not None and not inflight.future.done():
                if inflight.version == version:
                    return  # dedup: same state already queued/running
                # Stale: the version moved while a pass was in flight.
                inflight.cancel.set()
                inflight.future.cancel()
                self._counters["cancelled"] += 1
            cancel = threading.Event()
            future = pool.submit(
                lambda: self._run_pass(session, version, cancel),
                tag=session.id,
                background=True,
            )
            self._inflight[session.id] = _Inflight(version, future, cancel)
            self._counters["scheduled"] += 1

    # ------------------------------------------------------------------
    # The pass itself (runs on a pool worker, background band)
    # ------------------------------------------------------------------
    def _run_pass(
        self, session: "Session", version: tuple, cancel: threading.Event
    ) -> str:
        """One full recommendation pass for ``session`` at ``version``."""
        if cancel.is_set() or session.version != version:
            self._counters["stale"] += 1
            return "stale"
        with session.lock:
            if cancel.is_set() or session.version != version:
                self._counters["stale"] += 1
                return "stale"
            frame = session.frame
            try:
                with session.overlay():
                    metadata = frame.metadata
                    applicable = default_registry.applicable(frame)
                    recs = run_actions(applicable, frame, metadata, cancel=cancel)
                    payloads = serialize_recommendations(recs)
            except PassCancelled:
                self._counters["cancelled"] += 1
                return "cancelled"
            except Exception as exc:
                self._counters["failed"] += 1
                warnings.warn(f"precompute pass failed: {exc}", LuxWarning)
                return "failed"
            if cancel.is_set() or session.version != version:
                # Cancelled late (e.g. the session closed mid-pass — its
                # store entries were already dropped and must not be
                # re-inserted) or completed against data that no longer
                # exists (the mutation's own trigger scheduled a redo).
                self._counters["stale"] += 1
                return "stale"
            if not session.overrides:
                # Refresh the frame's memoized set so in-process prints
                # are free — but only when the session runs under stock
                # config: overlay-shaped results (say top_k=5) must not
                # masquerade as the frame's plain recommendations to
                # non-service readers holding the adopted frame.
                frame._recs_cache = recs
                frame._recs_version = version
                frame._recs_fresh = True
            self.store.put_pass(session.id, version, payloads, origin="precompute")
            self._counters["completed"] += 1
            return "completed"

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until no timer is armed and no pass is in flight."""
        end = time.monotonic() + timeout
        while time.monotonic() < end:
            with self._lock:
                busy = bool(self._timers) or any(
                    not i.future.done() for i in self._inflight.values()
                )
            if not busy:
                return True
            time.sleep(0.005)
        return False

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "watched": len(self._unsubscribe),
                "timers_armed": len(self._timers),
                "in_flight": sum(
                    1 for i in self._inflight.values() if not i.future.done()
                ),
                **self._counters,
            }

    def close(self) -> None:
        """Cancel all timers and in-flight passes, drop all watches."""
        with self._lock:
            unsubs = list(self._unsubscribe.values())
            timers = list(self._timers.values())
            inflight = list(self._inflight.values())
            self._unsubscribe.clear()
            self._timers.clear()
            self._inflight.clear()
        for unsubscribe in unsubs:
            unsubscribe()
        for timer in timers:
            timer.cancel()
        for item in inflight:
            item.cancel.set()
            item.future.cancel()
