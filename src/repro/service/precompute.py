"""Background precomputation: the paper's always-on promise, made literal.

The engine subscribes to each watched session's frame through
``repro.dataframe.observe`` (fired by ``DataFrame._notify_mutation`` /
``LuxDataFrame._expire`` on every ``_data_version`` bump, and by intent
changes).  A mutation arms a debounce timer; when it fires, a
recommendation pass is submitted to the shared worker pool **tagged with
the session id and demoted to the background band**, so precompute work
round-robins fairly across sessions and never delays interactive prints
or API reads.

Scheduling discipline per session:

- **Debounce** (``config.precompute_debounce_s``): a burst of mutations
  (a loop writing row-by-row) coalesces into one pass.
- **In-flight dedup**: while a pass for the current version is queued or
  running, further triggers at that version are no-ops.
- **Stale cancellation**: when the version moves, the superseded pass is
  cancelled — before start via ``Future.cancel``, mid-run cooperatively
  via the cancel event ``run_actions`` polls between actions
  (:class:`~repro.core.errors.PassCancelled`) — and a fresh pass is
  scheduled.

Incremental recomputation (``config.incremental_precompute``)
-------------------------------------------------------------
Mutation events carry a column-level :class:`~repro.dataframe.observe.
Delta`; the engine accumulates them per session between stored passes.
When a pass runs, the applicable actions are partitioned against the
accumulated delta using each action's declared input
:class:`~repro.core.actions.base.Footprint` (unioned with the footprint
recorded at the previous pass, so a column *leaving* an action's space
still reruns it): actions whose inputs intersect the delta — or that
depend on intent when intent changed — are **rerun**; everything else is
**carried forward** from the previous stored pass via
:meth:`~repro.service.store.ResultStore.carry` (provenance ``carried``,
original ``computed_at``).  Rerun actions whose footprint declares
per-candidate entries are scoped one level finer: only the candidate vis
whose declared read set the delta touches recompute; the rest carry
their previous sample/exact scores (stored as per-candidate records
under the store's reserved :func:`~repro.service.store.candidate_entry`
namespace) and their previous displayed Vis, merged back in enumeration
order so the two-pass ranking — including stable-sort ties — replays
exactly.  Steady-state background work is therefore proportional to what
changed, not to the whole action set; a carried result is by
construction bit-identical to what a cold pass would recompute, because
its inputs did not change.  Row-set changes, unknown deltas, wildcard
intents, duplicate candidate identities, and evicted previous entries
all degrade to coarser granularity — never to a wrong result.

A completed pass lands in the :class:`~repro.service.store.ResultStore`
keyed on the version it computed — *only* if that version is still
current, so the store can never be populated with results for data that
no longer exists.  The frame's own memoized recommendation cache is
refreshed under the same guard (merging carried VisLists from the
previous memoized set on incremental passes), making in-process prints
free too.

Backpressure (``config.precompute_queue_limit``)
------------------------------------------------
The *backlog* — armed debounce timers plus queued/in-flight passes,
summed across sessions — is bounded.  At the limit the engine degrades
in three graduated steps rather than queueing unboundedly:

1. **Shed stale** (:meth:`~PrecomputeEngine._shed_stale_locked`): oldest
   first, cancel in-flight passes whose version the session has already
   moved past (their results would be discarded at publish anyway) and
   timers made redundant by a live pass at the current version.  Shedding
   never loses information — the accumulated delta survives, so the next
   pass still covers the change.
2. **Defer**: a trigger that cannot be admitted parks the session in a
   FIFO; when any pass completes (freeing a slot) the oldest deferred
   session is resumed.  A deferred session's store goes stale, and reads
   fall back to a correct foreground pass in the meantime.
3. **Reject writes**: :meth:`~PrecomputeEngine.admit` is the admission
   check mutation-facing HTTP writes make *before* touching the frame;
   at saturation it raises :class:`QueueSaturated` (HTTP 429 with a
   ``Retry-After`` estimated from the backlog and an EWMA of recent pass
   durations).  The check and the shed happen under one lock acquisition,
   so a slot freed between "is it full?" and "enqueue" is observed rather
   than spuriously rejected.

Because rejected writes never mutate, shed work is always superseded, and
deferred work resumes on drain, results after the backlog drains are
bit-identical to an unloaded run — the property
``benchmarks/bench_load.py`` gates end-to-end.
"""

from __future__ import annotations

import math
import threading
import time
import warnings
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from ..core import pool, telemetry
from ..core.actions.base import Footprint
from ..core.actions.registry import default_registry
from ..core.config import config
from ..core.errors import LuxError, LuxWarning, PassCancelled
from ..core.optimizer.sampling import CandidatePrior
from ..core.optimizer.scheduler import (
    RecommendationSet,
    run_actions,
    schedule_actions,
)
from ..dataframe import observe
from ..dataframe.observe import Delta
from ..vis.spec import candidate_key
from .session import serialize_recommendations
from .store import candidate_entry

if TYPE_CHECKING:  # pragma: no cover
    from ..core.actions.base import Action
    from .persist import SnapshotStore
    from .session import Session
    from .store import ResultStore

__all__ = ["PrecomputeEngine", "QueueSaturated"]


def _observe_phase(phase: str, seconds: float) -> None:
    """Record one pass-phase duration into the shared phase histogram."""
    telemetry.histogram(
        "lux_precompute_phase_seconds",
        "precompute pass phase breakdown (debounce_wait/metadata/actions/publish)",
        ("phase",),
    ).observe(seconds, (phase,))


class QueueSaturated(LuxError):
    """The precompute backlog is at its bound; the write should be retried.

    Raised by :meth:`PrecomputeEngine.admit` — the HTTP layer maps it to
    429 with a ``Retry-After`` header carrying :attr:`retry_after_s`.
    """

    def __init__(self, retry_after_s: int) -> None:
        super().__init__(
            f"precompute backlog is full; retry after {retry_after_s}s"
        )
        self.retry_after_s = retry_after_s


class _Inflight:
    __slots__ = ("version", "future", "cancel", "session", "shed")

    def __init__(
        self,
        version: tuple,
        future: Any,
        cancel: threading.Event,
        session: "Session",
    ):
        self.version = version
        self.future = future
        self.cancel = cancel
        self.session = session
        #: Shed passes abort at their next cancel checkpoint; they stop
        #: counting toward the backlog the moment they are shed.
        self.shed = False


class _SessionState:
    """Incremental bookkeeping for one watched session.

    ``last_version``/``footprints`` describe the engine's last *stored*
    pass; ``delta``/``delta_version`` accumulate every mutation observed
    since (the union of a burst, stamped with the newest version it
    covers).  Publishing a pass clears the accumulator only when the
    stored version covers it — a mutation racing the publish keeps its
    delta for the next pass (conservative, never lossy).
    """

    __slots__ = ("last_version", "footprints", "delta", "delta_version")

    def __init__(self) -> None:
        self.last_version: tuple | None = None
        self.footprints: dict[str, Footprint] = {}
        self.delta: Delta | None = None
        self.delta_version: tuple | None = None


class _PartialPlan:
    """Candidate-level carry plan for one rerun action.

    ``prior`` maps unaffected candidates' ``vis_key`` to their carried
    state (scores + displayed Vis); ``rerun`` counts the candidates
    actually recomputed.  Fresh per-candidate records land in the owning
    :class:`_Plan`'s ``records`` sink for the action.
    """

    __slots__ = ("prior", "rerun")

    def __init__(self, prior: "dict[str, CandidatePrior]", rerun: int) -> None:
        self.prior = prior
        self.rerun = rerun


class _Plan:
    """One pass's partition: what to rerun, what to carry, in what order.

    ``partial`` scopes some rerun actions down to candidate granularity
    (action name -> :class:`_PartialPlan`); ``records`` holds one output
    dict per executed action that declared candidate entries, collecting
    the per-candidate score records the next pass's prior is built from.
    """

    __slots__ = (
        "prev_version",
        "ordered_names",
        "affected",
        "carried",
        "footprints",
        "partial",
        "records",
    )

    def __init__(
        self,
        prev_version: tuple | None,
        ordered_names: list[str],
        affected: "list[Action]",
        carried: list[str],
        footprints: dict[str, Footprint],
        partial: "dict[str, _PartialPlan] | None" = None,
        records: "dict[str, dict] | None" = None,
    ) -> None:
        self.prev_version = prev_version
        self.ordered_names = ordered_names
        self.affected = affected
        self.carried = carried
        self.footprints = footprints
        self.partial = partial or {}
        self.records = records or {}


def _covers(version: tuple, other: tuple) -> bool:
    """Componentwise: has ``version`` advanced at least to ``other``?"""
    return all(v >= o for v, o in zip(version, other))


class PrecomputeEngine:
    """Schedules and runs background recommendation passes per session."""

    def __init__(
        self,
        store: "ResultStore",
        debounce_s: float | None = None,
        snapshots: "SnapshotStore | None" = None,
    ) -> None:
        self.store = store
        #: When set, every published pass persists the session (rate-
        #: limited by ``config.service_snapshot_interval_s``) so a
        #: restarted worker recovers warm state.
        self._snapshots = snapshots
        self._debounce_override = debounce_s
        #: Reentrant: ``schedule`` decides admission and submits under one
        #: acquisition (no check-then-act window), which nests into
        #: ``_submit_locked``.
        self._lock = threading.RLock()
        self._unsubscribe: dict[str, Any] = {}  # guarded-by: _lock
        self._timers: dict[str, threading.Timer] = {}  # guarded-by: _lock
        self._inflight: dict[str, _Inflight] = {}  # guarded-by: _lock
        self._states: dict[str, _SessionState] = {}  # guarded-by: _lock
        #: Sessions whose trigger arrived at saturation, FIFO; resumed as
        #: passes complete and free backlog slots.
        self._deferred: "OrderedDict[str, Session]" = OrderedDict()  # guarded-by: _lock
        #: EWMA of completed pass wall-clock, feeding Retry-After.
        self._avg_pass_s: float | None = None  # guarded-by: _lock
        #: When each session's debounce first armed, for the
        #: debounce-wait phase histogram (arm -> submit).
        self._debounce_armed: dict[str, float] = {}  # guarded-by: _lock
        self._counters = {  # guarded-by: _lock
            "scheduled": 0,
            "completed": 0,
            "cancelled": 0,
            "stale": 0,
            "failed": 0,
            "incremental_passes": 0,
            "actions_rerun": 0,
            "actions_carried": 0,
            "candidates_rerun": 0,
            "candidates_carried": 0,
            "carry_misses": 0,
            "rejected": 0,
            "shed_stale": 0,
            "deferred": 0,
            "resumed": 0,
        }

    def debounce_s(self) -> float:
        if self._debounce_override is not None:
            return self._debounce_override
        return max(float(config.precompute_debounce_s), 0.0)

    def queue_limit(self) -> int:
        """The backlog bound (0 = unbounded)."""
        return max(int(config.precompute_queue_limit), 0)

    def _bump(self, name: str, by: int = 1) -> None:
        """Increment one stats counter; pass workers race the stats reader."""
        with self._lock:
            self._counters[name] += by

    # ------------------------------------------------------------------
    # Watch / unwatch
    # ------------------------------------------------------------------
    def watch(self, session: "Session") -> None:
        """Schedule a pass after every future mutation of the session frame."""
        with self._lock:
            if session.id in self._unsubscribe:
                return
            self._states[session.id] = _SessionState()

            def on_mutation(
                _frame: Any, _op: str, delta: Delta, s: "Session" = session
            ) -> None:
                # Record the delta unconditionally (partitioning must see
                # every change, even ones made while precompute was off);
                # only the scheduling is gated on the master switch.
                self._record_delta(s, delta)
                if config.precompute:
                    self.schedule(s)

            self._unsubscribe[session.id] = observe.register(
                session.frame, on_mutation
            )

    def unwatch(self, session: "Session") -> None:
        with self._lock:
            unsubscribe = self._unsubscribe.pop(session.id, None)
            timer = self._timers.pop(session.id, None)
            inflight = self._inflight.pop(session.id, None)
            self._states.pop(session.id, None)
            self._deferred.pop(session.id, None)
            self._debounce_armed.pop(session.id, None)
        if unsubscribe is not None:
            unsubscribe()
        if timer is not None:
            timer.cancel()
        if inflight is not None:
            inflight.cancel.set()
            inflight.future.cancel()
        self._resume_deferred()

    def _record_delta(self, session: "Session", delta: Delta) -> None:
        """Fold one mutation into the session's accumulated delta."""
        version = session.version  # post-bump: emit runs after the bump
        with self._lock:
            state = self._states.get(session.id)
            if state is None:
                return
            state.delta = delta if state.delta is None else state.delta.union(delta)
            if state.delta_version is None or _covers(
                version, state.delta_version
            ):
                state.delta_version = version

    # ------------------------------------------------------------------
    # Backpressure (the bounded half)
    # ------------------------------------------------------------------
    def backlog_depth(self) -> int:
        """Armed timers + live (unshed) passes, across all sessions."""
        with self._lock:
            return self._backlog_locked()

    def _backlog_locked(self) -> int:  # requires-lock: _lock
        live = sum(
            1
            for i in self._inflight.values()
            if not i.future.done() and not i.shed
        )
        return len(self._timers) + live

    def _holds_slot_locked(self, session_id: str) -> bool:  # requires-lock: _lock
        """Whether the session already occupies a backlog slot.

        Re-arming or superseding its own slot never grows the backlog, so
        such triggers bypass the admission check.
        """
        if session_id in self._timers:
            return True
        inflight = self._inflight.get(session_id)
        return (
            inflight is not None
            and not inflight.future.done()
            and not inflight.shed
        )

    def _shed_stale_locked(self) -> None:  # requires-lock: _lock
        """Shed superseded backlog, oldest first, to free slots.

        Sheds (a) in-flight passes whose version the session has moved
        past — their publish would be discarded anyway — and (b) timers
        made redundant by a live pass already running at the session's
        current version.  Accumulated deltas survive, so shedding defers
        work without ever losing it.
        """
        for inflight in list(self._inflight.values()):
            if inflight.future.done() or inflight.shed:
                continue
            if inflight.version != inflight.session.version:
                inflight.shed = True
                inflight.cancel.set()
                inflight.future.cancel()
                self._counters["shed_stale"] += 1
        for sid in list(self._timers):
            inflight = self._inflight.get(sid)
            if (
                inflight is not None
                and not inflight.future.done()
                and not inflight.shed
                and inflight.version == inflight.session.version
            ):
                self._timers.pop(sid).cancel()
                self._counters["shed_stale"] += 1

    def _saturated_locked(self) -> bool:  # requires-lock: _lock
        """Whether the backlog is at its bound, after shedding stale work.

        The shed happens under the same lock acquisition as the check, so
        a slot that frees between "is it full?" and "enqueue" is used
        rather than spuriously rejected.
        """
        limit = self.queue_limit()
        if limit <= 0:
            return False
        if self._backlog_locked() < limit:
            return False
        self._shed_stale_locked()
        return self._backlog_locked() >= limit

    def admit(self) -> None:
        """Admission check for mutation-facing writes.

        Call *before* mutating: raises :class:`QueueSaturated` when the
        backlog (including deferred sessions) is at its bound, carrying a
        ``Retry-After`` estimate.  A no-op when the bound is disabled.
        """
        if self.queue_limit() <= 0:
            return
        with self._lock:
            if self._deferred or self._saturated_locked():
                self._counters["rejected"] += 1
                raise QueueSaturated(self._retry_after_locked())

    def _retry_after_locked(self) -> int:  # requires-lock: _lock
        """Seconds until a retry plausibly finds a free slot."""
        pending = self._backlog_locked() + len(self._deferred)
        per_pass = max(self._avg_pass_s or 0.0, self.debounce_s(), 0.05)
        return max(1, min(60, math.ceil(pending * per_pass)))

    def _resume_deferred(self) -> None:
        """Submit deferred sessions while backlog slots are free (FIFO)."""
        while True:
            with self._lock:
                if not self._deferred or self._saturated_locked():
                    return
                _, session = self._deferred.popitem(last=False)
                self._counters["resumed"] += 1
                self._submit_locked(session)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, session: "Session", immediate: bool = False) -> None:
        """Arm (or re-arm) the session's debounce; submit when it fires.

        At saturation a session not already holding a backlog slot is
        deferred instead (resumed FIFO as passes complete), so the
        backlog bound holds even for triggers that raced past
        :meth:`admit` — the mutation's delta is already recorded, and a
        read meanwhile falls back to a correct foreground pass.
        """
        delay = 0.0 if immediate else self.debounce_s()
        pending: threading.Timer | None = None
        with self._lock:
            pending = self._timers.pop(session.id, None)
            if (
                pending is None
                and not self._holds_slot_locked(session.id)
                and self._saturated_locked()
            ):
                if session.id not in self._deferred:
                    self._deferred[session.id] = session
                    self._counters["deferred"] += 1
            elif delay <= 0:
                self._submit_locked(session)
            else:
                timer = threading.Timer(delay, self._submit, args=(session,))
                timer.daemon = True
                self._timers[session.id] = timer
                self._debounce_armed.setdefault(session.id, time.perf_counter())
                timer.start()
        if pending is not None:
            pending.cancel()

    def _submit(self, session: "Session") -> None:
        with self._lock:
            self._submit_locked(session)

    def _submit_locked(self, session: "Session") -> None:  # requires-lock: _lock
        self._timers.pop(session.id, None)
        armed = self._debounce_armed.pop(session.id, None)
        if armed is not None:
            _observe_phase("debounce_wait", time.perf_counter() - armed)
        version = session.version
        inflight = self._inflight.get(session.id)
        if inflight is not None and not inflight.future.done():
            if inflight.version == version and not inflight.shed:
                return  # dedup: same state already queued/running
            # Stale: the version moved while a pass was in flight.
            inflight.cancel.set()
            inflight.future.cancel()
            self._counters["cancelled"] += 1
        cancel = threading.Event()
        future = pool.submit(
            lambda: self._run_pass(session, version, cancel),
            tag=session.id,
            background=True,
        )
        self._inflight[session.id] = _Inflight(version, future, cancel, session)
        self._counters["scheduled"] += 1
        # A completing (or cancelled) pass frees a backlog slot: resume
        # the oldest deferred session.  Runs on whatever thread completes
        # the future, never while it still counts toward the backlog.
        future.add_done_callback(lambda _f: self._resume_deferred())

    # ------------------------------------------------------------------
    # Partitioning (the incremental half)
    # ------------------------------------------------------------------
    def _plan(
        self,
        session: "Session",
        version: tuple,
        frame: Any,
        metadata: Any,
        applicable: "list[Action]",
        prev_recs: "RecommendationSet | None" = None,
        prev_recs_version: "tuple | None" = None,
    ) -> _Plan:
        """Partition ``applicable`` into rerun vs carry-forward.

        The ordered name list mirrors exactly what a full pass would
        produce (``schedule_actions`` on current metadata), so the
        manifest — and therefore the response — of an incremental pass is
        indistinguishable from a cold one.  Rerun actions whose footprint
        declares per-candidate entries are scoped further: only the
        candidates the delta touches recompute, the rest carry their
        previous scores (from the store's candidate records) and displayed
        Vis (from the previous memoized set) — see :class:`_PartialPlan`.
        """
        ordered = schedule_actions(applicable, metadata)
        ordered_names = [a.name for a in ordered]
        footprints: dict[str, Footprint] = {}
        for action in ordered:
            try:
                footprints[action.name] = action.footprint(frame, metadata)
            except Exception:  # a broken declaration degrades to "rerun"
                footprints[action.name] = Footprint(None, True)

        def record_sinks(actions: "list[Action]") -> dict[str, dict]:
            # One output dict per executed action that declared candidate
            # entries — even full passes collect records, seeding the
            # first partial pass after a mutation.
            if not config.incremental_precompute:
                return {}
            return {
                a.name: {}
                for a in actions
                if footprints[a.name].candidates() is not None
            }

        with self._lock:
            state = self._states.get(session.id)
            prev_version = state.last_version if state is not None else None
            prev_footprints = dict(state.footprints) if state is not None else {}
            delta = state.delta if state is not None else None

        full = _Plan(
            None,
            ordered_names,
            list(ordered),
            [],
            footprints,
            records=record_sinks(ordered),
        )
        if not config.incremental_precompute or prev_version is None:
            return full
        if delta is None or delta.columns_changed is None or delta.rows_changed:
            # Nothing recorded for a moved version (shouldn't happen, but
            # never guess), or a change column-level reasoning can't scope.
            return full

        # Previous displayed Vis by (action, vis_key), for vis-granularity
        # carry inside partially rerun actions.  Only trusted when the
        # memoized set provably belongs to the previous stored pass under
        # stock config — otherwise partial plans fall back to score-only
        # carry (still correct, just re-executes display data).
        prev_vis: "dict[str, dict[str, Any]]" = {}
        if (
            prev_recs is not None
            and prev_recs_version == prev_version
            and not session.overrides
            and prev_recs._done.is_set()
        ):
            for name, vislist in prev_recs.items():
                by_key: dict[str, Any] = {}
                for vis in vislist:
                    try:
                        by_key[candidate_key(vis.spec)] = vis
                    except Exception:
                        continue
                prev_vis[name] = by_key

        affected: "list[Action]" = []
        carried: list[str] = []
        partial: "dict[str, _PartialPlan]" = {}
        for action in ordered:
            prev_fp = prev_footprints.get(action.name)
            if prev_fp is None:
                affected.append(action)  # not part of the previous pass
                continue
            fp = footprints[action.name].union(prev_fp)
            if (delta.intent_changed and fp.intent) or delta.touches(fp.columns):
                affected.append(action)
            elif self.store.get(session.id, prev_version, action.name) is None:
                affected.append(action)  # previous result already evicted
            else:
                carried.append(action.name)
                continue
            pp = self._plan_candidates(
                session.id,
                prev_version,
                action.name,
                footprints[action.name],
                prev_fp,
                delta,
                prev_vis.get(action.name, {}),
            )
            if pp is not None:
                partial[action.name] = pp
        if not carried and not partial:
            return full
        return _Plan(
            prev_version,
            ordered_names,
            affected,
            carried,
            footprints,
            partial=partial,
            records=record_sinks(affected),
        )

    def _plan_candidates(
        self,
        session_id: str,
        prev_version: tuple,
        name: str,
        fp: Footprint,
        prev_fp: Footprint,
        delta: Delta,
        prev_vis: "dict[str, Any]",
    ) -> "_PartialPlan | None":
        """Candidate-level partition for one rerun action, or None.

        Degrades to whole-action granularity (None) when either pass's
        footprint lacks candidate entries or an entry set contains
        duplicate identities (two candidates hashing to one ``vis_key``
        would make the carry ambiguous).  A candidate is carried only when
        both its previous and current declared column sets miss the delta,
        its intent flag is clear (or intent did not change), and at least
        one piece of prior state — a score record or a displayed Vis — is
        actually available to reuse.
        """
        entries = fp.candidates()
        prev_entries = prev_fp.candidates()
        if entries is None or prev_entries is None:
            return None
        keys = [e.vis_key for e in entries]
        if len(set(keys)) != len(keys):
            return None
        prev_by_key: dict[str, Any] = {}
        for e in prev_entries:
            if e.vis_key in prev_by_key:
                return None
            prev_by_key[e.vis_key] = e
        prior: "dict[str, CandidatePrior]" = {}
        rerun = 0
        for e in entries:
            pe = prev_by_key.get(e.vis_key)
            if pe is None:
                rerun += 1  # new to the search space this pass
                continue
            if delta.intent_changed and (e.intent or pe.intent):
                rerun += 1
                continue
            if e.columns is None or pe.columns is None:
                rerun += 1  # unknown read set: never carry
                continue
            if delta.touches(e.columns | pe.columns):
                rerun += 1
                continue
            approx = score = None
            record = self.store.get(
                session_id, prev_version, candidate_entry(name, e.vis_key)
            )
            if record is not None:
                payload = record["payload"]
                approx = payload.get("approx")
                score = payload.get("score")
            vis = prev_vis.get(e.vis_key)
            if approx is None and score is None and vis is None:
                rerun += 1  # nothing reusable: same cost as affected
                continue
            prior[e.vis_key] = CandidatePrior(approx=approx, score=score, vis=vis)
        if not prior:
            return None
        return _PartialPlan(prior, rerun)

    # ------------------------------------------------------------------
    # The pass itself (runs on a pool worker, background band)
    # ------------------------------------------------------------------
    def _run_pass(
        self, session: "Session", version: tuple, cancel: threading.Event
    ) -> str:
        """One (possibly partial) recommendation pass at ``version``."""
        started = time.perf_counter()
        with telemetry.span("precompute.pass", session=session.id) as pass_span:
            result = self._run_pass_inner(session, version, cancel, pass_span)
            pass_span.attrs["result"] = result
        if result == "completed":
            telemetry.histogram(
                "lux_precompute_pass_seconds",
                "completed precompute pass wall-clock",
            ).observe(time.perf_counter() - started)
        return result

    def _run_pass_inner(
        self,
        session: "Session",
        version: tuple,
        cancel: threading.Event,
        pass_span: telemetry.Span,
    ) -> str:
        if cancel.is_set() or session.version != version:
            self._bump("stale")
            return "stale"
        started = time.perf_counter()
        with session.lock:
            if cancel.is_set() or session.version != version:
                self._bump("stale")
                return "stale"
            frame = session.frame
            prev_recs = frame._recs_cache
            prev_recs_version = frame._recs_version
            try:
                with session.overlay():
                    phase_t0 = time.perf_counter()
                    metadata = frame.metadata
                    _observe_phase("metadata", time.perf_counter() - phase_t0)
                    applicable = default_registry.applicable(frame)
                    plan = self._plan(
                        session,
                        version,
                        frame,
                        metadata,
                        applicable,
                        prev_recs,
                        prev_recs_version,
                    )
                    pass_span.attrs["rerun"] = len(plan.affected)
                    pass_span.attrs["carried"] = len(plan.carried)
                    pass_span.attrs["partial"] = len(plan.partial)
                    phase_t0 = time.perf_counter()
                    recs = run_actions(
                        plan.affected,
                        frame,
                        metadata,
                        cancel=cancel,
                        priors={
                            n: pp.prior for n, pp in plan.partial.items()
                        }
                        or None,
                        records=plan.records or None,
                    )
                    payloads = serialize_recommendations(recs)
                    _observe_phase("actions", time.perf_counter() - phase_t0)
            except PassCancelled:
                self._bump("cancelled")
                return "cancelled"
            except Exception as exc:
                self._bump("failed")
                telemetry.get_logger("precompute").warning(
                    "pass_failed", session=session.id, error=str(exc)
                )
                warnings.warn(f"precompute pass failed: {exc}", LuxWarning)
                return "failed"
            if cancel.is_set() or session.version != version:
                # Cancelled late (e.g. the session closed mid-pass — its
                # store entries were already dropped and must not be
                # re-inserted) or completed against data that no longer
                # exists (the mutation's own trigger scheduled a redo).
                self._bump("stale")
                return "stale"
            phase_t0 = time.perf_counter()
            self._publish(session, version, plan, recs, payloads, prev_recs,
                          prev_recs_version)
            if self._snapshots is not None:
                # Still under session.lock (reentrant), so the snapshot
                # captures exactly the state this pass published; save()
                # handles the interval rate limit and contains failures.
                self._snapshots.save(session)
            _observe_phase("publish", time.perf_counter() - phase_t0)
            self._record_pass_duration(time.perf_counter() - started)
            self._bump("completed")
            return "completed"

    def _record_pass_duration(self, duration_s: float) -> None:
        """Fold one completed pass into the Retry-After EWMA."""
        with self._lock:
            if self._avg_pass_s is None:
                self._avg_pass_s = duration_s
            else:
                self._avg_pass_s = 0.7 * self._avg_pass_s + 0.3 * duration_s

    def _publish(
        self,
        session: "Session",
        version: tuple,
        plan: _Plan,
        recs: RecommendationSet,
        payloads: dict[str, Any],
        prev_recs: "RecommendationSet | None",
        prev_recs_version: tuple,
    ) -> None:
        """Land one completed pass: carry, store, memoize, reset deltas."""
        carried_ok = True
        for name in plan.carried:
            if not self.store.carry(session.id, plan.prev_version, version, name):
                # Evicted between planning and publish: the pass cannot be
                # served whole at this version (put_pass skips the
                # manifest), so reads fall back to a foreground pass.
                carried_ok = False
                self._bump("carry_misses")
        # Partially rerun actions land as origin "mixed" with a per-vis
        # provenance map ("carried" for candidates reused from the prior).
        origins: dict[str, str] = {}
        vis_origins: dict[str, dict[str, str]] = {}
        for name, pp in plan.partial.items():
            recmap = plan.records.get(name) or {}
            shown = {
                key: ("carried" if key in pp.prior else "precompute")
                for key, rec in recmap.items()
                if rec.get("displayed")
            }
            if "carried" in shown.values():
                origins[name] = "mixed"
                vis_origins[name] = shown
        self.store.put_pass(
            session.id,
            version,
            payloads,
            origin="precompute",
            manifest=plan.ordered_names,
            origins=origins or None,
            vis_origins=vis_origins or None,
        )
        # Per-candidate score records: fresh ones for every executed
        # action, carried ones for fully carried actions (best effort —
        # these are advisory, so misses are not counted or retried).
        for name, recmap in plan.records.items():
            for key, rec in recmap.items():
                self.store.put(
                    session.id, version, candidate_entry(name, key), rec
                )
        if plan.prev_version is not None:
            for name in plan.carried:
                fp = plan.footprints.get(name)
                entries = fp.candidates() if fp is not None else None
                for e in entries or ():
                    self.store.carry(
                        session.id,
                        plan.prev_version,
                        version,
                        candidate_entry(name, e.vis_key),
                    )
        self._refresh_memoized(
            session, version, plan, recs, prev_recs, prev_recs_version
        )
        with self._lock:
            self._counters["actions_rerun"] += len(plan.affected)
            self._counters["actions_carried"] += len(plan.carried)
            for pp in plan.partial.values():
                self._counters["candidates_rerun"] += pp.rerun
                self._counters["candidates_carried"] += len(pp.prior)
            if plan.carried or plan.partial:
                self._counters["incremental_passes"] += 1
            state = self._states.get(session.id)
            if state is not None and carried_ok:
                state.last_version = version
                state.footprints = plan.footprints
                if state.delta_version is not None and _covers(
                    version, state.delta_version
                ):
                    # Everything accumulated is covered by this pass; a
                    # mutation racing the publish keeps its delta.
                    state.delta = None
                    state.delta_version = None

    def _refresh_memoized(
        self,
        session: "Session",
        version: tuple,
        plan: _Plan,
        recs: RecommendationSet,
        prev_recs: "RecommendationSet | None",
        prev_recs_version: tuple,
    ) -> None:
        """Refresh the frame's memoized set so in-process prints are free.

        Only when the session runs under stock config: overlay-shaped
        results (say top_k=5) must not masquerade as the frame's plain
        recommendations to non-service readers holding the adopted frame.
        On incremental passes the carried VisLists are merged in from the
        previous memoized set; if that is unavailable, memoization is
        simply skipped (store reads stay warm regardless).
        """
        if session.overrides:
            return
        frame = session.frame
        if not plan.carried:
            merged = recs
        else:
            if prev_recs is None or prev_recs_version != plan.prev_version:
                return
            if not all(name in prev_recs._results for name in plan.carried):
                return
            merged = RecommendationSet()
            merged._expected = len(plan.ordered_names)
            for name in plan.ordered_names:
                if name in recs._results:
                    merged._put(name, recs._results[name])
                elif name in prev_recs._results:
                    merged._put(name, prev_recs._results[name])
                else:  # pragma: no cover - ordered ⊆ affected ∪ carried
                    merged._expected -= 1
        frame._recs_cache = merged
        frame._recs_version = version
        frame._recs_fresh = True

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until no timer is armed and no pass is in flight."""
        end = time.monotonic() + timeout
        while time.monotonic() < end:
            with self._lock:
                busy = (
                    bool(self._timers)
                    or bool(self._deferred)
                    or any(
                        not i.future.done() for i in self._inflight.values()
                    )
                )
            if not busy:
                return True
            time.sleep(0.005)
        return False

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "watched": len(self._unsubscribe),
                "timers_armed": len(self._timers),
                "in_flight": sum(
                    1 for i in self._inflight.values() if not i.future.done()
                ),
                "backlog_depth": self._backlog_locked(),
                "queue_limit": self.queue_limit(),
                "deferred_pending": len(self._deferred),
                "avg_pass_ms": round((self._avg_pass_s or 0.0) * 1e3, 3),
                **self._counters,
            }

    def close(self) -> None:
        """Cancel all timers and in-flight passes, drop all watches."""
        with self._lock:
            unsubs = list(self._unsubscribe.values())
            timers = list(self._timers.values())
            inflight = list(self._inflight.values())
            self._unsubscribe.clear()
            self._timers.clear()
            self._inflight.clear()
            self._states.clear()
            self._deferred.clear()
            self._debounce_armed.clear()
        for unsubscribe in unsubs:
            unsubscribe()
        for timer in timers:
            timer.cancel()
        for item in inflight:
            item.cancel.set()
            item.future.cancel()
