"""Worker side of the sharded service tier.

The horizontal story (ROADMAP item 1): sessions are partitioned across N
worker *processes* by a consistent hash of the session id
(:func:`shard_for`), each worker owning a full single-process service
stack — one :class:`~repro.service.session.SessionManager`, one
:class:`~repro.service.precompute.PrecomputeEngine`, one
:class:`~repro.service.store.ResultStore`, its own worker pool — so heavy
recommendation passes for different sessions land on different cores
instead of different threads behind one GIL.

This module is everything that runs *inside* a worker (plus the request
vocabulary the single-process HTTP backend shares):

- :func:`shard_for` — the routing hash.  Deliberately **not** Python's
  builtin ``hash`` (salted per process by ``PYTHONHASHSEED``): routing
  must agree between a supervisor and every worker it ever spawns, across
  restarts, or a restarted worker would restore sessions the router sends
  elsewhere.
- :class:`ShardService` — a dict-request → dict-response dispatcher over
  one SessionManager.  It is transport-free (unit tests drive it
  in-process, no sockets, no spawn), with every service exception encoded
  as a structured error the supervisor re-raises verbatim — so the HTTP
  status mapping is identical whether a request ran locally or crossed a
  process boundary.
- :func:`serve_connection` — the worker's RPC loop: length-prefixed JSON
  frames over a ``multiprocessing`` pipe (``send_bytes``/``recv_bytes``
  do the framing), requests dispatched onto a small thread pool so one
  slow foreground pass cannot head-of-line-block the worker's reads,
  responses written under a lock and matched by request id.
- :func:`worker_main` — the spawn entry point: applies the supervisor's
  config snapshot, restores this shard's slice of the snapshot directory
  (warm recovery), and serves until a ``shutdown`` request (which flushes
  snapshots) or pipe EOF (supervisor died).

Recommendation payloads cross the pipe pre-serialized (``payload_json``):
the supervisor forwards the bytes to the HTTP client without ever parsing
the (potentially large) spec payloads, keeping the router thin enough
that reads/s scale with worker count instead of saturating the parent's
GIL.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, NoReturn

from ..core import pool, telemetry
from ..core.config import config
from ..core.errors import LuxError
from ..core.executor.cache import computation_cache
from ..dataframe.io import read_csv_string
from . import metrics as service_metrics
from .precompute import QueueSaturated
from .session import Session, SessionManager

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.connection import Connection

__all__ = [
    "RequestError",
    "ShardService",
    "WorkerUnreachable",
    "create_session_from_body",
    "healthz_payload",
    "serve_connection",
    "shard_for",
    "worker_main",
]


def shard_for(session_id: str, n_shards: int) -> int:
    """Stable shard index for a session id (identical in every process)."""
    if n_shards <= 1:
        return 0
    digest = hashlib.blake2b(
        session_id.encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % n_shards


class RequestError(Exception):
    """A client error with an HTTP status, transport-independent.

    Raised by the shared request helpers and by backends; the HTTP layer
    maps it straight to ``(status, {"error": message})``.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class WorkerUnreachable(LuxError):
    """A worker process did not answer (dead, or past the RPC timeout).

    The HTTP layer maps this to **503** with a short ``Retry-After`` —
    the supervisor restarts crashed workers, so the shard usually comes
    back warm within seconds.
    """


# ----------------------------------------------------------------------
# Request vocabulary shared by the local backend and the worker
# ----------------------------------------------------------------------
def _datasets() -> dict[str, Callable[..., Any]]:
    """Bundled dataset name -> generator taking an optional row cap."""
    from ..data import (
        make_airbnb,
        make_communities,
        make_covid_stringency,
        make_hpi,
    )
    from ..data.synthetic import SCENARIOS, make_scenario

    def airbnb(rows: int | None = None) -> Any:
        return make_airbnb(n_rows=int(rows or 10_000))

    def wrap(maker: Callable[[], Any]) -> Callable[..., Any]:
        def build(rows: int | None = None) -> Any:
            frame = maker()
            if rows and len(frame) > int(rows):
                frame = frame.head(int(rows))
            return frame

        return build

    def scenario(name: str) -> Callable[..., Any]:
        def build(rows: int | None = None) -> Any:
            return make_scenario(name, n_rows=int(rows) if rows else None)

        return build

    makers: dict[str, Callable[..., Any]] = {
        "hpi": wrap(make_hpi),
        "covid": wrap(make_covid_stringency),
        "communities": wrap(make_communities),
        "airbnb": airbnb,
    }
    # The load-harness scenario matrix rides along as synthetic-<name>
    # datasets (optional ``rows`` sets the frame size).
    for name in SCENARIOS:
        makers[f"synthetic-{name}"] = scenario(name)
    return makers


def create_session_from_body(
    manager: SessionManager, body: dict[str, Any]
) -> Session:
    """The ``POST /sessions`` body -> a registered session.

    Shared by the single-process backend and the worker so a create
    behaves identically on both sides of the pipe.  ``session_id`` is the
    supervisor's pre-assigned id (it must pick the id *before* routing —
    the id determines the shard); absent, the manager generates one.
    """
    dataset = body.get("dataset")
    csv_text = body.get("csv")
    if bool(dataset) == bool(csv_text):
        raise RequestError(400, "provide exactly one of 'dataset' or 'csv'")
    if dataset:
        makers = _datasets()
        if dataset not in makers:
            raise RequestError(
                404,
                f"unknown dataset {dataset!r}; available: {sorted(makers)}",
            )
        frame = makers[dataset](body.get("rows"))
    else:
        from ..core.frame import LuxDataFrame

        frame = read_csv_string(str(csv_text), frame_cls=LuxDataFrame)
    return manager.create(
        frame,
        overrides=body.get("config"),
        intent=body.get("intent"),
        session_id=body.get("session_id"),
    )


def apply_mutate_body(session: Session, body: dict[str, Any]) -> None:
    """Validate and apply a ``/mutate`` body (shared both sides)."""
    column = body.get("column")
    if not isinstance(column, str) or not column:
        raise RequestError(400, "provide 'column' (string) to mutate")
    values = body.get("values")
    if values is not None and not isinstance(values, list):
        raise RequestError(400, "'values' must be a JSON array")
    session.mutate(column, values)


def healthz_payload(manager: SessionManager) -> dict[str, Any]:
    """One process's liveness stanza (pool / caches / manager stats)."""
    return {
        "status": "ok",
        "pid": os.getpid(),
        "pool": pool.stats(),
        "computation_cache": computation_cache.stats(),
        # Per-route / per-pass latency summaries from the live histograms
        # (this process only; the supervisor adds its own router-side view).
        "telemetry": service_metrics.summaries(),
        **manager.stats(),
    }


# ----------------------------------------------------------------------
# Error encoding across the pipe
# ----------------------------------------------------------------------
def encode_error(exc: BaseException) -> dict[str, Any]:
    """Exception -> JSON-safe error record (mirrors the HTTP mapping)."""
    if isinstance(exc, RequestError):
        return {"kind": "api", "status": exc.status, "message": str(exc)}
    if isinstance(exc, QueueSaturated):
        return {
            "kind": "saturated",
            "retry_after_s": exc.retry_after_s,
            "message": str(exc),
        }
    if isinstance(exc, KeyError):
        message = str(exc.args[0]) if exc.args else "not found"
        return {"kind": "not_found", "message": message}
    if isinstance(exc, (LuxError, ValueError)):
        return {"kind": "bad_request", "message": str(exc)}
    return {"kind": "internal", "message": f"{type(exc).__name__}: {exc}"}


def raise_error(error: dict[str, Any]) -> NoReturn:
    """Re-raise a worker's encoded error in the supervisor process.

    The reconstructed exception types are exactly what the HTTP layer's
    except-ladder already maps, so shard mode needs no parallel status
    table that could drift from the single-process one.
    """
    kind = error.get("kind")
    message = error.get("message", "worker error")
    if kind == "api":
        raise RequestError(int(error.get("status", 500)), message)
    if kind == "saturated":
        raise QueueSaturated(int(error.get("retry_after_s", 1)))
    if kind == "not_found":
        raise KeyError(message)
    if kind == "bad_request":
        raise ValueError(message)
    if kind == "unreachable":
        raise WorkerUnreachable(message)
    raise RuntimeError(message)


# ----------------------------------------------------------------------
# The worker service
# ----------------------------------------------------------------------
class ShardService:
    """Dispatches dict requests onto one worker's SessionManager.

    Transport-free by design: :func:`serve_connection` feeds it frames
    from the supervisor pipe, tests call :meth:`handle` directly.  Every
    response is ``{"ok": True, "result": ...}`` or ``{"ok": False,
    "error": {...}}`` (see :func:`encode_error`).
    """

    def __init__(
        self,
        manager: SessionManager,
        shard_index: int = 0,
        n_shards: int = 1,
    ) -> None:
        self.manager = manager
        self.shard_index = shard_index
        self.n_shards = n_shards
        self._methods: dict[str, Callable[[dict[str, Any]], Any]] = {
            "ping": self._ping,
            "create": self._create,
            "list": self._list,
            "info": self._info,
            "close": self._close,
            "intent": self._intent,
            "mutate": self._mutate,
            "recommendations": self._recommendations,
            "healthz": self._healthz,
            "wait_idle": self._wait_idle,
            "metrics": self._metrics,
            "trace": self._trace,
            "shutdown": self._shutdown,
        }

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        method = request.get("method")
        handler = self._methods.get(method)  # type: ignore[arg-type]
        if handler is None:
            return {
                "ok": False,
                "error": {
                    "kind": "bad_request",
                    "message": f"unknown RPC method {method!r}",
                },
            }
        params = request.get("params") or {}
        # Adopt the caller's trace context (propagated inside the request
        # frame) so worker-side spans stitch to the supervisor's request.
        trace_ctx = request.get("trace")
        if not isinstance(trace_ctx, dict):
            trace_ctx = None
        started = time.perf_counter()
        with telemetry.trace_context(trace_ctx):
            with telemetry.span(
                "rpc.handle", method=str(method), shard=self.shard_index
            ) as rpc_span:
                session_id = params.get("session")
                if session_id:
                    rpc_span.attrs["session"] = str(session_id)
                try:
                    response = {"ok": True, "result": handler(params)}
                except Exception as exc:
                    response = {"ok": False, "error": encode_error(exc)}
                trace_id = rpc_span.trace_id
        telemetry.histogram(
            "lux_rpc_handle_seconds",
            "worker-side RPC handling latency by method",
            ("method",),
        ).observe(time.perf_counter() - started, (str(method),))
        if trace_ctx is not None and trace_ctx.get("id"):
            # Echo the trace id in the response envelope; the frame codec
            # preserves envelope keys on both the embedded and raw paths.
            response["trace"] = trace_id
        return response

    # -- methods -------------------------------------------------------
    def _session(self, params: dict[str, Any]) -> Session:
        return self.manager.get(str(params.get("session")))

    def _ping(self, _params: dict[str, Any]) -> dict[str, Any]:
        return {
            "pid": os.getpid(),
            "shard": self.shard_index,
            "n_shards": self.n_shards,
            "sessions": len(self.manager.ids()),
        }

    def _create(self, params: dict[str, Any]) -> dict[str, Any]:
        # Admission before any work, same as the HTTP route: a rejected
        # create must not even build the frame.
        self.manager.engine.admit()
        return create_session_from_body(self.manager, params).info()

    def _list(self, _params: dict[str, Any]) -> dict[str, Any]:
        return {"sessions": self.manager.ids()}

    def _info(self, params: dict[str, Any]) -> dict[str, Any]:
        return self._session(params).info()

    def _close(self, params: dict[str, Any]) -> dict[str, Any]:
        session_id = str(params.get("session"))
        if not self.manager.close(session_id):
            raise RequestError(404, f"no such session: {session_id!r}")
        return {"closed": session_id}

    def _intent(self, params: dict[str, Any]) -> dict[str, Any]:
        session = self._session(params)
        self.manager.engine.admit()
        session.set_intent(params.get("intent"))
        return session.info()

    def _mutate(self, params: dict[str, Any]) -> dict[str, Any]:
        session = self._session(params)
        self.manager.engine.admit()
        apply_mutate_body(session, params)
        return session.info()

    def _recommendations(self, params: dict[str, Any]) -> dict[str, Any]:
        session = self._session(params)
        action = params.get("action")
        try:
            response = session.recommendations(
                action=action, v1=bool(params.get("v1"))
            )
        except KeyError:
            raise RequestError(404, f"no such action: {action!r}") from None
        # Pre-serialized passthrough: the supervisor forwards these bytes
        # to the HTTP client without parsing the payload structure.
        return {"payload_json": json.dumps(response)}

    def _healthz(self, _params: dict[str, Any]) -> dict[str, Any]:
        return {**healthz_payload(self.manager), "shard": self.shard_index}

    def _wait_idle(self, params: dict[str, Any]) -> dict[str, Any]:
        timeout = float(params.get("timeout", 30.0))
        return {"idle": self.manager.engine.wait_idle(timeout)}

    def _metrics(self, _params: dict[str, Any]) -> dict[str, Any]:
        """This worker's full registry snapshot (merged by the supervisor)."""
        return {"snapshot": service_metrics.collect_process(), "shard": self.shard_index}

    def _trace(self, params: dict[str, Any]) -> dict[str, Any]:
        """Recent spans for one session (or the whole ring) on this worker."""
        session_id = params.get("session")
        if session_id:
            self.manager.get(str(session_id))  # KeyError -> not_found
        limit = int(params.get("limit", 100))
        return {
            "spans": telemetry.spans(
                session_id=str(session_id) if session_id else None, limit=limit
            ),
            "shard": self.shard_index,
        }

    def _shutdown(self, _params: dict[str, Any]) -> dict[str, Any]:
        # The actual manager shutdown happens in serve_connection after
        # the acknowledgement is written (the flush can take a while and
        # the supervisor should not block on it to learn we heard it).
        return {"stopping": True}


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
#: Separator between a response envelope and a raw pre-serialized payload
#: within one pipe frame.  ``json.dumps`` escapes every control character,
#: so an encoded envelope can never contain a literal NUL byte.
_RAW_SEP = b"\x00"


def encode_frame(response: dict[str, Any]) -> bytes:
    """Encode one response frame, hoisting a pre-serialized payload.

    A result of exactly ``{"payload_json": "<json text>"}`` is framed as
    ``envelope NUL payload`` instead of being embedded in the envelope.
    Embedding would JSON-escape the (potentially megabytes-large) payload
    string a second time and force the supervisor to parse it back out —
    doubling the serialization cost of every recommendation read, the
    tier's hottest path.
    """
    result = response.get("result")
    if (
        isinstance(result, dict)
        and len(result) == 1
        and isinstance(result.get("payload_json"), str)
    ):
        envelope = {k: v for k, v in response.items() if k != "result"}
        envelope["raw"] = "payload_json"
        return (
            json.dumps(envelope, separators=(",", ":")).encode("utf-8")
            + _RAW_SEP
            + result["payload_json"].encode("utf-8")
        )
    return json.dumps(response, separators=(",", ":")).encode("utf-8")


def decode_frame(data: bytes) -> dict[str, Any]:
    """Inverse of :func:`encode_frame`; the raw payload stays unparsed."""
    head, sep, tail = data.partition(_RAW_SEP)
    response = json.loads(head.decode("utf-8"))
    if sep:
        key = response.pop("raw", "payload_json")
        response["result"] = {key: tail.decode("utf-8")}
    return response


# ----------------------------------------------------------------------
# RPC loop
# ----------------------------------------------------------------------
def serve_connection(
    conn: "Connection", service: ShardService, threads: int | None = None
) -> None:
    """Serve length-prefixed JSON RPC frames until shutdown or EOF.

    Requests run on a small thread pool so reads and healthz probes are
    answered while a foreground pass occupies another request thread;
    responses are written under a lock (frames must not interleave) and
    carry the request's ``id`` back for the supervisor to match.
    """
    write_lock = threading.Lock()

    def reply(request_id: Any, response: dict[str, Any]) -> None:
        data = encode_frame({"id": request_id, **response})
        with write_lock:
            conn.send_bytes(data)

    def dispatch(request: dict[str, Any]) -> None:
        try:
            reply(request.get("id"), service.handle(request))
        except (OSError, ValueError):  # pipe gone: the supervisor died
            pass

    executor = ThreadPoolExecutor(
        max_workers=threads or 4, thread_name_prefix="shard-rpc"
    )
    try:
        while True:
            try:
                raw = conn.recv_bytes()
            except (EOFError, OSError):
                break  # supervisor closed its end (or died): exit quietly
            try:
                request = json.loads(raw.decode("utf-8"))
            except ValueError:
                continue  # a torn frame is dropped, never fatal
            if request.get("method") == "shutdown":
                reply(request.get("id"), service.handle(request))
                break
            executor.submit(dispatch, request)
    finally:
        executor.shutdown(wait=True)
        try:
            service.manager.shutdown()  # flushes snapshots when configured
        finally:
            conn.close()


def worker_main(
    conn: "Connection",
    shard_index: int,
    n_shards: int,
    base_config: dict[str, Any],
    snapshot_dir: str | None = None,
) -> None:
    """Spawn entry point for one worker process.

    Applies the supervisor's config snapshot (spawned children start from
    defaults, not the parent's live settings), restores this shard's
    slice of the snapshot directory — warm recovery — and serves RPC
    until shutdown.  SIGINT is ignored: a Ctrl-C on the supervisor's
    process group must tear down top-down (graceful shutdown RPC), not
    kill workers mid-snapshot.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    config.restore(base_config)
    snapshots = None
    if snapshot_dir:
        from .persist import SnapshotStore

        snapshots = SnapshotStore(snapshot_dir)
    manager = SessionManager(snapshots=snapshots)
    service_metrics.register_service_gauges(manager)
    if snapshots is not None:
        manager.restore_sessions(shard=shard_index, n_shards=n_shards)
    service = ShardService(manager, shard_index=shard_index, n_shards=n_shards)
    serve_connection(conn, service)
