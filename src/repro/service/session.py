"""Session registry: one analyst, one dataframe, one config overlay.

A :class:`Session` is the unit of isolation in the recommendation service.
It owns a :class:`~repro.core.frame.LuxDataFrame` (with its history and
intent), a *frozen* per-session config overlay applied around every pass
through :func:`~repro.core.config.config_overlay` — ending the era of
sessions clobbering the module-level singleton — and a version handle
``(data_version, intent_epoch)`` that keys everything derived from the
frame's current state.

Reads go store-first: :meth:`Session.recommendations` returns straight
from the :class:`~repro.service.store.ResultStore` when the background
precompute engine already ran a pass at the current version (a dictionary
lookup — zero executor work), and falls back to a synchronous foreground
pass that back-fills the store otherwise.

:class:`SessionManager` wires the three service pieces together (registry,
store, precompute engine) and is what the HTTP API holds.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from ..core import telemetry
from ..core.config import config, thread_overlay
from ..core.errors import LuxWarning
from ..core.frame import LuxDataFrame
from ..dataframe import DataFrame
from ..vis.vegalite import spec_payload
from .provenance import Provenance
from .store import MANIFEST

if TYPE_CHECKING:  # pragma: no cover
    from .persist import SnapshotStore
    from .precompute import PrecomputeEngine
    from .store import ResultStore

__all__ = ["Session", "SessionManager", "serialize_recommendations"]


def serialize_recommendations(recs: Any) -> dict[str, Any]:
    """RecommendationSet -> per-action JSON payloads (the wire format).

    Shared by the foreground read path and the precompute engine so a
    store entry is byte-identical no matter which path produced it.
    """
    payloads: dict[str, Any] = {}
    for name in recs.keys():
        vislist = recs[name]
        payloads[name] = {
            "count": len(vislist),
            "specs": [
                spec_payload(vis.spec, vis.score)
                for vis in vislist
                if vis.spec is not None
            ],
        }
    return payloads


class Session:
    """One analyst's live context inside the service."""

    def __init__(
        self,
        session_id: str,
        frame: LuxDataFrame,
        overrides: Mapping[str, Any] | None = None,
        store: "ResultStore | None" = None,
    ) -> None:
        self.id = session_id
        self.frame = frame
        #: Frozen at creation; every pass for this session runs under it.
        self.overrides: dict[str, Any] = config.validate_overrides(
            overrides or {}
        )
        self.store = store
        self.created_at = time.time()
        #: Serializes this session's passes (foreground vs background) so
        #: two passes never interleave writes to the frame's memoized
        #: metadata/recommendation state.
        self.lock = threading.RLock()
        #: Lazily-rehydrated snapshot results: ``(path, version)`` set by
        #: a snapshot restore, consumed by the first read.
        self._pending_results: "tuple[Any, tuple[int, int]] | None" = None  # guarded-by: lock

    # ------------------------------------------------------------------
    @property
    def version(self) -> tuple[int, int]:
        """The state everything derived from this session is keyed on."""
        return (
            getattr(self.frame, "_data_version", 0),
            getattr(self.frame, "_intent_epoch", 0),
        )

    def overlay(self, **extra: Any):
        """This session's config scope (overrides + pass-time settings).

        Streaming is forced off inside service passes: the service's
        always-on path *is* the background mechanism, and a pass must be
        complete when it lands in the store.

        Built on :func:`thread_overlay`, not :func:`config_overlay`:
        session passes run concurrently on worker threads and never
        mutate base config, so the global snapshot/restore half of
        ``config_overlay`` would only add a hazard (a pass exiting could
        revert a base mutation another thread made mid-pass).  The
        overrides were validated at session creation.
        """
        merged = dict(self.overrides)
        merged["streaming"] = False
        merged.update(extra)
        return thread_overlay(merged)

    # ------------------------------------------------------------------
    def set_intent(self, intent: Any) -> None:
        """Set (or clear with None/[]) the frame's intent, session-scoped."""
        with self.lock, self.overlay():
            if intent:
                self.frame.intent = intent
            else:
                self.frame.clear_intent()

    @property
    def intent(self) -> list[Any]:
        return self.frame.intent

    # ------------------------------------------------------------------
    def mutate(self, column: str, values: Any = None) -> None:
        """Apply one column-level mutation, session-scoped.

        ``values=None`` *touches* ``column`` (rewrites it to itself — a
        content no-op that still bumps the data version and arms the
        precompute engine; the load harness's write op).  With ``values``
        the column is assigned (or created) from the given sequence.
        Emits the same column-level delta any in-process mutation would,
        so incremental precompute scopes the rerun correctly.
        """
        with self.lock, self.overlay():
            frame = self.frame
            if values is None:
                if column not in frame.columns:
                    raise KeyError(f"no such column: {column!r}")
                frame[column] = frame[column]
            else:
                if len(values) != len(frame):
                    raise ValueError(
                        f"values length {len(values)} != frame rows {len(frame)}"
                    )
                frame[column] = values

    # ------------------------------------------------------------------
    def recommendations(
        self,
        action: str | None = None,
        compute: bool = True,
        v1: bool = False,
    ) -> dict[str, Any] | None:
        """Recommendations at the frame's current version, store-first.

        Returns a response dict with per-action payloads and freshness
        provenance.  When the store holds a complete pass at the current
        version the call performs no executor work at all; otherwise (and
        only when ``compute`` is True) a foreground pass runs under this
        session's overlay and back-fills the store.  ``action`` narrows
        the response to one action (``KeyError`` when no such action
        exists for this frame); ``compute=False`` returns None on a store
        miss (the probe the benchmarks and tests use).  ``v1`` selects the
        typed ``provenance`` envelope instead of the legacy ``freshness``
        dict — same payloads, richer (per-vis) provenance.
        """
        with telemetry.span("session.read", session=self.id) as read_span:
            response = self._recommendations_inner(action, compute, v1)
            if response is not None:
                envelope = response.get("provenance") or response["freshness"]
                read_span.attrs["origin"] = envelope["origin"]
            return response

    def _recommendations_inner(
        self, action: str | None, compute: bool, v1: bool = False
    ) -> dict[str, Any] | None:
        self._hydrate_results()
        version = self.version
        if action is not None:
            # A completed pass knows its action set: reject unknown names
            # without burning a foreground recomputation per request.
            manifest = (
                self.store.get(self.id, version, MANIFEST)
                if self.store is not None
                else None
            )
            if manifest is not None and action not in manifest["payload"]:
                raise KeyError(f"no such action: {action!r}")
        stored = self._read_store(version, action, v1)
        if stored is not None:
            return stored
        if not compute:
            return None
        self._compute_foreground(version)
        stored = self._read_store(self.version, action, v1)
        if stored is not None:
            return stored
        # Store rejected the payload (budget) or the frame mutated while
        # computing: respond from the freshly memoized pass directly.
        payloads = self._serialize_current()
        if action is not None:
            if action not in payloads:
                raise KeyError(f"no such action: {action!r}")
            payloads = {action: payloads[action]}
        return self._respond(self.version, payloads, origin="foreground", v1=v1)

    def _hydrate_results(self) -> None:
        """Load snapshotted pass results into the store, exactly once.

        A restored session carries ``(results_path, version)``; the first
        read at that version re-inserts the saved records (original
        origins and ``computed_at``) so warm recovery serves store hits,
        not foreground passes.  A session that mutated before its first
        read skips rehydration — the saved pass no longer matches the
        current version and a fresh pass is already scheduled.
        """
        with self.lock:
            marker = self._pending_results
            if marker is None:
                return
            self._pending_results = None
            path, version = marker
            if self.store is None or self.version != version:
                return
            try:
                saved = json.loads(Path(path).read_text("utf-8"))
                self.store.restore_pass(
                    self.id, version, saved["records"], saved.get("manifest")
                )
            except Exception as exc:
                telemetry.get_logger("session").warning(
                    "rehydration_failed", session=self.id, error=str(exc)
                )
                warnings.warn(
                    f"result rehydration failed for {self.id}: {exc}", LuxWarning
                )

    def _read_store(
        self, version: tuple[int, int], action: str | None, v1: bool = False
    ) -> dict[str, Any] | None:
        if self.store is None:
            return None
        if action is not None:
            record = self.store.get(self.id, version, action)
            if record is None:
                return None
            records = {action: record}
        else:
            records = self.store.get_pass(self.id, version)
            if records is None:
                return None
        origins = {name: r["origin"] for name, r in records.items()}
        distinct = set(origins.values())
        # An incremental pass mixes recomputed ("precompute") and
        # carried-forward ("carried") actions; the overall origin reports
        # "mixed" and the per-action map tells the two apart.
        origin = distinct.pop() if len(distinct) == 1 else "mixed"
        payloads = {name: r["payload"] for name, r in records.items()}
        oldest = min(r["computed_at"] for r in records.values())
        vis_origins = {
            name: r["vis_origins"]
            for name, r in records.items()
            if r.get("vis_origins")
        }
        return self._respond(
            version,
            payloads,
            origin=origin,
            computed_at=oldest,
            origins=origins,
            vis_origins=vis_origins or None,
            v1=v1,
        )

    def _respond(
        self,
        version: tuple[int, int],
        payloads: dict[str, Any],
        origin: str,
        computed_at: float | None = None,
        origins: dict[str, str] | None = None,
        vis_origins: "dict[str, dict[str, str]] | None" = None,
        v1: bool = False,
    ) -> dict[str, Any]:
        # One typed envelope feeds both wire shapes: the legacy surface
        # renders it as the historical "freshness" dict, /v1/ serializes
        # the full per-action / per-vis structure.
        provenance = Provenance.build(
            version,
            payloads,
            origin,
            computed_at=computed_at,
            origins=origins,
            vis_origins=vis_origins,
        )
        response = {
            "session": self.id,
            "data_version": list(version),
            "actions": payloads,
        }
        if v1:
            response["provenance"] = provenance.to_payload()
        else:
            response["freshness"] = provenance.legacy_freshness()
        return response

    # ------------------------------------------------------------------
    def _compute_foreground(self, version: tuple[int, int]) -> None:
        """Synchronous pass under the session overlay; back-fills the store."""
        with telemetry.span(
            "session.foreground_pass", session=self.id
        ), self.lock, self.overlay():
            # The property path memoizes on the frame and carries the
            # repr's failproofing (a broken action yields an empty tab).
            self.frame.recommendations
            payloads = self._serialize_current()
            if self.store is not None and self.version == version:
                self.store.put_pass(
                    self.id, version, payloads, origin="foreground"
                )

    def _serialize_current(self) -> dict[str, Any]:
        """Serialize the frame's memoized recommendation set per action."""
        return serialize_recommendations(self.frame.recommendations)

    # ------------------------------------------------------------------
    def info(self) -> dict[str, Any]:
        return {
            "session": self.id,
            "rows": len(self.frame),
            "columns": self.frame.columns,
            "data_version": list(self.version),
            "intent": [repr(c) for c in self.frame.intent],
            "overrides": dict(self.overrides),
            "created_at": self.created_at,
            "history_length": len(self.frame.history),
        }

    def __repr__(self) -> str:
        return (
            f"<Session {self.id} rows={len(self.frame)} "
            f"version={self.version} overrides={self.overrides}>"
        )


class SessionManager:
    """The service's root object: registry + store + precompute engine."""

    def __init__(
        self,
        store: "ResultStore | None" = None,
        engine: "PrecomputeEngine | None" = None,
        snapshots: "SnapshotStore | None" = None,
    ) -> None:
        from .persist import SnapshotStore
        from .precompute import PrecomputeEngine
        from .store import ResultStore

        self.store = store if store is not None else ResultStore()
        if snapshots is None and config.service_snapshot_dir:
            snapshots = SnapshotStore(config.service_snapshot_dir)
        self.snapshots = snapshots
        self.engine = (
            engine
            if engine is not None
            else PrecomputeEngine(self.store, snapshots=self.snapshots)
        )
        self._sessions: dict[str, Session] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def create(
        self,
        data: DataFrame | LuxDataFrame,
        overrides: Mapping[str, Any] | None = None,
        intent: Any = None,
        session_id: str | None = None,
    ) -> Session:
        """Register a new session; schedules its first always-on pass.

        Plain frames are wrapped into :class:`LuxDataFrame` (copying —
        sessions own their data); LuxDataFrames are adopted as-is so an
        in-process caller keeps a live handle for mutations.
        """
        if not isinstance(data, LuxDataFrame):
            frame = LuxDataFrame({name: data[name] for name in data.columns})
        else:
            frame = data
        session = Session(
            session_id or uuid.uuid4().hex[:12],
            frame,
            overrides=overrides,
            store=self.store,
        )
        with self._lock:
            if session.id in self._sessions:
                raise ValueError(f"session id {session.id!r} already exists")
            self._sessions[session.id] = session
        if intent:
            session.set_intent(intent)
        # Always-on: start computing before the analyst first looks.
        self.engine.watch(session)
        if config.precompute:
            self.engine.schedule(session, immediate=True)
        return session

    def restore_sessions(
        self, shard: int | None = None, n_shards: int | None = None
    ) -> list[str]:
        """Adopt every snapshotted session (optionally one shard's slice).

        The restored frame arrives at its saved version with its saved
        intent/history; the stored pass rehydrates lazily on first read.
        No pass is scheduled here — the state on disk *is* the last
        completed pass, so scheduling one would only burn a cold pass per
        restored session at startup.  Sessions already live (or belonging
        to another shard) are skipped.
        """
        if self.snapshots is None:
            return []
        from .shard import shard_for

        restored: list[str] = []
        for session_id in self.snapshots.ids():
            if (
                shard is not None
                and n_shards
                and shard_for(session_id, n_shards) != shard
            ):
                continue
            with self._lock:
                if session_id in self._sessions:
                    continue
            session = self.snapshots.restore_session(session_id, store=self.store)
            if session is None:
                continue
            with self._lock:
                if session_id in self._sessions:  # pragma: no cover - race
                    continue
                self._sessions[session_id] = session
            self.engine.watch(session)
            restored.append(session_id)
        return restored

    def get(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise KeyError(f"no such session: {session_id!r}")
        return session

    def close(self, session_id: str, drop_snapshot: bool = True) -> bool:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            return False
        self.engine.unwatch(session)
        self.store.drop_session(session_id)
        if drop_snapshot and self.snapshots is not None:
            # An explicitly closed session is gone for good; only a
            # shutdown flush keeps snapshots (drop_snapshot=False) so the
            # next process can recover them.
            self.snapshots.drop(session_id)
        return True

    def ids(self) -> list[str]:
        with self._lock:
            return list(self._sessions)

    def sessions(self) -> list[Session]:
        with self._lock:
            return list(self._sessions.values())

    def shutdown(self) -> None:
        """Flush snapshots, close every session, stop the engine's timers.

        The flush is forced (rate limit bypassed) and captures the
        *current* frame state — possibly newer than the last published
        pass, in which case the snapshot is frame-only at that version
        and the restored session's first read runs one foreground pass.
        Snapshots are kept (``drop_snapshot=False``): surviving a
        shutdown is their entire point.
        """
        for session in self.sessions():
            if self.snapshots is not None:
                self.snapshots.save(session, force=True)
            self.close(session.id, drop_snapshot=False)
        self.engine.close()

    def stats(self) -> dict[str, Any]:
        out = {
            "sessions": len(self.ids()),
            "store": self.store.stats(),
            "precompute": self.engine.stats(),
        }
        if self.snapshots is not None:
            out["snapshots"] = self.snapshots.stats()
        return out
