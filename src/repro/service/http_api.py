"""Stdlib-only HTTP JSON API over the recommendation service.

No framework, no new dependencies: :class:`http.server.ThreadingHTTPServer`
with one handler class routing a small REST surface onto a *backend* —
either a :class:`LocalBackend` (one in-process
:class:`~repro.service.session.SessionManager`, the default) or a
:class:`ShardBackend` (a :class:`~repro.service.supervisor.Supervisor`
routing sessions across N worker processes; see
:mod:`repro.service.shard`).  The HTTP surface is identical in both
modes — clients cannot tell how many processes serve them.

Endpoints
---------
``POST /sessions``
    Create a session.  JSON body fields: ``dataset`` (a bundled generator:
    hpi | airbnb | covid | communities, or a load-test scenario
    ``synthetic-{wide,highcard,skewed,datetime,nullheavy}``) *or*
    ``csv`` (inline CSV text);
    optional ``rows`` (airbnb size), ``config`` (per-session overlay, e.g.
    ``{"top_k": 5}``), ``intent``.  Returns the session info.
``GET /sessions`` / ``GET /sessions/{id}``
    List session ids / one session's info.
``POST /sessions/{id}/intent``
    Body ``{"intent": [...]}`` (empty/null clears).  Steers the session
    and re-arms its background pass.
``POST /sessions/{id}/mutate``
    Body ``{"column": name}`` touches the column (content no-op that
    bumps the data version — the load harness's write op); with
    ``"values": [...]`` the column is assigned (or created) from the
    list.  Returns the session info at the new version.
``GET /sessions/{id}/recommendations[?action=Enhance]``
    Specs + scores + freshness.  Served from the versioned store when the
    precompute engine already ran at the current version, computed in the
    foreground otherwise.  ``freshness.origin`` is ``precompute`` /
    ``foreground`` / ``carried`` (incrementally carried forward because
    the action's inputs did not change) / ``mixed`` (an incremental pass
    combining recomputed and carried actions); ``freshness.actions`` maps
    each action to its own provenance.
``DELETE /sessions/{id}``
    Close the session, freeing its store entries and watches.
``GET /healthz``
    Liveness + pool / computation-cache / store / engine statistics,
    including the precompute backlog depth against its bound and the
    pool's per-band/per-tag queue depths.  In shard mode the top-level
    aggregates sum across workers, a ``workers`` list carries each
    worker's stanza, and a dead worker appears as a
    ``worker_unreachable`` stanza (probed under a short timeout — a
    crashed worker can never hang the health check) with the aggregate
    ``status`` degraded.

Backpressure: every mutation-facing write (session create, intent,
mutate) passes the precompute engine's admission check *before* touching
any state.  At saturation (``config.precompute_queue_limit``) the API
answers **429** with a ``Retry-After`` header instead of queueing
unboundedly; rejected writes have no side effects, so a client simply
retries after the indicated delay.  In shard mode a request routed to a
dead worker answers **503** with ``Retry-After: 1`` — the supervisor
restarts crashed workers, which recover warm from session snapshots.

Authentication: when ``config.service_auth_token`` (or the explicit
``auth_token`` constructor/CLI override) is non-empty, every route except
``/healthz`` requires ``Authorization: Bearer <token>`` and answers 401
otherwise.  An empty token (the default) disables the check for local,
single-user notebooks.

Run standalone::

    PYTHONPATH=src python -m repro.service.http_api --port 8080
    PYTHONPATH=src python -m repro.service.http_api --port 8080 \\
        --shards 4 --snapshot-dir /var/lib/lux/snapshots

or embed: ``server = make_server(manager, port=0); server.serve_background()``.
"""

from __future__ import annotations

import functools
import hmac
import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Callable
from urllib.parse import parse_qsl

from ..core import telemetry
from ..core.config import config
from ..core.errors import LuxError
from . import metrics as service_metrics
from .precompute import QueueSaturated
from .session import SessionManager
from .shard import (
    RequestError,
    WorkerUnreachable,
    apply_mutate_body,
    create_session_from_body,
    healthz_payload,
)

if TYPE_CHECKING:  # pragma: no cover
    from .supervisor import Supervisor

__all__ = [
    "LocalBackend",
    "ServiceServer",
    "ShardBackend",
    "main",
    "make_server",
]

_SESSION_PATH = re.compile(r"^/sessions/([0-9a-zA-Z_-]+)(/[a-z_]+)?$")

#: Versioned API prefix.  ``/v1/...`` is the canonical surface; the
#: unprefixed paths below remain as deprecated aliases so existing
#: clients keep working unchanged.
V1_PREFIX = "/v1"

#: Legacy (unprefixed) route template -> canonical ``/v1/`` successor.
#: Requests matching a left-hand template still serve their historical
#: response shape and additionally carry ``Deprecation: true`` plus a
#: ``Link: <successor>; rel="successor-version"`` header.  The only
#: *behavioral* difference between the surfaces is the recommendations
#: response: ``/v1/`` serves the typed ``provenance`` envelope where the
#: legacy route serves the frozen ``freshness`` dict.
LEGACY_ALIASES = {
    "/healthz": "/v1/healthz",
    "/metrics": "/v1/metrics",
    "/sessions": "/v1/sessions",
    "/sessions/{id}": "/v1/sessions/{id}",
    "/sessions/{id}/intent": "/v1/sessions/{id}/intent",
    "/sessions/{id}/mutate": "/v1/sessions/{id}/mutate",
    "/sessions/{id}/recommendations": "/v1/sessions/{id}/recommendations",
    "/sessions/{id}/trace": "/v1/sessions/{id}/trace",
}


def _legacy_template(path: str) -> str | None:
    """The alias-table template a concrete legacy path matches, if any."""
    if path in LEGACY_ALIASES:
        return path
    match = _SESSION_PATH.match(path)
    if match:
        template = "/sessions/{id}" + (match.group(2) or "")
        if template in LEGACY_ALIASES:
            return template
    return None

# The HTTP layer's client-error type is the transport-neutral one the
# shard vocabulary defines, so worker-side errors cross the pipe and land
# in the same except-arm as locally raised ones.
_ApiError = RequestError


def authenticated(handler: Callable[..., Any]) -> Callable[..., Any]:
    """Route decorator: reject the request unless it bears the token.

    Every handler ``_resolve`` can return must carry this or :func:`public`
    — an explicit per-route decision that ``tools/check`` (rule
    ``route-auth``) enforces, so a new endpoint cannot silently ship open.
    """

    @functools.wraps(handler)
    def guarded(self: "_Handler", *args: Any) -> Any:
        self._require_auth()
        return handler(self, *args)

    return guarded


def public(handler: Callable[..., Any]) -> Callable[..., Any]:
    """Route decorator marking an endpoint as deliberately unauthenticated."""
    return handler


def measured(route: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Route decorator naming the request metric's route label.

    Every handler ``_resolve`` can return must carry this — an explicit
    per-route decision ``tools/check`` (rule ``telemetry-hygiene``)
    enforces, mirroring ``route-auth``.  The decorator only records the
    label; the count/latency/status observation happens centrally in
    ``_route`` once the final status is known, so error statuses (401,
    404, 429, 503...) are attributed to the route that produced them.
    Keep it outermost (above the auth decorator) so even rejected
    requests carry their route label.
    """

    def wrap(handler: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(handler)
        def labelled(self: "_Handler", *args: Any) -> Any:
            self._route_name = route
            return handler(self, *args)

        return labelled

    return wrap


class LocalBackend:
    """Single-process backend: every route hits one SessionManager."""

    def __init__(self, manager: SessionManager) -> None:
        self.manager = manager
        service_metrics.register_service_gauges(manager)

    def healthz(self) -> dict[str, Any]:
        return healthz_payload(self.manager)

    def metrics_text(self) -> str:
        return service_metrics.render_prometheus(service_metrics.collect_process())

    def trace(self, session_id: str, limit: int = 100) -> dict[str, Any]:
        self.manager.get(session_id)  # KeyError -> 404
        return {
            "session": session_id,
            "spans": telemetry.spans(session_id=session_id, limit=limit),
        }

    def list_sessions(self) -> dict[str, Any]:
        return {"sessions": self.manager.ids()}

    def create(self, body: dict[str, Any]) -> dict[str, Any]:
        # Admission before any work: a rejected create must not even
        # build the frame, let alone register a session.
        self.manager.engine.admit()
        return create_session_from_body(self.manager, body).info()

    def info(self, session_id: str) -> dict[str, Any]:
        return self.manager.get(session_id).info()

    def close(self, session_id: str) -> dict[str, Any]:
        if not self.manager.close(session_id):
            raise _ApiError(404, f"no such session: {session_id!r}")
        return {"closed": session_id}

    def set_intent(self, session_id: str, intent: Any) -> dict[str, Any]:
        session = self.manager.get(session_id)
        self.manager.engine.admit()
        session.set_intent(intent)
        return session.info()

    def mutate(self, session_id: str, body: dict[str, Any]) -> dict[str, Any]:
        session = self.manager.get(session_id)
        self.manager.engine.admit()
        apply_mutate_body(session, body)
        return session.info()

    def recommendations(
        self, session_id: str, action: str | None, v1: bool = False
    ) -> dict[str, Any]:
        session = self.manager.get(session_id)
        try:
            return session.recommendations(action=action, v1=v1)
        except KeyError:
            raise _ApiError(404, f"no such action: {action!r}") from None

    def shutdown(self) -> None:
        self.manager.shutdown()


class ShardBackend:
    """Multi-process backend: routes each request to the owning worker.

    Thin by design — the supervisor does the routing, the workers do the
    work, and recommendation payloads pass through as pre-serialized
    JSON strings so this process never parses them.
    """

    def __init__(self, supervisor: "Supervisor") -> None:
        self.supervisor = supervisor
        self.manager = None  # no in-process sessions in shard mode

    def healthz(self) -> dict[str, Any]:
        return self.supervisor.healthz()

    def metrics_text(self) -> str:
        return service_metrics.render_prometheus(self.supervisor.metrics())

    def trace(self, session_id: str, limit: int = 100) -> dict[str, Any]:
        return self.supervisor.trace(session_id, limit)

    def list_sessions(self) -> dict[str, Any]:
        return {"sessions": self.supervisor.session_ids()}

    def create(self, body: dict[str, Any]) -> dict[str, Any]:
        return self.supervisor.create_session(body)

    def info(self, session_id: str) -> dict[str, Any]:
        return self.supervisor.info(session_id)

    def close(self, session_id: str) -> dict[str, Any]:
        return self.supervisor.close_session(session_id)

    def set_intent(self, session_id: str, intent: Any) -> dict[str, Any]:
        return self.supervisor.set_intent(session_id, intent)

    def mutate(self, session_id: str, body: dict[str, Any]) -> dict[str, Any]:
        return self.supervisor.mutate(session_id, body)

    def recommendations(
        self, session_id: str, action: str | None, v1: bool = False
    ) -> str:
        return self.supervisor.recommendations(session_id, action, v1=v1)

    def shutdown(self) -> None:
        self.supervisor.stop()


class _Handler(BaseHTTPRequestHandler):
    """Routes one request onto the server's backend."""

    server: "ServiceServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(
        self,
        status: int,
        body: "dict[str, Any] | str",
        headers: dict[str, str] | None = None,
    ) -> None:
        # Keep-alive discipline: any declared request body must be fully
        # consumed before the response, or its bytes would be parsed as
        # the connection's next request line (error paths can respond
        # before the route ever called _body()).
        self._read_body_bytes()
        # A str body is already-serialized JSON (shard mode forwards the
        # worker's bytes untouched — the router never parses payloads),
        # unless a handler overrides Content-Type (the /metrics
        # exposition is plain text).
        if isinstance(body, str):
            data = body.encode("utf-8")
        else:
            data = json.dumps(body).encode("utf-8")
        self._status_sent = status
        extra = dict(headers or {})
        successor = getattr(self, "_deprecated_successor", None)
        if successor is not None:
            # RFC 8594-style deprecation advertisement on the legacy
            # (unprefixed) alias surface, pointing at the /v1/ route.
            extra.setdefault("Deprecation", "true")
            extra.setdefault("Link", f'<{successor}>; rel="successor-version"')
        content_type = extra.pop("Content-Type", "application/json")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        request_id = getattr(self, "_request_id", "")
        if request_id:
            self.send_header("X-Request-Id", request_id)
        self.send_header("Content-Length", str(len(data)))
        for name, value in extra.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _read_body_bytes(self) -> bytes:
        """The raw request body, read exactly once per request."""
        cached = getattr(self, "_body_cache", None)
        if cached is None:
            length = int(self.headers.get("Content-Length") or 0)
            cached = self.rfile.read(length) if length else b""
            self._body_cache = cached
        return cached

    def _body(self) -> dict[str, Any]:
        raw = self._read_body_bytes()
        if not raw:
            return {}
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except ValueError:
            raise _ApiError(400, "request body is not valid JSON") from None
        if not isinstance(parsed, dict):
            raise _ApiError(400, "request body must be a JSON object")
        return parsed

    def _require_auth(self) -> None:
        """Raise 401 unless the request bears the configured token."""
        token = self.server.auth_token
        if not token:
            return
        header = self.headers.get("Authorization") or ""
        if not hmac.compare_digest(header, f"Bearer {token}"):
            raise _ApiError(401, "missing or invalid bearer token")

    def _route(self, method: str) -> None:
        # One handler instance serves every request on a keep-alive
        # connection; the body cache (and the per-request telemetry
        # state) is strictly per-request.
        self._body_cache = None
        self._route_name = "unrouted"
        self._status_sent = 0
        self._v1 = False
        self._deprecated_successor: str | None = None
        started = time.perf_counter()
        with telemetry.span(
            "http.request", method=method, path=self.path
        ) as root:
            # The trace id doubles as the request id (X-Request-Id
            # response header), correlating client logs with spans.
            self._request_id = root.trace_id
            try:
                handler, args = self._resolve(method)
                if args and isinstance(args[0], str):
                    root.attrs["session"] = args[0]
                self._send(*handler(*args))
            except _ApiError as exc:
                self._send(exc.status, {"error": str(exc)})
            except QueueSaturated as exc:
                # Backpressure: the precompute backlog is at its bound, so the
                # write was refused before any state changed.  Degrade
                # gracefully — tell the client when to come back.
                self._send(
                    429,
                    {"error": str(exc), "retry_after_s": exc.retry_after_s},
                    headers={"Retry-After": str(exc.retry_after_s)},
                )
            except WorkerUnreachable as exc:
                # Shard mode: the owning worker is dead or timed out.  The
                # supervisor restarts crashed workers (warm, from snapshots),
                # so tell the client to retry shortly rather than erroring.
                self._send(
                    503,
                    {"error": str(exc), "retry_after_s": 1},
                    headers={"Retry-After": "1"},
                )
            except KeyError as exc:
                self._send(404, {"error": str(exc.args[0]) if exc.args else "not found"})
            except (LuxError, ValueError) as exc:
                self._send(400, {"error": str(exc)})
            except Exception as exc:  # never let a bug kill the connection
                self._send(500, {"error": f"{type(exc).__name__}: {exc}"})
            root.attrs["route"] = self._route_name
            root.attrs["status"] = self._status_sent
        # Central per-route observation: runs after the except-ladder so
        # error statuses land in the same labelled series as successes.
        service_metrics.observe_request(
            self._route_name, method, self._status_sent, time.perf_counter() - started
        )

    def _resolve(self, method: str) -> tuple[Callable[..., Any], tuple]:
        path, _, query = self.path.partition("?")
        params = _parse_query(query)
        if path.startswith(V1_PREFIX + "/"):
            self._v1 = True
            path = path[len(V1_PREFIX):]
        else:
            # Unprefixed surface: serve it if (and only if) the alias
            # table lists it, and stamp the deprecation headers.
            template = _legacy_template(path)
            if template is not None:
                self._deprecated_successor = LEGACY_ALIASES[template]
        if path == "/healthz" and method == "GET":
            return self._healthz, ()
        if path == "/metrics" and method == "GET":
            return self._metrics, ()
        if path == "/sessions":
            if method == "GET":
                return self._list_sessions, ()
            if method == "POST":
                return self._create_session, ()
        match = _SESSION_PATH.match(path)
        if match:
            session_id, sub = match.group(1), match.group(2)
            if sub is None:
                if method == "GET":
                    return self._session_info, (session_id,)
                if method == "DELETE":
                    return self._close_session, (session_id,)
            elif sub == "/intent" and method == "POST":
                return self._set_intent, (session_id,)
            elif sub == "/mutate" and method == "POST":
                return self._mutate, (session_id,)
            elif sub == "/recommendations" and method == "GET":
                return self._recommendations, (session_id, params)
            elif sub == "/trace" and method == "GET":
                return self._session_trace, (session_id, params)
        raise _ApiError(404, f"no route for {method} {path}")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._route("DELETE")

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    @measured("healthz")
    @public
    def _healthz(self) -> tuple[int, dict[str, Any]]:
        return 200, self.server.backend.healthz()

    @measured("metrics")
    @public
    def _metrics(self) -> tuple[int, str, dict[str, str]]:
        # Public like /healthz: the exposition carries no session data
        # and scrapers rarely support per-target auth headers cleanly.
        return (
            200,
            self.server.backend.metrics_text(),
            {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
        )

    @measured("sessions_list")
    @authenticated
    def _list_sessions(self) -> tuple[int, dict[str, Any]]:
        return 200, self.server.backend.list_sessions()

    @measured("sessions_create")
    @authenticated
    def _create_session(self) -> tuple[int, dict[str, Any]]:
        return 201, self.server.backend.create(self._body())

    @measured("session_info")
    @authenticated
    def _session_info(self, session_id: str) -> tuple[int, dict[str, Any]]:
        return 200, self.server.backend.info(session_id)

    @measured("session_close")
    @authenticated
    def _close_session(self, session_id: str) -> tuple[int, dict[str, Any]]:
        return 200, self.server.backend.close(session_id)

    @measured("intent")
    @authenticated
    def _set_intent(self, session_id: str) -> tuple[int, dict[str, Any]]:
        return 200, self.server.backend.set_intent(
            session_id, self._body().get("intent")
        )

    @measured("mutate")
    @authenticated
    def _mutate(self, session_id: str) -> tuple[int, dict[str, Any]]:
        return 200, self.server.backend.mutate(session_id, self._body())

    @measured("recommendations")
    @authenticated
    def _recommendations(
        self, session_id: str, params: dict[str, str]
    ) -> tuple[int, "dict[str, Any] | str"]:
        return 200, self.server.backend.recommendations(
            session_id, params.get("action"), v1=self._v1
        )

    @measured("trace")
    @authenticated
    def _session_trace(
        self, session_id: str, params: dict[str, str]
    ) -> tuple[int, dict[str, Any]]:
        limit = int(params.get("limit", "100"))
        return 200, self.server.backend.trace(session_id, limit)


def _parse_query(query: str) -> dict[str, str]:
    return dict(parse_qsl(query))


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one backend (local or sharded)."""

    daemon_threads = True

    def __init__(
        self,
        manager: SessionManager | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        auth_token: str | None = None,
        supervisor: "Supervisor | None" = None,
    ) -> None:
        super().__init__((host, port), _Handler)
        if supervisor is not None:
            self.backend: "LocalBackend | ShardBackend" = ShardBackend(
                supervisor
            )
        else:
            self.backend = LocalBackend(manager or SessionManager())
        # Back-compat attribute: tests and benches reach the in-process
        # manager through the server.  None when running sharded.
        self.manager = self.backend.manager
        self.verbose = verbose
        # Resolved once at construction: handler threads are spawned by the
        # server, so a thread-local config overlay on the caller would never
        # reach them anyway — the explicit parameter is the override path.
        self.auth_token = (
            config.service_auth_token if auth_token is None else auth_token
        )
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_background(self) -> "ServiceServer":
        """Serve on a daemon thread (tests, notebooks); returns self."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="lux-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def make_server(
    manager: SessionManager | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    auth_token: str | None = None,
    supervisor: "Supervisor | None" = None,
) -> ServiceServer:
    """Build a server (port 0 picks an ephemeral port; see ``.address``).

    Pass ``supervisor`` to serve a sharded multi-process tier; otherwise
    the server wraps an in-process ``manager`` (created when omitted).
    """
    return ServiceServer(manager, host, port, verbose, auth_token, supervisor)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Always-on recommendation service (stdlib HTTP JSON API)"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument(
        "--auth-token",
        default=None,
        help="Bearer token required on every route except /healthz "
        "(default: config.service_auth_token; empty disables auth)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="Number of worker processes (default: config.service_shards; "
        "0 serves single-process)",
    )
    parser.add_argument(
        "--snapshot-dir",
        default=None,
        help="Session snapshot directory for warm restarts "
        "(default: config.service_snapshot_dir; empty disables)",
    )
    args = parser.parse_args(argv)
    shards = args.shards if args.shards is not None else int(config.service_shards)
    supervisor = None
    if shards > 0:
        from .supervisor import Supervisor

        supervisor = Supervisor(
            n_workers=shards, snapshot_dir=args.snapshot_dir
        )
    elif args.snapshot_dir:
        # Single-process with persistence: route the knob through config
        # so the default SessionManager below picks it up.  Base mutation
        # is deliberate — this CLI owns the process and its threads.
        config.service_snapshot_dir = args.snapshot_dir  # check: ignore[config-mutation]
    server = make_server(
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        auth_token=args.auth_token,
        supervisor=supervisor,
    )
    mode = f"{shards} shard workers" if supervisor else "single-process"
    print(f"serving on {server.address} ({mode}; Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.backend.shutdown()
        server.server_close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
