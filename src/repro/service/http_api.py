"""Stdlib-only HTTP JSON API over the recommendation service.

No framework, no new dependencies: :class:`http.server.ThreadingHTTPServer`
with one handler class routing a small REST surface onto a
:class:`~repro.service.session.SessionManager`.

Endpoints
---------
``POST /sessions``
    Create a session.  JSON body fields: ``dataset`` (a bundled generator:
    hpi | airbnb | covid | communities, or a load-test scenario
    ``synthetic-{wide,highcard,skewed,datetime,nullheavy}``) *or*
    ``csv`` (inline CSV text);
    optional ``rows`` (airbnb size), ``config`` (per-session overlay, e.g.
    ``{"top_k": 5}``), ``intent``.  Returns the session info.
``GET /sessions`` / ``GET /sessions/{id}``
    List session ids / one session's info.
``POST /sessions/{id}/intent``
    Body ``{"intent": [...]}`` (empty/null clears).  Steers the session
    and re-arms its background pass.
``POST /sessions/{id}/mutate``
    Body ``{"column": name}`` touches the column (content no-op that
    bumps the data version — the load harness's write op); with
    ``"values": [...]`` the column is assigned (or created) from the
    list.  Returns the session info at the new version.
``GET /sessions/{id}/recommendations[?action=Enhance]``
    Specs + scores + freshness.  Served from the versioned store when the
    precompute engine already ran at the current version, computed in the
    foreground otherwise.  ``freshness.origin`` is ``precompute`` /
    ``foreground`` / ``carried`` (incrementally carried forward because
    the action's inputs did not change) / ``mixed`` (an incremental pass
    combining recomputed and carried actions); ``freshness.actions`` maps
    each action to its own provenance.
``DELETE /sessions/{id}``
    Close the session, freeing its store entries and watches.
``GET /healthz``
    Liveness + pool / computation-cache / store / engine statistics,
    including the precompute backlog depth against its bound and the
    pool's per-band/per-tag queue depths.

Backpressure: every mutation-facing write (session create, intent,
mutate) passes the precompute engine's admission check *before* touching
any state.  At saturation (``config.precompute_queue_limit``) the API
answers **429** with a ``Retry-After`` header instead of queueing
unboundedly; rejected writes have no side effects, so a client simply
retries after the indicated delay.

Authentication: when ``config.service_auth_token`` (or the explicit
``auth_token`` constructor/CLI override) is non-empty, every route except
``/healthz`` requires ``Authorization: Bearer <token>`` and answers 401
otherwise.  An empty token (the default) disables the check for local,
single-user notebooks.

Run standalone::

    PYTHONPATH=src python -m repro.service.http_api --port 8080

or embed: ``server = make_server(manager, port=0); server.serve_background()``.
"""

from __future__ import annotations

import functools
import hmac
import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qsl

from ..core import pool
from ..core.config import config
from ..core.errors import LuxError
from ..core.executor.cache import computation_cache
from ..dataframe.io import read_csv_string
from .precompute import QueueSaturated
from .session import SessionManager

__all__ = ["ServiceServer", "make_server", "main"]

def _datasets() -> dict[str, Callable[..., Any]]:
    """Bundled dataset name -> generator taking an optional row cap."""
    from ..data import (
        make_airbnb,
        make_communities,
        make_covid_stringency,
        make_hpi,
    )
    from ..data.synthetic import SCENARIOS, make_scenario

    def airbnb(rows: int | None = None) -> Any:
        return make_airbnb(n_rows=int(rows or 10_000))

    def wrap(maker: Callable[[], Any]) -> Callable[..., Any]:
        def build(rows: int | None = None) -> Any:
            frame = maker()
            if rows and len(frame) > int(rows):
                frame = frame.head(int(rows))
            return frame

        return build

    def scenario(name: str) -> Callable[..., Any]:
        def build(rows: int | None = None) -> Any:
            return make_scenario(name, n_rows=int(rows) if rows else None)

        return build

    makers: dict[str, Callable[..., Any]] = {
        "hpi": wrap(make_hpi),
        "covid": wrap(make_covid_stringency),
        "communities": wrap(make_communities),
        "airbnb": airbnb,
    }
    # The load-harness scenario matrix rides along as synthetic-<name>
    # datasets (optional ``rows`` sets the frame size).
    for name in SCENARIOS:
        makers[f"synthetic-{name}"] = scenario(name)
    return makers


_SESSION_PATH = re.compile(r"^/sessions/([0-9a-zA-Z_-]+)(/[a-z_]+)?$")


class _ApiError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def authenticated(handler: Callable[..., Any]) -> Callable[..., Any]:
    """Route decorator: reject the request unless it bears the token.

    Every handler ``_resolve`` can return must carry this or :func:`public`
    — an explicit per-route decision that ``tools/check`` (rule
    ``route-auth``) enforces, so a new endpoint cannot silently ship open.
    """

    @functools.wraps(handler)
    def guarded(self: "_Handler", *args: Any) -> Any:
        self._require_auth()
        return handler(self, *args)

    return guarded


def public(handler: Callable[..., Any]) -> Callable[..., Any]:
    """Route decorator marking an endpoint as deliberately unauthenticated."""
    return handler


class _Handler(BaseHTTPRequestHandler):
    """Routes one request onto the server's SessionManager."""

    server: "ServiceServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(
        self,
        status: int,
        body: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        # Keep-alive discipline: any declared request body must be fully
        # consumed before the response, or its bytes would be parsed as
        # the connection's next request line (error paths can respond
        # before the route ever called _body()).
        self._read_body_bytes()
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _read_body_bytes(self) -> bytes:
        """The raw request body, read exactly once per request."""
        cached = getattr(self, "_body_cache", None)
        if cached is None:
            length = int(self.headers.get("Content-Length") or 0)
            cached = self.rfile.read(length) if length else b""
            self._body_cache = cached
        return cached

    def _body(self) -> dict[str, Any]:
        raw = self._read_body_bytes()
        if not raw:
            return {}
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except ValueError:
            raise _ApiError(400, "request body is not valid JSON") from None
        if not isinstance(parsed, dict):
            raise _ApiError(400, "request body must be a JSON object")
        return parsed

    def _require_auth(self) -> None:
        """Raise 401 unless the request bears the configured token."""
        token = self.server.auth_token
        if not token:
            return
        header = self.headers.get("Authorization") or ""
        if not hmac.compare_digest(header, f"Bearer {token}"):
            raise _ApiError(401, "missing or invalid bearer token")

    def _route(self, method: str) -> None:
        # One handler instance serves every request on a keep-alive
        # connection; the body cache is strictly per-request state.
        self._body_cache = None
        try:
            handler, args = self._resolve(method)
            self._send(*handler(*args))
        except _ApiError as exc:
            self._send(exc.status, {"error": str(exc)})
        except QueueSaturated as exc:
            # Backpressure: the precompute backlog is at its bound, so the
            # write was refused before any state changed.  Degrade
            # gracefully — tell the client when to come back.
            self._send(
                429,
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                headers={"Retry-After": str(exc.retry_after_s)},
            )
        except KeyError as exc:
            self._send(404, {"error": str(exc.args[0]) if exc.args else "not found"})
        except (LuxError, ValueError) as exc:
            self._send(400, {"error": str(exc)})
        except Exception as exc:  # never let a bug kill the connection
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _resolve(self, method: str) -> tuple[Callable[..., Any], tuple]:
        path, _, query = self.path.partition("?")
        params = _parse_query(query)
        if path == "/healthz" and method == "GET":
            return self._healthz, ()
        if path == "/sessions":
            if method == "GET":
                return self._list_sessions, ()
            if method == "POST":
                return self._create_session, ()
        match = _SESSION_PATH.match(path)
        if match:
            session_id, sub = match.group(1), match.group(2)
            if sub is None:
                if method == "GET":
                    return self._session_info, (session_id,)
                if method == "DELETE":
                    return self._close_session, (session_id,)
            elif sub == "/intent" and method == "POST":
                return self._set_intent, (session_id,)
            elif sub == "/mutate" and method == "POST":
                return self._mutate, (session_id,)
            elif sub == "/recommendations" and method == "GET":
                return self._recommendations, (session_id, params)
        raise _ApiError(404, f"no route for {method} {path}")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._route("DELETE")

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    @public
    def _healthz(self) -> tuple[int, dict[str, Any]]:
        manager = self.server.manager
        return 200, {
            "status": "ok",
            "pool": pool.stats(),
            "computation_cache": computation_cache.stats(),
            **manager.stats(),
        }

    @authenticated
    def _list_sessions(self) -> tuple[int, dict[str, Any]]:
        return 200, {"sessions": self.server.manager.ids()}

    @authenticated
    def _create_session(self) -> tuple[int, dict[str, Any]]:
        # Admission before any work: a rejected create must not even
        # build the frame, let alone register a session.
        self.server.manager.engine.admit()
        body = self._body()
        dataset = body.get("dataset")
        csv_text = body.get("csv")
        if bool(dataset) == bool(csv_text):
            raise _ApiError(
                400, "provide exactly one of 'dataset' or 'csv'"
            )
        if dataset:
            makers = _datasets()
            if dataset not in makers:
                raise _ApiError(
                    404,
                    f"unknown dataset {dataset!r}; "
                    f"available: {sorted(makers)}",
                )
            frame = makers[dataset](body.get("rows"))
        else:
            from ..core.frame import LuxDataFrame

            frame = read_csv_string(str(csv_text), frame_cls=LuxDataFrame)
        session = self.server.manager.create(
            frame,
            overrides=body.get("config"),
            intent=body.get("intent"),
        )
        return 201, session.info()

    @authenticated
    def _session_info(self, session_id: str) -> tuple[int, dict[str, Any]]:
        return 200, self.server.manager.get(session_id).info()

    @authenticated
    def _close_session(self, session_id: str) -> tuple[int, dict[str, Any]]:
        if not self.server.manager.close(session_id):
            raise _ApiError(404, f"no such session: {session_id!r}")
        return 200, {"closed": session_id}

    @authenticated
    def _set_intent(self, session_id: str) -> tuple[int, dict[str, Any]]:
        session = self.server.manager.get(session_id)
        self.server.manager.engine.admit()
        session.set_intent(self._body().get("intent"))
        return 200, session.info()

    @authenticated
    def _mutate(self, session_id: str) -> tuple[int, dict[str, Any]]:
        session = self.server.manager.get(session_id)
        self.server.manager.engine.admit()
        body = self._body()
        column = body.get("column")
        if not isinstance(column, str) or not column:
            raise _ApiError(400, "provide 'column' (string) to mutate")
        values = body.get("values")
        if values is not None and not isinstance(values, list):
            raise _ApiError(400, "'values' must be a JSON array")
        session.mutate(column, values)
        return 200, session.info()

    @authenticated
    def _recommendations(
        self, session_id: str, params: dict[str, str]
    ) -> tuple[int, dict[str, Any]]:
        session = self.server.manager.get(session_id)
        action = params.get("action")
        try:
            response = session.recommendations(action=action)
        except KeyError:
            raise _ApiError(404, f"no such action: {action!r}") from None
        return 200, response


def _parse_query(query: str) -> dict[str, str]:
    return dict(parse_qsl(query))


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one SessionManager."""

    daemon_threads = True

    def __init__(
        self,
        manager: SessionManager,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        auth_token: str | None = None,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.manager = manager
        self.verbose = verbose
        # Resolved once at construction: handler threads are spawned by the
        # server, so a thread-local config overlay on the caller would never
        # reach them anyway — the explicit parameter is the override path.
        self.auth_token = (
            config.service_auth_token if auth_token is None else auth_token
        )
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_background(self) -> "ServiceServer":
        """Serve on a daemon thread (tests, notebooks); returns self."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="lux-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def make_server(
    manager: SessionManager | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    auth_token: str | None = None,
) -> ServiceServer:
    """Build a server (port 0 picks an ephemeral port; see ``.address``)."""
    return ServiceServer(
        manager or SessionManager(), host, port, verbose, auth_token
    )


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Always-on recommendation service (stdlib HTTP JSON API)"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument(
        "--auth-token",
        default=None,
        help="Bearer token required on every route except /healthz "
        "(default: config.service_auth_token; empty disables auth)",
    )
    args = parser.parse_args(argv)
    server = make_server(
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        auth_token=args.auth_token,
    )
    print(f"serving on {server.address} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.manager.shutdown()
        server.server_close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
