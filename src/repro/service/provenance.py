"""Typed provenance envelope for recommendation responses.

One :class:`Provenance` object describes where a response's results came
from — per pass, per action, and (for candidate-level partial reruns) per
vis.  It is the single source of truth for freshness metadata: the legacy
(unprefixed) HTTP surface renders it as the historical ``freshness`` dict
(byte-identical to what ad-hoc construction produced, so existing clients
and the load harness's identity gates see no change), while the ``/v1/``
surface serializes the full typed shape via :meth:`Provenance.to_payload`.

Because the envelope is built where the response is built (inside the
worker in shard mode) and crosses the shard RPC inside the pre-serialized
``payload_json`` passthrough, the wire bytes are identical whether a
response was produced in-process or behind the supervisor — the property
the golden wire-shape test pins.

Origin vocabulary
-----------------
``precompute``
    Computed by a background pass at this exact version.
``foreground``
    Computed synchronously on the read path.
``carried``
    Not recomputed: the previous result was carried forward because the
    mutation delta missed its inputs (bit-identical by construction).
``mixed``
    Heterogeneous children — a pass combining recomputed and carried
    actions, or an action combining recomputed and carried candidates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["ActionProvenance", "Provenance"]


@dataclass(frozen=True)
class ActionProvenance:
    """Provenance of one action's payload within a response.

    ``vis`` refines a ``mixed`` action to per-vis granularity: a map from
    each displayed candidate's ``key`` (see
    :func:`~repro.vis.spec.candidate_key`, echoed in the spec payload) to
    its own origin.  None means every vis shares ``origin``.
    """

    origin: str
    vis: "dict[str, str] | None" = None

    def to_payload(self) -> dict[str, Any]:
        return {"origin": self.origin, "vis": self.vis}


@dataclass(frozen=True)
class Provenance:
    """Where one recommendation response's results came from."""

    origin: str
    computed_at: "float | None"
    data_version: int
    intent_epoch: int
    actions: "dict[str, ActionProvenance]"

    @staticmethod
    def build(
        version: "tuple[int, int]",
        payloads: Mapping[str, Any],
        origin: str,
        computed_at: "float | None" = None,
        origins: "Mapping[str, str] | None" = None,
        vis_origins: "Mapping[str, dict[str, str]] | None" = None,
    ) -> "Provenance":
        """Assemble the envelope from the read path's raw ingredients."""
        actions = {
            name: ActionProvenance(
                origins.get(name, origin) if origins else origin,
                vis_origins.get(name) if vis_origins else None,
            )
            for name in payloads
        }
        return Provenance(
            origin=origin,
            computed_at=computed_at,
            data_version=version[0],
            intent_epoch=version[1],
            actions=actions,
        )

    def to_payload(self) -> dict[str, Any]:
        """The ``/v1/`` wire shape (pinned by the golden wire-shape test)."""
        return {
            "origin": self.origin,
            "computed_at": self.computed_at,
            "data_version": self.data_version,
            "intent_epoch": self.intent_epoch,
            "actions": {
                name: ap.to_payload() for name, ap in self.actions.items()
            },
        }

    def legacy_freshness(self) -> dict[str, Any]:
        """The historical ``freshness`` dict, shape-frozen for old clients.

        Must stay byte-identical to what the pre-envelope code emitted:
        the unprefixed routes' identity gates compare these bytes across
        load conditions.
        """
        return {
            "origin": self.origin,
            "age_s": round(time.time() - (self.computed_at or time.time()), 3),
            "actions": {name: ap.origin for name, ap in self.actions.items()},
        }
