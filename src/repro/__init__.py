"""Reproduction of "Lux: Always-on Visualization Recommendations for
Exploratory Dataframe Workflows" (VLDB 2021).

Quickstart::

    import repro

    df = repro.read_csv("hpi.csv")      # a LuxDataFrame
    df                                  # always-on recommendations on print
    df.intent = ["AvrgLifeExpectancy", "Inequality"]
    df.recommendations["Enhance"]       # steered recommendations
    repro.Vis(["Age", "Education"], df) # direct visualization via intent
"""

from .core import usage_log  # noqa: F401
from .core import (
    Clause,
    Config,
    IntentError,
    LuxDataFrame,
    LuxError,
    LuxSeries,
    LuxWarning,
    Vis,
    VisList,
    config,
    config_overlay,
    read_csv,
    register_action,
    remove_action,
)

__version__ = "1.0.0"

__all__ = [
    "Clause",
    "Config",
    "IntentError",
    "LuxDataFrame",
    "LuxError",
    "LuxSeries",
    "LuxWarning",
    "Vis",
    "VisList",
    "config",
    "config_overlay",
    "dataframe",
    "read_csv",
    "usage_log",
    "register_action",
    "remove_action",
]

from . import dataframe  # noqa: E402  (re-exported subpackage)
