"""Interestingness scoring for ranking visualizations within an action.

Each score is in [0, 1] (larger = more interesting) and dispatches on the
structure of the spec, following Lux's published heuristics:

- scatter of two measures ............ |Pearson correlation|
- histogram of one measure ........... normalized |skewness|
- bar of counts over a dimension ..... deviation from the uniform distribution
- bar/line of an aggregated measure .. dispersion of the aggregate across groups
- filtered visualization ............. L2 deviation of the filtered
  distribution from the unfiltered one (the SeeDB-style measure)
- colored scatter .................... between-group separation of y by color

Column access (float conversion, factorization, standardized vectors for
Pearson) routes through the executor's shared computation cache, so scoring
a whole candidate set reads each column once per frame version.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np
from scipy import stats

from ..dataframe import DataFrame
from ..vis.spec import VisSpec
from .executor.base import Executor
from .executor.cache import computation_cache as _cache

__all__ = ["needs_executed_data", "score_vis"]

#: Marks whose score reads executor-processed records (group-by outputs).
_EXECUTED_MARKS = ("bar", "line", "area", "geoshape", "rect")


def needs_executed_data(spec: VisSpec) -> bool:
    """Whether :func:`score_vis` requires processed records for ``spec``.

    Rankers batch-execute exactly these specs up front (via
    ``Executor.execute_many``) so scoring never falls back to one-at-a-time
    execution; statistical scores (scatter, histogram) read columns
    directly and need no processing.
    """
    return bool(spec.filters) or spec.mark in _EXECUTED_MARKS


def _clamp(x: float) -> float:
    if math.isnan(x) or math.isinf(x):
        return 0.0
    return max(0.0, min(1.0, x))


def _paired_valid(frame: DataFrame, a: str, b: str) -> tuple[np.ndarray, np.ndarray]:
    xa = _cache.to_float(frame, a)
    xb = _cache.to_float(frame, b)
    ok = ~(np.isnan(xa) | np.isnan(xb))
    return xa[ok], xb[ok]


def _pearson(frame: DataFrame, a: str, b: str) -> float:
    # Standardized vectors (computed once per frame version by the shared
    # computation cache) reduce the Correlation action's O(m^2) pairwise
    # Pearson scores to dot products.  The cache keys on a weakref to the
    # frame rather than a raw id(), so a collected frame's recycled id can
    # never alias another frame's vectors.
    za = _cache.standardized(frame, a)
    zb = _cache.standardized(frame, b)
    if za is not None and zb is not None:
        return _clamp(abs(float(np.dot(za, zb))))
    # Fallback: pairwise-complete observations when NaNs are present.
    x, y = _paired_valid(frame, a, b)
    if len(x) < 3 or x.std() == 0 or y.std() == 0:
        return 0.0
    return _clamp(abs(float(np.corrcoef(x, y)[0, 1])))


def _skewness(frame: DataFrame, attr: str) -> float:
    v = _cache.to_float(frame, attr)
    v = v[~np.isnan(v)]
    if len(v) < 3 or v.std() == 0:
        return 0.0
    skew = abs(float(stats.skew(v)))
    # Map |skew| in [0, inf) to [0, 1); |skew|=2 is already very skewed.
    return _clamp(skew / (1.0 + skew))


def _unevenness(counts: np.ndarray) -> float:
    """Deviation of a count distribution from uniform (Lux's bar score)."""
    total = counts.sum()
    if total <= 0 or len(counts) < 2:
        return 0.0
    p = counts / total
    uniform = np.full(len(p), 1.0 / len(p))
    # Normalize the L2 distance by its maximum (all mass in one bucket).
    max_dist = math.sqrt((1 - 1 / len(p)) ** 2 + (len(p) - 1) * (1 / len(p)) ** 2)
    return _clamp(float(np.linalg.norm(p - uniform)) / max_dist)


def _dispersion(values: np.ndarray) -> float:
    """Spread of an aggregated measure across groups (coeff. of variation)."""
    v = values[~np.isnan(values)]
    if len(v) < 2:
        return 0.0
    mean = abs(v.mean())
    if mean < 1e-12:
        return _clamp(float(v.std()))
    return _clamp(float(v.std() / mean))


def _group_separation(frame: DataFrame, measure: str, color: str) -> float:
    """Between-group variance fraction of ``measure`` explained by ``color``."""
    y = _cache.to_float(frame, measure)
    codes, _ = _cache.factorize(frame, color)
    ok = ~np.isnan(y) & (codes >= 0)
    y, codes = y[ok], codes[ok]
    if len(y) < 3 or y.var() == 0:
        return 0.0
    grand = y.mean()
    between = 0.0
    for g in np.unique(codes):
        grp = y[codes == g]
        between += len(grp) * (grp.mean() - grand) ** 2
    total = ((y - grand) ** 2).sum()
    return _clamp(between / total) if total > 0 else 0.0


def _filter_deviation(
    spec: VisSpec, frame: DataFrame, executor: Executor
) -> float:
    """SeeDB-style deviation: filtered vs unfiltered aggregate distribution."""
    reference = VisSpec(spec.mark, spec.encodings, filters=[])
    try:
        executor.execute(reference, frame)
    except Exception:
        return 0.0
    filtered_data = spec.data or []
    reference_data = reference.data or []
    if not filtered_data or not reference_data:
        return 0.0
    dim_key = _dimension_key(spec)
    val_key = _value_key(spec)
    if dim_key is None or val_key is None:
        return 0.0
    ref = {r.get(dim_key): r.get(val_key) for r in reference_data}
    fil = {r.get(dim_key): r.get(val_key) for r in filtered_data}
    labels = [k for k in ref if k is not None]
    if not labels:
        return 0.0
    ref_vec = np.array([_num(ref.get(k)) for k in labels], dtype=float)
    fil_vec = np.array([_num(fil.get(k)) for k in labels], dtype=float)
    ref_vec = _normalize(ref_vec)
    fil_vec = _normalize(fil_vec)
    return _clamp(float(np.linalg.norm(ref_vec - fil_vec)) / math.sqrt(2))


def _num(v: Any) -> float:
    return float(v) if isinstance(v, (int, float)) and v is not None else 0.0


def _normalize(v: np.ndarray) -> np.ndarray:
    s = v.sum()
    return v / s if s > 0 else v


def _dimension_key(spec: VisSpec) -> str | None:
    for enc in spec.encodings:
        if enc.channel in ("x", "y") and not enc.aggregate and enc.field:
            return enc.field
    return None


def _value_key(spec: VisSpec) -> str | None:
    for enc in spec.encodings:
        if enc.aggregate:
            return enc.field if enc.field else "count"
    return None


def score_vis(
    spec: VisSpec,
    frame: DataFrame,
    executor: Executor,
) -> float:
    """Score one visualization on (a sample of) ``frame``.

    The executor is used when the score needs processed data (count bars and
    filter deviation); statistical scores read columns directly.
    """
    try:
        if spec.filters:
            if spec.data is None:
                executor.execute(spec, frame)
            return _filter_deviation(spec, frame, executor)

        # This branch is only reached for unfiltered specs (the filtered
        # case returned above), so the frame is already the full subset.
        subset = frame
        x, y, color = spec.x, spec.y, spec.color
        if spec.mark in ("point", "tick"):
            if (
                color is not None
                and color.field
                and color.field_type != "quantitative"
                and y is not None
            ):
                return _group_separation(subset, y.field, color.field)
            if x is not None and y is not None and x.field and y.field:
                return _pearson(subset, x.field, y.field)
            return 0.0
        if spec.mark == "histogram":
            enc = x if x is not None and x.bin else y
            return _skewness(subset, enc.field) if enc is not None else 0.0
        if spec.mark in ("bar", "line", "area", "geoshape"):
            if spec.data is None:
                executor.execute(spec, subset)
            data = spec.data or []
            val_key = _value_key(spec)
            if val_key is None:
                return 0.0
            values = np.array([_num(r.get(val_key)) for r in data], dtype=float)
            if val_key == "count":
                return _unevenness(values)
            return _dispersion(values)
        if spec.mark == "rect":
            if spec.data is None:
                executor.execute(spec, subset)
            counts = np.array(
                [_num(r.get("count")) for r in (spec.data or [])], dtype=float
            )
            return _unevenness(counts)
    except Exception:
        # Scoring must never break the always-on display (§10.3).
        return 0.0
    return 0.0
