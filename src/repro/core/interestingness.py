"""Interestingness scoring for ranking visualizations within an action.

Each score is in [0, 1] (larger = more interesting) and dispatches on the
structure of the spec, following Lux's published heuristics:

- scatter of two measures ............ |Pearson correlation|
- histogram of one measure ........... normalized |skewness|
- bar of counts over a dimension ..... deviation from the uniform distribution
- bar/line of an aggregated measure .. dispersion of the aggregate across groups
- filtered visualization ............. L2 deviation of the filtered
  distribution from the unfiltered one (the SeeDB-style measure)
- colored scatter .................... between-group separation of y by color
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np
from scipy import stats

from ..dataframe import DataFrame
from ..vis.spec import VisSpec
from .executor.base import Executor

__all__ = ["score_vis"]


def _clamp(x: float) -> float:
    if math.isnan(x) or math.isinf(x):
        return 0.0
    return max(0.0, min(1.0, x))


def _paired_valid(frame: DataFrame, a: str, b: str) -> tuple[np.ndarray, np.ndarray]:
    xa = frame.column(a).to_float()
    xb = frame.column(b).to_float()
    ok = ~(np.isnan(xa) | np.isnan(xb))
    return xa[ok], xb[ok]


class _StandardizedCache:
    """Per-frame cache of standardized column vectors for fast correlation.

    The Correlation action scores O(m^2) attribute pairs; standardizing each
    column once reduces every pairwise Pearson to a dot product.  Entries
    key on (frame identity, content version) so wflow expiry invalidates
    them naturally.
    """

    def __init__(self, limit: int = 4) -> None:
        self._store: dict[int, tuple[int, dict[str, Any]]] = {}
        self._limit = limit

    def _frame_slot(self, frame: DataFrame) -> dict[str, Any]:
        key = id(frame)
        version = getattr(frame, "_data_version", 0)
        slot = self._store.get(key)
        if slot is None or slot[0] != version:
            if len(self._store) >= self._limit:
                self._store.pop(next(iter(self._store)))
            slot = (version, {})
            self._store[key] = slot
        return slot[1]

    def standardized(self, frame: DataFrame, name: str) -> np.ndarray | None:
        """Unit-variance, zero-mean vector; None when NaNs/constant block it."""
        cols = self._frame_slot(frame)
        if name not in cols:
            v = frame.column(name).to_float()
            if np.isnan(v).any():
                cols[name] = None
            else:
                std = v.std()
                if std == 0 or len(v) < 3:
                    cols[name] = None
                else:
                    cols[name] = (v - v.mean()) / (std * np.sqrt(len(v)))
        return cols[name]


_std_cache = _StandardizedCache()


def _pearson(frame: DataFrame, a: str, b: str) -> float:
    za = _std_cache.standardized(frame, a)
    zb = _std_cache.standardized(frame, b)
    if za is not None and zb is not None:
        return _clamp(abs(float(np.dot(za, zb))))
    # Fallback: pairwise-complete observations when NaNs are present.
    x, y = _paired_valid(frame, a, b)
    if len(x) < 3 or x.std() == 0 or y.std() == 0:
        return 0.0
    return _clamp(abs(float(np.corrcoef(x, y)[0, 1])))


def _skewness(frame: DataFrame, attr: str) -> float:
    v = frame.column(attr).to_float()
    v = v[~np.isnan(v)]
    if len(v) < 3 or v.std() == 0:
        return 0.0
    skew = abs(float(stats.skew(v)))
    # Map |skew| in [0, inf) to [0, 1); |skew|=2 is already very skewed.
    return _clamp(skew / (1.0 + skew))


def _unevenness(counts: np.ndarray) -> float:
    """Deviation of a count distribution from uniform (Lux's bar score)."""
    total = counts.sum()
    if total <= 0 or len(counts) < 2:
        return 0.0
    p = counts / total
    uniform = np.full(len(p), 1.0 / len(p))
    # Normalize the L2 distance by its maximum (all mass in one bucket).
    max_dist = math.sqrt((1 - 1 / len(p)) ** 2 + (len(p) - 1) * (1 / len(p)) ** 2)
    return _clamp(float(np.linalg.norm(p - uniform)) / max_dist)


def _dispersion(values: np.ndarray) -> float:
    """Spread of an aggregated measure across groups (coeff. of variation)."""
    v = values[~np.isnan(values)]
    if len(v) < 2:
        return 0.0
    mean = abs(v.mean())
    if mean < 1e-12:
        return _clamp(float(v.std()))
    return _clamp(float(v.std() / mean))


def _group_separation(frame: DataFrame, measure: str, color: str) -> float:
    """Between-group variance fraction of ``measure`` explained by ``color``."""
    y = frame.column(measure).to_float()
    codes, _ = frame.column(color).factorize()
    ok = ~np.isnan(y) & (codes >= 0)
    y, codes = y[ok], codes[ok]
    if len(y) < 3 or y.var() == 0:
        return 0.0
    grand = y.mean()
    between = 0.0
    for g in np.unique(codes):
        grp = y[codes == g]
        between += len(grp) * (grp.mean() - grand) ** 2
    total = ((y - grand) ** 2).sum()
    return _clamp(between / total) if total > 0 else 0.0


def _filter_deviation(
    spec: VisSpec, frame: DataFrame, executor: Executor
) -> float:
    """SeeDB-style deviation: filtered vs unfiltered aggregate distribution."""
    reference = VisSpec(spec.mark, spec.encodings, filters=[])
    try:
        executor.execute(reference, frame)
    except Exception:
        return 0.0
    filtered_data = spec.data or []
    reference_data = reference.data or []
    if not filtered_data or not reference_data:
        return 0.0
    dim_key = _dimension_key(spec)
    val_key = _value_key(spec)
    if dim_key is None or val_key is None:
        return 0.0
    ref = {r.get(dim_key): r.get(val_key) for r in reference_data}
    fil = {r.get(dim_key): r.get(val_key) for r in filtered_data}
    labels = [k for k in ref if k is not None]
    if not labels:
        return 0.0
    ref_vec = np.array([_num(ref.get(k)) for k in labels], dtype=float)
    fil_vec = np.array([_num(fil.get(k)) for k in labels], dtype=float)
    ref_vec = _normalize(ref_vec)
    fil_vec = _normalize(fil_vec)
    return _clamp(float(np.linalg.norm(ref_vec - fil_vec)) / math.sqrt(2))


def _num(v: Any) -> float:
    return float(v) if isinstance(v, (int, float)) and v is not None else 0.0


def _normalize(v: np.ndarray) -> np.ndarray:
    s = v.sum()
    return v / s if s > 0 else v


def _dimension_key(spec: VisSpec) -> str | None:
    for enc in spec.encodings:
        if enc.channel in ("x", "y") and not enc.aggregate and enc.field:
            return enc.field
    return None


def _value_key(spec: VisSpec) -> str | None:
    for enc in spec.encodings:
        if enc.aggregate:
            return enc.field if enc.field else "count"
    return None


def score_vis(
    spec: VisSpec,
    frame: DataFrame,
    executor: Executor,
) -> float:
    """Score one visualization on (a sample of) ``frame``.

    The executor is used when the score needs processed data (count bars and
    filter deviation); statistical scores read columns directly.
    """
    try:
        if spec.filters:
            if spec.data is None:
                executor.execute(spec, frame)
            return _filter_deviation(spec, frame, executor)

        subset = executor.apply_filters(frame, spec.filters)
        x, y, color = spec.x, spec.y, spec.color
        if spec.mark in ("point", "tick"):
            if (
                color is not None
                and color.field
                and color.field_type != "quantitative"
                and y is not None
            ):
                return _group_separation(subset, y.field, color.field)
            if x is not None and y is not None and x.field and y.field:
                return _pearson(subset, x.field, y.field)
            return 0.0
        if spec.mark == "histogram":
            enc = x if x is not None and x.bin else y
            return _skewness(subset, enc.field) if enc is not None else 0.0
        if spec.mark in ("bar", "line", "area", "geoshape"):
            if spec.data is None:
                executor.execute(spec, subset)
            data = spec.data or []
            val_key = _value_key(spec)
            if val_key is None:
                return 0.0
            values = np.array([_num(r.get(val_key)) for r in data], dtype=float)
            if val_key == "count":
                return _unevenness(values)
            return _dispersion(values)
        if spec.mark == "rect":
            if spec.data is None:
                executor.execute(spec, subset)
            counts = np.array(
                [_num(r.get("count")) for r in (spec.data or [])], dtype=float
            )
            return _unevenness(counts)
    except Exception:
        # Scoring must never break the always-on display (§10.3).
        return 0.0
    return 0.0
