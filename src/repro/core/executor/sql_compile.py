"""SQL rendering fragments and the consolidated batch-pass compiler.

This is the SQL half of the shared-scan story (see ``df_exec`` for the
dataframe half): a recommendation pass issues dozens of relational
operations against one frame, and running them as one-query-per-candidate
means O(candidates) scans of the base table.  This module compiles a
*filter group* — every spec in a batch sharing one filter signature — into
a single consolidated SQL pass:

- a shared-WHERE CTE materializes the filtered row set once (``WITH src
  AS MATERIALIZED (...)`` on sqlite >= 3.35, a plain CTE below), selecting
  only the columns the group's branches touch;
- every distinct GROUP BY shape becomes one ``UNION ALL`` arm (*branch*),
  and all specs sharing that shape ride along as extra aggregate columns —
  18 bar specs over 3 dimensions scan the table 3 times, not 18;
- binned histograms become branches too, via a ``CASE`` bucket expression
  over numpy-computed edges (width/offset arithmetic resolved at compile
  time from one per-group MIN/MAX stats scan), so bucket assignment is
  bit-identical to ``np.histogram`` on explicit edges (right-open bins,
  last bin closed).  Routing is cost-based: only *filtered* histograms
  join the consolidated pass (their branch rides the already-materialized
  CTE instead of paying a per-spec mask + subframe); unfiltered ones take
  the numpy path the serial executor uses — identical either way;
- scatter selections become ``LIMIT``-ed subselect arms;
- shapes the translator can't express fall back, per spec, to the
  existing per-spec path.

Branch arms are tagged with an integer branch id in their first result
column; the executor partitions the combined row stream by that tag and
each spec's *decoder* closure rebuilds exactly the records the per-spec
path would have produced — same keys, same order, same values.  sqlite
executes compound-select arms sequentially and sorts each GROUP BY arm by
its keys exactly as it would the standalone query, so batched results are
bit-identical to the serial per-spec path (the golden suite in
``tests/core/test_sql_batch.py`` holds this across every supported shape).

The low-level fragments (quoting, literals, WHERE rendering, aggregate
expressions, grouped/rect shape detection) live here so the per-spec
translator (``translate_vis_to_sql``) and the batch compiler share one
definition and can never drift apart.

Filter-semantics caveat: grouped and scatter branches compare SQL-to-SQL
with the serial path, so WHERE semantics cancel out.  Histogram branches
cross engines (the serial path delegates histograms to the dataframe
executor), so their parity additionally relies on sqlite WHERE semantics
matching the numpy mask for the typed columns this engine loads — true
for the supported ``=``/``!=``/ordering operators on numeric and text
columns (NaN loads as NULL and is excluded by both sides).
"""

from __future__ import annotations

import math
import sqlite3
from typing import Any, Callable, Sequence

import numpy as np

from ...dataframe import DataFrame
from ...vis.spec import VisSpec
from ..config import config
from ..errors import ExecutorError

__all__ = [
    "AGG_SQL",
    "GroupPlan",
    "TABLE",
    "agg_expr",
    "bucket_expr",
    "column_sql_type",
    "grouped_parts",
    "quote",
    "rect_parts",
    "sql_literal",
    "where_clause",
]

TABLE = "frame"

#: Source alias used by consolidated passes over a filtered CTE.
_SRC = "__src"

#: Arm budget per consolidated statement, under sqlite's default
#: SQLITE_MAX_COMPOUND_SELECT of 500: once reached, specs needing a *new*
#: arm fall back to the per-spec path (merges into existing arms stay
#: free), so a pathological batch degrades instead of hard-failing.
_MAX_ARMS = 450

#: Records decoded from one consolidated pass: list-of-dicts per spec.
Decoder = Callable[[list[tuple]], list[dict[str, Any]]]


def quote(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def sql_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float, np.integer, np.floating)):
        return repr(float(value) if isinstance(value, (float, np.floating)) else int(value))
    text = str(value).replace("'", "''")
    return f"'{text}'"


def where_clause(filters: Sequence[tuple[str, str, Any]]) -> str:
    if not filters:
        return ""
    parts = []
    for attr, op, value in filters:
        sql_op = {"=": "=", "!=": "<>", ">": ">", "<": "<", ">=": ">=", "<=": "<="}[op]
        parts.append(f"{quote(attr)} {sql_op} {sql_literal(value)}")
    return " WHERE " + " AND ".join(parts)


def column_sql_type(frame: DataFrame, name: str) -> str:
    kind = frame.column(name).dtype.name
    if kind == "int64":
        return "INTEGER"
    if kind in ("float64", "bool"):
        return "REAL"
    return "TEXT"


AGG_SQL = {
    "mean": "AVG",
    "sum": "SUM",
    "min": "MIN",
    "max": "MAX",
    "count": "COUNT",
    "median": "AVG",  # sqlite lacks MEDIAN; AVG is the closest single-pass
    "var": None,
    "std": None,
}


def agg_expr(agg: str, field: str) -> str:
    fn = AGG_SQL.get(agg, "AVG")
    if agg in ("var", "std"):
        # Computed via the sum-of-squares identity in one pass.
        q = quote(field)
        return f"(SUM({q}*{q}) - SUM({q})*SUM({q})/COUNT({q})) / (COUNT({q}) - 1)"
    if agg == "count" and not field:
        return "COUNT(*)"
    return f"{fn}({quote(field)})"


# ----------------------------------------------------------------------
# Shape detection shared by the per-spec translator and the batch compiler
# ----------------------------------------------------------------------
def grouped_parts(spec: VisSpec) -> tuple[list[str], str, str, list[str]]:
    """``(group fields, value expr, value alias, measure fields)``.

    The bar/line/area/geoshape shape: one dimension (plus an optional
    non-quantitative color) grouped under one aggregate.  Raises
    :class:`ExecutorError` when the spec has no dimension.
    """
    dim = None
    measure = None
    for enc in spec.encodings:
        if enc.channel not in ("x", "y", "color"):
            continue
        if enc.aggregate:
            measure = enc
        elif enc.field and enc.field_type != "quantitative" or (
            enc.field and spec.mark == "geoshape"
        ):
            dim = dim or enc
    if dim is None:
        raise ExecutorError("bar/line requires a dimension")
    group_fields = [dim.field]
    color = spec.color
    if (
        color is not None
        and color.field
        and color.field_type != "quantitative"
        and color.field != dim.field
    ):
        group_fields.append(color.field)
    if measure is not None and measure.field:
        agg = measure.aggregate or "mean"
        return group_fields, agg_expr(agg, measure.field), measure.field, [measure.field]
    return group_fields, "COUNT(*)", "count", []


def rect_parts(spec: VisSpec) -> tuple[list[str], str, str, list[str]]:
    """``(group fields, value expr, value alias, measure fields)`` for rect."""
    x, y, color = spec.x, spec.y, spec.color
    if x is None or y is None:
        raise ExecutorError("heatmap requires x and y")
    group_fields = [x.field, y.field]
    if color is not None and color.field and color.aggregate not in (None, "count"):
        return group_fields, agg_expr(color.aggregate, color.field), color.field, [color.field]
    return group_fields, "COUNT(*)", "count", []


def bucket_expr(field: str, edges: np.ndarray) -> str:
    """The bin index of ``field`` against explicit ``edges``.

    Right-open bins with the last bin closed — the documented semantics of
    ``np.histogram`` on an explicit edge array, which compares values
    against the same doubles this expression embeds (``repr(float)``
    round-trips exactly through sqlite's literal parser), so bucket
    assignment is bit-identical to the dataframe executor's numpy path.
    """
    n_bins = len(edges) - 1
    if n_bins <= 1:
        return "0"
    q = quote(field)
    whens = " ".join(
        f"WHEN {q} < {float(e)!r} THEN {k}" for k, e in enumerate(edges[1:-1])
    )
    return f"CASE {whens} ELSE {n_bins - 1} END"


# ----------------------------------------------------------------------
# Consolidated batch plan for one filter group
# ----------------------------------------------------------------------
class _Branch:
    """One ``UNION ALL`` arm: a GROUP BY (or selection) shape shared by
    every member spec, each riding along as one deduped value column."""

    def __init__(
        self,
        key_exprs: list[str],
        group_by: bool = True,
        where_extra: str | None = None,
        limit: int | None = None,
    ) -> None:
        self.key_exprs = key_exprs
        self.group_by = group_by
        self.where_extra = where_extra
        self.limit = limit
        self.values: list[str] = []
        self._value_pos: dict[str, int] = {}

    def value_column(self, expr: str) -> int:
        """Payload position of ``expr``, appending it on first request."""
        pos = self._value_pos.get(expr)
        if pos is None:
            pos = len(self.values)
            self._value_pos[expr] = pos
            self.values.append(expr)
        return pos

    @property
    def width(self) -> int:
        return len(self.key_exprs) + len(self.values)


def _grouped_decoder(names: list[str], n_keys: int, value_pos: int) -> Decoder:
    """Rebuild exactly what ``dict(zip(cursor.description, row))`` yields
    for the standalone grouped query: keys first, the spec's value last."""

    def decode(rows: list[tuple]) -> list[dict[str, Any]]:
        return [
            dict(zip(names, (*row[:n_keys], row[n_keys + value_pos])))
            for row in rows
        ]

    return decode


def _scatter_decoder(fields: list[str]) -> Decoder:
    def decode(rows: list[tuple]) -> list[dict[str, Any]]:
        return [dict(zip(fields, row)) for row in rows]

    return decode


def _histogram_decoder(field: str, edges: np.ndarray) -> Decoder:
    """Zero-fill bucket counts and emit bin centers, like the numpy path."""
    n_bins = len(edges) - 1
    centers = (edges[:-1] + edges[1:]) / 2

    def decode(rows: list[tuple]) -> list[dict[str, Any]]:
        counts = [0] * n_bins
        for row in rows:
            counts[row[0]] = row[1]
        return [
            {field: float(c), "count": int(n)} for c, n in zip(centers, counts)
        ]

    return decode


def _empty_decoder(rows: list[tuple]) -> list[dict[str, Any]]:
    return []


class GroupPlan:
    """The consolidated execution plan for one filter group of a batch.

    Construction classifies each ``(batch index, spec)`` pair into a
    branch, a pending histogram (bucket expressions need the group's
    MIN/MAX stats first), or :attr:`fallback`.  The executor then runs
    :attr:`stats_sql` (when set), hands the stats row to :meth:`finish`,
    executes the returned consolidated statement once, and feeds each
    decoder the rows tagged with its branch id.
    """

    def __init__(self, items: Sequence[tuple[int, VisSpec]], frame: DataFrame) -> None:
        self.frame = frame
        self.filters = list(items[0][1].filters) if items else []
        #: Batch indices the translator can't express; the executor runs
        #: these through the per-spec path (same connection).
        self.fallback: list[int] = []
        self._columns = set(frame.columns)
        self._branches: list[_Branch] = []
        self._branch_ids: dict[tuple, int] = {}
        #: (batch index, branch id or None, decoder) triples.
        self._decoders: list[tuple[int, int | None, Decoder]] = []
        #: Pending histograms: (batch index, field, bin count).
        self._pending_hist: list[tuple[int, str, int]] = []
        self._stats_fields: list[str] = []
        self._source_fields: set[str] = set()
        if self.filters and not all(a in self._columns for a, _, _ in self.filters):
            # A missing filter column fails every spec in the group the
            # same way per spec; don't poison a consolidated statement.
            self.fallback.extend(i for i, _ in items)
            return
        for i, spec in items:
            try:
                self._classify(i, spec)
            except ExecutorError:
                self.fallback.append(i)

    # ------------------------------------------------------------------
    def _branch(self, key: tuple, factory: Callable[[], _Branch]) -> tuple[int, _Branch]:
        bid = self._branch_ids.get(key)
        if bid is None:
            if len(self._branches) >= _MAX_ARMS:
                raise ExecutorError("compound-select arm budget exhausted")
            bid = len(self._branches)
            self._branch_ids[key] = bid
            self._branches.append(factory())
        return bid, self._branches[bid]

    def _require(self, fields: list[str]) -> None:
        for field in fields:
            if field not in self._columns:
                raise ExecutorError(f"column {field!r} not found")
        self._source_fields.update(fields)

    def _classify(self, i: int, spec: VisSpec) -> None:
        mark = spec.mark
        if mark in ("bar", "line", "area", "geoshape"):
            self._add_grouped(i, *grouped_parts(spec))
        elif mark == "rect":
            self._add_grouped(i, *rect_parts(spec))
        elif mark == "histogram":
            # Cost-based routing: an unfiltered histogram is strictly
            # cheaper on the resident frame (one cached float view + one
            # numpy histogram — the exact path the serial executor takes),
            # while a filtered histogram joins the consolidated pass where
            # its CASE-bucket branch shares the materialized CTE scan
            # instead of paying a per-spec mask + subframe materialization.
            if not self.filters:
                raise ExecutorError("unfiltered histograms take the numpy path")
            enc = spec.x if spec.x is not None and spec.x.bin else spec.y
            if enc is None or not enc.field:
                raise ExecutorError("histogram requires a binned axis")
            self._require([enc.field])
            if column_sql_type(self.frame, enc.field) == "TEXT":
                raise ExecutorError("histogram requires a numeric column")
            if enc.field not in self._stats_fields:
                self._stats_fields.append(enc.field)
            self._pending_hist.append((i, enc.field, enc.resolved_bin_size))
        elif mark in ("point", "tick"):
            fields = [enc.field for enc in spec.encodings if enc.field]
            if not fields:
                raise ExecutorError("scatter requires at least one field")
            self._require(fields)
            # Keyed on the field tuple, not the spec index: identical
            # scatter selections share one arm (and its rows), each with
            # its own decoder.
            bid, _ = self._branch(
                ("s", tuple(fields)),
                lambda: _Branch(
                    [quote(f) for f in fields],
                    group_by=False,
                    limit=config.max_scatter_points,
                ),
            )
            self._decoders.append((i, bid, _scatter_decoder(fields)))
        else:
            raise ExecutorError(f"no batch translation for mark {mark!r}")

    def _add_grouped(
        self,
        i: int,
        group_fields: list[str],
        value: str,
        alias: str,
        measure_fields: list[str],
    ) -> None:
        self._require(group_fields + measure_fields)
        bid, branch = self._branch(
            ("g", tuple(group_fields)),
            lambda: _Branch([quote(f) for f in group_fields]),
        )
        pos = branch.value_column(value)
        decoder = _grouped_decoder(group_fields + [alias], len(group_fields), pos)
        self._decoders.append((i, bid, decoder))

    # ------------------------------------------------------------------
    @property
    def stats_sql(self) -> str | None:
        """One MIN/MAX/COUNT scan covering every pending histogram field."""
        if not self._pending_hist:
            return None
        cols = ", ".join(
            f"MIN({quote(f)}), MAX({quote(f)}), COUNT({quote(f)})"
            for f in self._stats_fields
        )
        return f"SELECT {cols} FROM {TABLE}{where_clause(self.filters)}"

    def finish(
        self, stats_row: tuple | None
    ) -> tuple[str | None, list[tuple[int, int | None, Decoder]]]:
        """Resolve histogram branches and render the consolidated SQL.

        Returns ``(sql or None, decoders)``; decoders whose branch id is
        ``None`` decode without rows (empty histograms).  May move specs
        onto :attr:`fallback` (non-finite stats defeat literal rendering).
        """
        for i, field, bins in self._pending_hist:
            base = 3 * self._stats_fields.index(field)
            lo, hi, count = stats_row[base : base + 3]
            if not count:
                self._decoders.append((i, None, _empty_decoder))
                continue
            lo, hi = float(lo), float(hi)
            if not (math.isfinite(lo) and math.isfinite(hi)):
                self.fallback.append(i)
                continue
            # Same linspace (and same min==max widening) the dataframe
            # executor gets from np.histogram_bin_edges over the values.
            edges = np.histogram_bin_edges(np.array([lo, hi]), bins=bins)
            try:
                bid, branch = self._branch(
                    ("h", field, bins),
                    lambda f=field, e=edges: _Branch(
                        [bucket_expr(f, e)],
                        where_extra=f"{quote(f)} IS NOT NULL",
                    ),
                )
            except ExecutorError:  # arm budget exhausted
                self.fallback.append(i)
                continue
            branch.value_column("COUNT(*)")
            self._decoders.append((i, bid, _histogram_decoder(field, edges)))
        if not self._branches:
            return None, self._decoders
        return self._render(), self._decoders

    def _render(self) -> str:
        width = max(branch.width for branch in self._branches)
        src = TABLE
        prefix = ""
        if self.filters:
            # Shared-WHERE CTE: filter once, project only touched columns.
            # MATERIALIZED (sqlite >= 3.35) pins one evaluation; older
            # sqlite may inline the view per arm, which is slower but
            # produces the same rows.
            src = _SRC
            materialized = (
                "MATERIALIZED " if sqlite3.sqlite_version_info >= (3, 35) else ""
            )
            cols = ", ".join(quote(c) for c in sorted(self._source_fields))
            prefix = (
                f"WITH {src} AS {materialized}(SELECT {cols} FROM {TABLE}"
                f"{where_clause(self.filters)}) "
            )
        arms = []
        for bid, branch in enumerate(self._branches):
            pad = ["NULL"] * (width - branch.width)
            if branch.limit is not None:
                inner = ", ".join(
                    f"{expr} AS __c{k}" for k, expr in enumerate(branch.key_exprs)
                )
                outer = [str(bid)] + [
                    f"__c{k}" for k in range(len(branch.key_exprs))
                ] + pad
                arms.append(
                    f"SELECT {', '.join(outer)} FROM "
                    f"(SELECT {inner} FROM {src} LIMIT {branch.limit})"
                )
                continue
            cols = [str(bid)] + branch.key_exprs + branch.values + pad
            arm = f"SELECT {', '.join(cols)} FROM {src}"
            if branch.where_extra:
                arm += f" WHERE {branch.where_extra}"
            if branch.group_by:
                # Ordinals (branch id is column 1, keys follow) keep big
                # bucket CASE expressions from repeating in the GROUP BY.
                ordinals = range(2, 2 + len(branch.key_exprs))
                arm += " GROUP BY " + ", ".join(str(o) for o in ordinals)
            arms.append(arm)
        return prefix + " UNION ALL ".join(arms)
