"""Dataframe executor: Table 2's relational operations on the columnar engine.

=================  =========================================
Vis type           Relational operation (Table 2)
=================  =========================================
Scatterplot        Selection on 2 columns
Color scatterplot  Selection on 3 columns
Line / bar         Group-by aggregation
Colored line/bar   2-D group-by aggregation
Histogram          Bin + count
Heatmap            2-D bin + count
Color heatmap      2-D bin + count + group-by aggregation
Choropleth         Group-by aggregation keyed on a geo column
=================  =========================================

Shared-scan execution
---------------------
A recommendation pass runs dozens of these operations over one frame, so
every relational primitive routes through the process-wide
:data:`~repro.core.executor.cache.computation_cache`: filter masks,
group-key factorizations (via prepared ``_Grouping`` objects), ``to_float``
views, and histogram bin edges are each computed once per
``(frame, _data_version)`` and shared across the whole candidate set.
:meth:`DataFrameExecutor.execute_many` is the batch entry point — it
groups specs by filter signature so each distinct filter materializes
exactly one subframe, held only for the batch (subframes are full row
copies and are deliberately never pinned in the process-wide cache).
Stale entries are impossible by construction: the cache keys on the frame's
``_data_version``, which every in-place mutation bumps.

Parallel batch execution
------------------------
Under ``config.parallel_execute`` the batch fans out across the shared
worker pool (:mod:`repro.core.pool`): the work queue holds one item per
spec, each filter group materializes its subframe exactly once behind a
per-group lock, and the *calling thread drains the queue alongside the
pool helpers* — so a saturated or single-worker pool degrades to the
serial batch path's throughput instead of deadlocking.  Results are
bit-identical to serial execution: every spec writes only its own
``results`` cell, and the computation cache's per-slot locks make
concurrent primitive lookups race-free (a lost race recomputes, never
tears).  Fan-out is skipped inside a pool worker (a streamed action's
nested batch), for single-spec batches, and below
``config.parallel_min_rows``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Sequence

import numpy as np

from ...dataframe import DataFrame, GroupBy
from ...vis.encoding import Encoding
from ...vis.spec import VisSpec
from .. import pool
from ..config import config
from ..errors import ExecutorError
from .base import Executor, group_indices_by_filter
from .cache import computation_cache as _cache

__all__ = ["DataFrameExecutor"]


class DataFrameExecutor(Executor):
    """Executes visualization queries directly on ``repro.dataframe``."""

    name = "dataframe"

    # ------------------------------------------------------------------
    @staticmethod
    def _filter_mask(
        frame: DataFrame, filters: list[tuple[str, str, Any]]
    ) -> np.ndarray:
        mask = np.ones(len(frame), dtype=bool)
        for attr, op, value in filters:
            if attr not in frame:
                raise ExecutorError(f"filter attribute {attr!r} not found")
            col = frame.column(attr)
            if op == "=":
                cmp = col == value
            elif op == "!=":
                cmp = col != value
            elif op == ">":
                cmp = col > value
            elif op == "<":
                cmp = col < value
            elif op == ">=":
                cmp = col >= value
            elif op == "<=":
                cmp = col <= value
            else:  # pragma: no cover - parser rejects other ops
                raise ExecutorError(f"unsupported filter op {op!r}")
            mask &= cmp.values & ~cmp.mask
        return mask

    def apply_filters(
        self, frame: DataFrame, filters: list[tuple[str, str, Any]]
    ) -> DataFrame:
        if not filters:
            return frame
        # The compute callback takes the target frame: for a linked sample
        # the cache evaluates it against the parent and slices the result,
        # pre-warming the full-frame mask (see ComputationCache.filter_mask).
        mask = _cache.filter_mask(
            frame, filters, lambda f: self._filter_mask(f, filters)
        )
        # Only the mask is cached; the subframe is materialized per call so
        # nothing pins full row copies process-wide.  Batch callers share
        # the subframe locally instead (see execute_many).
        return frame[mask]

    # ------------------------------------------------------------------
    def _handler(self, mark: str):
        handler = {
            "histogram": self._execute_histogram,
            "bar": self._execute_grouped,
            "line": self._execute_grouped,
            "area": self._execute_grouped,
            "geoshape": self._execute_geo,
            "point": self._execute_scatter,
            "tick": self._execute_scatter,
            "rect": self._execute_heatmap,
        }.get(mark)
        if handler is None:  # pragma: no cover - spec ctor rejects others
            raise ExecutorError(f"no handler for mark {mark!r}")
        return handler

    def execute(self, spec: VisSpec, frame: DataFrame) -> list[dict[str, Any]]:
        frame = self.apply_filters(frame, spec.filters)
        records = self._handler(spec.mark)(spec, frame)
        spec.data = records
        return records

    def execute_many(
        self, specs: Sequence[VisSpec], frame: DataFrame
    ) -> list[list[dict[str, Any]]]:
        """Batch execution sharing one scan per relational primitive.

        Specs are grouped by filter signature so each distinct filter
        evaluates its mask and materializes its subframe exactly once, then
        every handler runs against the shared subframe — whose group-by
        factorizations, float views, and bin edges are in turn shared
        through the computation cache.  Falls back to the sequential path
        when ``config.computation_cache`` is off so ablations stay honest.

        With ``config.parallel_execute`` the batch additionally fans out
        across the shared worker pool (see the module docstring); results
        are identical to the serial batch path.
        """
        if not _cache.enabled:
            return [self.execute(spec, frame) for spec in specs]
        results: list[list[dict[str, Any]] | None] = [None] * len(specs)
        groups = group_indices_by_filter(specs)
        if self._should_fan_out(groups, frame):
            self._execute_parallel(specs, frame, groups, results)
            return results  # type: ignore[return-value]
        for indices in groups:
            # One materialization per distinct filter, held only for the
            # batch: same-filter candidates share the subframe (and, via
            # its live cache slot, its factorizations and float views)
            # without the process-wide cache pinning any row copies.
            subframe = self.apply_filters(frame, specs[indices[0]].filters)
            for i in indices:
                spec = specs[i]
                records = self._handler(spec.mark)(spec, subframe)
                spec.data = records
                results[i] = records
        return results  # type: ignore[return-value]

    @staticmethod
    def _should_fan_out(groups: list[list[int]], frame: DataFrame) -> bool:
        """Whether this batch is worth spreading over the worker pool."""
        n_specs = sum(len(g) for g in groups)
        return (
            config.parallel_execute
            and n_specs > 1
            and len(frame) >= config.parallel_min_rows
            and pool.worker_count() > 1
            and not pool.in_worker()  # never wait on the pool from inside it
        )

    def _execute_parallel(
        self,
        specs: Sequence[VisSpec],
        frame: DataFrame,
        groups: list[list[int]],
        results: list,
    ) -> None:
        """Drain one work item per spec across pool helpers + this thread.

        Each filter group's subframe materializes exactly once behind a
        per-group lock (double-checked, so same-group specs claimed by
        different workers share the row copy rather than re-filtering).
        The calling thread participates in the drain: helpers that never
        get scheduled — a saturated pool — cost correctness nothing, and
        ``wait`` on them cannot deadlock because the queue they would
        drain is already empty by the time this thread blocks.
        """
        subframes: dict[int, DataFrame] = {}
        group_locks = [threading.Lock() for _ in groups]
        work: "deque[tuple[int, int]]" = deque(
            (gi, i) for gi, indices in enumerate(groups) for i in indices
        )
        errors: list[BaseException] = []

        def subframe_for(gi: int) -> DataFrame:
            sub = subframes.get(gi)
            if sub is None:
                with group_locks[gi]:
                    sub = subframes.get(gi)
                    if sub is None:
                        sub = self.apply_filters(
                            frame, specs[groups[gi][0]].filters
                        )
                        subframes[gi] = sub
            return sub

        def drain() -> None:
            while not errors:
                try:
                    gi, i = work.popleft()  # thread-safe: deque is atomic
                except IndexError:
                    return
                try:
                    spec = specs[i]
                    records = self._handler(spec.mark)(spec, subframe_for(gi))
                    spec.data = records
                    results[i] = records
                except BaseException as exc:
                    errors.append(exc)
                    return

        n_helpers = min(pool.worker_count(), len(work)) - 1
        futures = [pool.submit(drain) for _ in range(n_helpers)]
        drain()
        # The queue is drained; a helper still waiting behind unrelated
        # long-running pool tasks (streamed laggard actions) would only run
        # a no-op — cancel it rather than let background work stall this
        # interactive batch.  Helpers already running are joined as usual.
        for future in futures:
            if not future.cancel():
                future.result()
        if errors:
            raise errors[0]

    # ------------------------------------------------------------------
    # Histogram: bin + count
    # ------------------------------------------------------------------
    def _execute_histogram(
        self, spec: VisSpec, frame: DataFrame
    ) -> list[dict[str, Any]]:
        enc = spec.x if spec.x is not None and spec.x.bin else spec.y
        if enc is None or enc.field not in frame:
            raise ExecutorError("histogram requires a binned axis")
        values = _cache.to_float(frame, enc.field)
        values = values[~np.isnan(values)]
        if len(values) == 0:
            return []
        edges = _cache.bin_edges(
            frame, enc.field, enc.resolved_bin_size, valid_values=values
        )
        counts, edges = np.histogram(values, bins=edges)
        centers = (edges[:-1] + edges[1:]) / 2
        return [
            {enc.field: float(c), "count": int(n)}
            for c, n in zip(centers, counts)
        ]

    # ------------------------------------------------------------------
    # Bar / line: (2-D) group-by aggregation
    # ------------------------------------------------------------------
    @staticmethod
    def _grouping_channels(spec: VisSpec) -> tuple[Encoding, Encoding | None]:
        """(dimension encoding, measure encoding or None for count)."""
        dim = None
        measure = None
        for enc in spec.encodings:
            if enc.channel not in ("x", "y"):
                continue
            if enc.aggregate or (enc.field_type == "quantitative" and not enc.bin):
                measure = enc
            else:
                dim = enc
        if dim is None:
            # Single aggregated measure, e.g. Vis of mean(Age) alone.
            return measure, measure
        return dim, measure

    @staticmethod
    def _groupby(frame: DataFrame, keys: list[str]) -> GroupBy:
        """A GroupBy sharing both halves of the scan through the cache.

        The factorization pass comes from the memoized ``_Grouping`` and
        the value-column float conversion is injected so aggregation stops
        re-converting the same measure for every spec in the pass.
        """
        return GroupBy.from_grouping(
            frame,
            _cache.grouping(frame, tuple(keys)),
            to_float=lambda name: _cache.to_float(frame, name),
        )

    def _execute_grouped(
        self, spec: VisSpec, frame: DataFrame
    ) -> list[dict[str, Any]]:
        dim, measure = self._grouping_channels(spec)
        if dim is None:
            raise ExecutorError("bar/line requires a dimension axis")
        if dim is measure:
            # Degenerate single-measure aggregate.
            agg = measure.aggregate or "mean"
            col = frame[measure.field]
            value = getattr(col, "count" if agg == "count" else agg)()
            return [{measure.field: value}]
        color = spec.color
        keys = [dim.field]
        if color is not None and color.field and color.field_type != "quantitative":
            keys.append(color.field)
        grouped = self._groupby(frame, keys)
        if measure is None or measure.aggregate == "count" or not measure.field:
            records = grouped.size_frame("count").to_records()
        elif len(keys) == 1:
            agg = measure.aggregate or "mean"
            series = grouped[measure.field].agg(agg)
            records = _series_records(series, keys, measure.field)
        else:
            agg = measure.aggregate or "mean"
            records = grouped.agg({measure.field: agg}).to_records()
        if dim.field_type == "temporal":
            records.sort(key=lambda r: _sort_key(r.get(dim.field)))
        return records

    # ------------------------------------------------------------------
    # Choropleth: group-by aggregation on the geo column
    # ------------------------------------------------------------------
    def _execute_geo(self, spec: VisSpec, frame: DataFrame) -> list[dict[str, Any]]:
        geo = None
        for enc in spec.encodings:
            if enc.field_type == "geographic":
                geo = enc
        if geo is None or geo.field not in frame:
            raise ExecutorError("geoshape requires a geographic field")
        measure = spec.color if spec.color is not None else spec.y
        grouped = self._groupby(frame, [geo.field])
        if measure is None or not measure.field or measure.aggregate == "count":
            series = grouped.size()
            return _series_records(series, [geo.field], "count")
        series = grouped[measure.field].agg(measure.aggregate or "mean")
        return _series_records(series, [geo.field], measure.field)

    # ------------------------------------------------------------------
    # Scatter: selection on 2-3 columns (display-capped)
    # ------------------------------------------------------------------
    def _execute_scatter(
        self, spec: VisSpec, frame: DataFrame
    ) -> list[dict[str, Any]]:
        fields = [
            enc.field
            for enc in spec.encodings
            if enc.field and enc.field in frame
        ]
        if not fields:
            raise ExecutorError("scatter requires at least one field")
        subset = frame[fields]
        if len(subset) > config.max_scatter_points:
            subset = subset.sample(
                n=config.max_scatter_points, random_state=config.random_seed
            )
        return subset.to_records()

    # ------------------------------------------------------------------
    # Heatmap: 2-D bin/group + count (+ group-by aggregation when colored)
    # ------------------------------------------------------------------
    def _execute_heatmap(
        self, spec: VisSpec, frame: DataFrame
    ) -> list[dict[str, Any]]:
        x, y = spec.x, spec.y
        if x is None or y is None:
            raise ExecutorError("heatmap requires x and y")
        color = spec.color
        if x.field_type == "quantitative" and y.field_type == "quantitative":
            return self._numeric_heatmap(spec, frame, x, y, color)
        keys = [x.field, y.field]
        grouped = self._groupby(frame, keys)
        if color is not None and color.field and color.aggregate not in (None, "count"):
            return grouped.agg({color.field: color.aggregate}).to_records()
        return grouped.size_frame("count").to_records()

    def _numeric_heatmap(
        self,
        spec: VisSpec,
        frame: DataFrame,
        x: Encoding,
        y: Encoding,
        color: Encoding | None,
    ) -> list[dict[str, Any]]:
        xv = _cache.to_float(frame, x.field)
        yv = _cache.to_float(frame, y.field)
        ok = ~(np.isnan(xv) | np.isnan(yv))
        xv, yv = xv[ok], yv[ok]
        if len(xv) == 0:
            return []
        # Per-axis bins; resolved_bin_size honors an explicit setting even
        # below config.default_bin_size (0-sentinel, like Clause.bin_size).
        bins = [x.resolved_bin_size, y.resolved_bin_size]
        counts, xe, ye = np.histogram2d(xv, yv, bins=bins)
        records = []
        xc = (xe[:-1] + xe[1:]) / 2
        yc = (ye[:-1] + ye[1:]) / 2
        if color is not None and color.field and color.field in frame:
            cv = _cache.to_float(frame, color.field)[ok]
            sums, _, _ = np.histogram2d(xv, yv, bins=[xe, ye], weights=np.nan_to_num(cv))
        else:
            sums = None
        for i in range(len(xc)):
            for j in range(len(yc)):
                n = int(counts[i, j])
                if n == 0:
                    continue
                rec = {x.field: float(xc[i]), y.field: float(yc[j]), "count": n}
                if sums is not None and color is not None:
                    rec[color.field] = float(sums[i, j] / n)
                records.append(rec)
        return records


def _series_records(series: Any, keys: list[str], value_name: str) -> list[dict[str, Any]]:
    """Flatten a single-key grouped Series into chart records."""
    labels = series.index.to_list()
    return [
        {keys[0]: label, value_name: value}
        for label, value in zip(labels, series.to_list())
    ]


def _sort_key(v: Any) -> Any:
    return (v is None, v)
