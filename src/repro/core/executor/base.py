"""Executor interface: turn a compiled VisSpec into chart-ready data.

The paper's execution engine (§8.1) performs the relational operations of
Table 2 either as dataframe operations (``DataFrameExecutor``) or as SQL
queries (``SQLExecutor``); both implement this interface and are swappable
through ``config.executor``.

Recommendation passes execute whole candidate *sets* against one frame, so
the interface also exposes :meth:`Executor.execute_many`, the batch entry
point used by ``rank_candidates`` and the actions.  Backends override it to
share work across the batch (``DataFrameExecutor`` shares filter masks,
materialized subframes, group-key factorizations, and float conversions via
the :mod:`~repro.core.executor.cache` computation cache, and fans the batch
out over the shared worker pool under ``config.parallel_execute``;
``SQLExecutor`` compiles each filter group into one consolidated
shared-WHERE CTE + UNION ALL statement via
:mod:`~repro.core.executor.sql_compile`); the default simply executes
sequentially.

The batch contract, which parallel backends must also honor: results align
with ``specs``, each spec's ``data`` is attached exactly as if
:meth:`Executor.execute` had run per spec, and an overridden ``execute_many``
must be safe to call concurrently from multiple threads against the same
frame (the streaming scheduler runs actions — each issuing its own batch —
on pool workers).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

from ...dataframe import DataFrame
from ...vis.spec import VisSpec, filter_signature

__all__ = ["Executor", "get_executor", "group_indices_by_filter"]


def group_indices_by_filter(specs: Sequence[VisSpec]) -> list[list[int]]:
    """Partition batch indices by filter signature, preserving order.

    The shared-scan unit of work: every index list shares one mask
    evaluation and one materialized subframe.  Kept on the interface layer
    because any batching backend needs the same partition (the dataframe
    executor parallelizes across it; a future distributed backend would
    shard by it).
    """
    by_filter: "dict[tuple, list[int]]" = {}
    for i, spec in enumerate(specs):
        by_filter.setdefault(filter_signature(spec.filters), []).append(i)
    return list(by_filter.values())


class Executor(ABC):
    """Processes visualization data and column metadata for one backend."""

    name: str = "base"

    @abstractmethod
    def execute(self, spec: VisSpec, frame: DataFrame) -> list[dict[str, Any]]:
        """Compute the records behind ``spec`` and attach them to it."""

    def execute_many(
        self, specs: Sequence[VisSpec], frame: DataFrame
    ) -> list[list[dict[str, Any]]]:
        """Execute a batch of specs against one frame.

        Results align with ``specs`` and each spec's ``data`` is attached,
        exactly as if :meth:`execute` had been called per spec.
        """
        return self._execute_serial(specs, frame)

    def _execute_serial(
        self, specs: Sequence[VisSpec], frame: DataFrame
    ) -> list[list[dict[str, Any]]]:
        """The reference per-spec loop batching backends must reproduce
        bit-for-bit (and fall back to for shapes they can't batch)."""
        return [self.execute(spec, frame) for spec in specs]

    @abstractmethod
    def apply_filters(
        self, frame: DataFrame, filters: list[tuple[str, str, Any]]
    ) -> DataFrame:
        """Apply intent filter clauses, returning the matching subset."""


def get_executor(name: str | None = None) -> Executor:
    """Factory honoring ``config.executor`` ("dataframe" or "sql")."""
    from ..config import config

    choice = name or config.executor
    if choice == "dataframe":
        from .df_exec import DataFrameExecutor

        return DataFrameExecutor()
    if choice == "sql":
        from .sql_exec import SQLExecutor

        return SQLExecutor()
    raise ValueError(f"unknown executor backend {choice!r}")
