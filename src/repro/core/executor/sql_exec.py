"""SQL executor: Table 2's relational operations as sqlite3 queries.

The paper's execution engine can run "equivalently in SQL queries in
relational databases" (§7, Fig. 8).  This backend materializes the frame
into an in-memory sqlite database (cached per frame content-version) and
translates each visualization into one SQL statement.
"""

from __future__ import annotations

import sqlite3
import threading
import weakref
from collections import OrderedDict
from typing import Any

import numpy as np

from ...dataframe import DataFrame
from ...vis.spec import VisSpec
from ..config import config
from ..errors import ExecutorError
from .base import Executor

__all__ = ["SQLExecutor", "translate_vis_to_sql"]

_TABLE = "frame"

#: LRU cache of id(frame) -> (weakref, data_version, connection).  Identity
#: is proven through the weakref exactly like the computation cache's
#: slots: a raw-id key could alias a recycled id onto another frame's
#: database, and the weakref callback drops the entry the moment the frame
#: is collected instead of waiting for LRU pressure.  Evicted connections
#: are *dropped, never closed*: a pool worker may still be mid-query on
#: one (streamed actions run SQL concurrently), and an explicit close
#: would raise "Cannot operate on a closed database" under it — the
#: in-memory database is freed when the last holder releases the object.
#: The lock is reentrant because the weakref callback can fire from a GC
#: pass triggered while this thread already holds it.
_CONN_CACHE: "OrderedDict[int, tuple[weakref.ref, int, sqlite3.Connection]]" = (
    OrderedDict()
)
_CONN_LOCK = threading.RLock()
_CACHE_LIMIT = 8


def _quote(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _sql_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float, np.integer, np.floating)):
        return repr(float(value) if isinstance(value, (float, np.floating)) else int(value))
    text = str(value).replace("'", "''")
    return f"'{text}'"


def _column_sql_type(frame: DataFrame, name: str) -> str:
    kind = frame.column(name).dtype.name
    if kind == "int64":
        return "INTEGER"
    if kind in ("float64", "bool"):
        return "REAL"
    return "TEXT"


def load_frame(conn: sqlite3.Connection, frame: DataFrame) -> None:
    """Create and populate the ``frame`` table from a DataFrame."""
    cols = frame.columns
    decls = ", ".join(f"{_quote(c)} {_column_sql_type(frame, c)}" for c in cols)
    conn.execute(f"DROP TABLE IF EXISTS {_TABLE}")
    conn.execute(f"CREATE TABLE {_TABLE} ({decls})")
    placeholders = ", ".join(["?"] * len(cols))
    columns = [frame.column(c) for c in cols]

    def rows():
        for i in range(len(frame)):
            out = []
            for col in columns:
                v = col[i]
                if isinstance(v, np.datetime64):
                    v = str(v.astype("datetime64[s]"))
                out.append(v)
            yield tuple(out)

    conn.executemany(f"INSERT INTO {_TABLE} VALUES ({placeholders})", rows())
    conn.commit()


def _where_clause(filters: list[tuple[str, str, Any]]) -> str:
    if not filters:
        return ""
    parts = []
    for attr, op, value in filters:
        sql_op = {"=": "=", "!=": "<>", ">": ">", "<": "<", ">=": ">=", "<=": "<="}[op]
        parts.append(f"{_quote(attr)} {sql_op} {_sql_literal(value)}")
    return " WHERE " + " AND ".join(parts)


_AGG_SQL = {
    "mean": "AVG",
    "sum": "SUM",
    "min": "MIN",
    "max": "MAX",
    "count": "COUNT",
    "median": "AVG",  # sqlite lacks MEDIAN; AVG is the closest single-pass
    "var": None,
    "std": None,
}


def _agg_expr(agg: str, field: str) -> str:
    fn = _AGG_SQL.get(agg, "AVG")
    if agg in ("var", "std"):
        # Computed via the sum-of-squares identity in one pass.
        q = _quote(field)
        var = f"(SUM({q}*{q}) - SUM({q})*SUM({q})/COUNT({q})) / (COUNT({q}) - 1)"
        return var
    if agg == "count" and not field:
        return "COUNT(*)"
    return f"{fn}({_quote(field)})"


def translate_vis_to_sql(spec: VisSpec, frame: DataFrame) -> str:
    """Produce the single SQL statement that processes ``spec``."""
    where = _where_clause(spec.filters)
    x, y, color = spec.x, spec.y, spec.color

    if spec.mark == "histogram":
        enc = x if x is not None and x.bin else y
        if enc is None:
            raise ExecutorError("histogram requires a binned axis")
        q = _quote(enc.field)
        b = enc.resolved_bin_size
        not_null = f"{q} IS NOT NULL"
        where_h = f"{where} AND {not_null}" if where else f" WHERE {not_null}"
        # Fixed-width binning via integer bucket arithmetic (bin + count).
        return (
            f"SELECT CAST(MIN(({q} - (SELECT MIN({q}) FROM {_TABLE})) * {b} / "
            f"NULLIF((SELECT MAX({q}) - MIN({q}) FROM {_TABLE}), 0), {b - 1}) "
            f"AS INTEGER) AS bucket, COUNT(*) AS count "
            f"FROM {_TABLE}{where_h} GROUP BY bucket ORDER BY bucket"
        )
    if spec.mark in ("point", "tick"):
        fields = [enc.field for enc in spec.encodings if enc.field]
        cols = ", ".join(_quote(f) for f in fields)
        return (
            f"SELECT {cols} FROM {_TABLE}{where} "
            f"LIMIT {config.max_scatter_points}"
        )
    if spec.mark in ("bar", "line", "area", "geoshape"):
        dim = None
        measure = None
        for enc in spec.encodings:
            if enc.channel not in ("x", "y", "color"):
                continue
            if enc.aggregate:
                measure = enc
            elif enc.field and enc.field_type != "quantitative" or (
                enc.field and spec.mark == "geoshape"
            ):
                dim = dim or enc
        if dim is None:
            raise ExecutorError("bar/line requires a dimension")
        group_cols = [_quote(dim.field)]
        if (
            color is not None
            and color.field
            and color.field_type != "quantitative"
            and color.field != dim.field
        ):
            group_cols.append(_quote(color.field))
        value = (
            _agg_expr(measure.aggregate or "mean", measure.field)
            if measure is not None and measure.field
            else "COUNT(*)"
        )
        alias = measure.field if measure is not None and measure.field else "count"
        gc = ", ".join(group_cols)
        return (
            f"SELECT {gc}, {value} AS {_quote(alias)} "
            f"FROM {_TABLE}{where} GROUP BY {gc}"
        )
    if spec.mark == "rect":
        if x is None or y is None:
            raise ExecutorError("heatmap requires x and y")
        gc = f"{_quote(x.field)}, {_quote(y.field)}"
        if color is not None and color.field and color.aggregate not in (None, "count"):
            value = _agg_expr(color.aggregate, color.field)
            return (
                f"SELECT {gc}, {value} AS {_quote(color.field)} "
                f"FROM {_TABLE}{where} GROUP BY {gc}"
            )
        return f'SELECT {gc}, COUNT(*) AS "count" FROM {_TABLE}{where} GROUP BY {gc}'
    raise ExecutorError(f"no SQL translation for mark {spec.mark!r}")


def _drop_connection(key: int) -> None:
    """Weakref callback: the keyed frame died, so release its database."""
    with _CONN_LOCK:
        _CONN_CACHE.pop(key, None)


class SQLExecutor(Executor):
    """Executes visualization queries on an in-memory sqlite3 database."""

    name = "sql"

    def _connection(self, frame: DataFrame) -> sqlite3.Connection:
        key = id(frame)
        version = getattr(frame, "_data_version", 0)
        with _CONN_LOCK:
            cached = _CONN_CACHE.get(key)
            if cached is not None:
                ref, cached_version, conn = cached
                if ref() is frame and cached_version == version:
                    _CONN_CACHE.move_to_end(key)
                    return conn
                # Stale content version (or a recycled id): drop and
                # rebuild.  Never close — an in-flight query from before
                # the mutation may still hold the old connection.
                del _CONN_CACHE[key]
        # check_same_thread=False: connections outlive the thread that
        # built them (streamed actions run on pool workers); each query is
        # a single serialized conn.execute, which sqlite allows cross-thread.
        conn = sqlite3.connect(":memory:", check_same_thread=False)
        load_frame(conn, frame)
        try:
            ref = weakref.ref(frame, lambda _, key=key: _drop_connection(key))
        except TypeError:  # pragma: no cover - all repo frames weakref
            ref = lambda: frame  # noqa: E731 - keeps entry permanently live
        with _CONN_LOCK:
            raced = _CONN_CACHE.get(key)
            if raced is not None and raced[0]() is frame and raced[1] == version:
                # A concurrent builder won; use its connection and let ours
                # deallocate on return.
                _CONN_CACHE.move_to_end(key)
                return raced[2]
            _CONN_CACHE[key] = (ref, version, conn)
            _CONN_CACHE.move_to_end(key)
            while len(_CONN_CACHE) > _CACHE_LIMIT:
                _CONN_CACHE.popitem(last=False)
        return conn

    # ------------------------------------------------------------------
    def apply_filters(
        self, frame: DataFrame, filters: list[tuple[str, str, Any]]
    ) -> DataFrame:
        # Row filtering itself stays on the dataframe layer; SQL handles it
        # inside each translated query via WHERE.
        from .df_exec import DataFrameExecutor

        return DataFrameExecutor().apply_filters(frame, filters)

    def execute(self, spec: VisSpec, frame: DataFrame) -> list[dict[str, Any]]:
        if spec.mark == "histogram":
            # Delegate histograms to numpy binning for edge parity with the
            # dataframe executor (sqlite bucket arithmetic differs at edges).
            from .df_exec import DataFrameExecutor

            return DataFrameExecutor().execute(spec, frame)
        conn = self._connection(frame)
        sql = translate_vis_to_sql(spec, frame)
        try:
            cursor = conn.execute(sql)
        except sqlite3.Error as exc:
            raise ExecutorError(f"SQL execution failed: {exc}\n{sql}") from exc
        names = [d[0] for d in cursor.description]
        records = [dict(zip(names, row)) for row in cursor.fetchall()]
        spec.data = records
        return records
