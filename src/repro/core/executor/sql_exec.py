"""SQL executor: Table 2's relational operations as sqlite3 queries.

The paper's execution engine can run "equivalently in SQL queries in
relational databases" (§7, Fig. 8).  This backend materializes the frame
into an in-memory sqlite database (cached per frame content-version) and
translates each visualization into one SQL statement.

Batch parity with the dataframe executor: :meth:`SQLExecutor.execute_many`
groups a recommendation pass by filter signature and compiles each group
into a consolidated shared-WHERE CTE + ``UNION ALL`` pass (one scan per
GROUP BY shape instead of one round-trip query per candidate) via
:mod:`~repro.core.executor.sql_compile`, resolving the frame's connection
once for the whole batch.  Results are bit-identical to the per-spec
path; shapes the batch translator can't express fall back to it per spec.
``config.sql_batch_execute`` turns consolidation off for ablations.
"""

from __future__ import annotations

import sqlite3
import threading
import weakref
from collections import OrderedDict
from typing import Any, Sequence

import numpy as np

from ...dataframe import DataFrame
from ...vis.spec import VisSpec
from ..config import config
from ..errors import ExecutorError
from .base import Executor, group_indices_by_filter
from .sql_compile import (
    TABLE as _TABLE,
    GroupPlan,
    column_sql_type,
    grouped_parts,
    quote as _quote,
    rect_parts,
    sql_literal as _sql_literal,  # noqa: F401 - re-exported legacy name
    where_clause as _where_clause,
)

__all__ = ["SQLExecutor", "translate_vis_to_sql"]

#: LRU cache of id(frame) -> (weakref, data_version, connection).  Identity
#: is proven through the weakref exactly like the computation cache's
#: slots: a raw-id key could alias a recycled id onto another frame's
#: database, and the weakref callback drops the entry the moment the frame
#: is collected instead of waiting for LRU pressure.  Evicted connections
#: are *dropped, never closed*: a pool worker may still be mid-query on
#: one (streamed actions run SQL concurrently), and an explicit close
#: would raise "Cannot operate on a closed database" under it — the
#: in-memory database is freed when the last holder releases the object.
#: The lock is reentrant because the weakref callback can fire from a GC
#: pass triggered while this thread already holds it.
_CONN_CACHE: "OrderedDict[int, tuple[weakref.ref, int, sqlite3.Connection]]" = (
    OrderedDict()
)
_CONN_LOCK = threading.RLock()
_CACHE_LIMIT = 8


def load_frame(conn: sqlite3.Connection, frame: DataFrame) -> None:
    """Create and populate the ``frame`` table from a DataFrame."""
    cols = frame.columns
    decls = ", ".join(f"{_quote(c)} {column_sql_type(frame, c)}" for c in cols)
    conn.execute(f"DROP TABLE IF EXISTS {_TABLE}")
    conn.execute(f"CREATE TABLE {_TABLE} ({decls})")
    placeholders = ", ".join(["?"] * len(cols))
    columns = [frame.column(c) for c in cols]

    def rows():
        for i in range(len(frame)):
            out = []
            for col in columns:
                v = col[i]
                if isinstance(v, np.datetime64):
                    v = str(v.astype("datetime64[s]"))
                out.append(v)
            yield tuple(out)

    conn.executemany(f"INSERT INTO {_TABLE} VALUES ({placeholders})", rows())
    conn.commit()


def translate_vis_to_sql(spec: VisSpec, frame: DataFrame) -> str:
    """Produce the single SQL statement that processes ``spec``.

    Shape detection and rendering fragments are shared with the batch
    compiler (:mod:`~repro.core.executor.sql_compile`) so the per-spec and
    consolidated translations can never drift apart.
    """
    where = _where_clause(spec.filters)

    if spec.mark == "histogram":
        # Legacy single-statement form (integer bucket arithmetic over the
        # *unfiltered* table extent).  The executor itself never runs this:
        # per-spec execution delegates histograms to the dataframe engine
        # for exact numpy edge parity, and batch execution bins through
        # sql_compile.bucket_expr against numpy-computed edges.
        x, y = spec.x, spec.y
        enc = x if x is not None and x.bin else y
        if enc is None:
            raise ExecutorError("histogram requires a binned axis")
        q = _quote(enc.field)
        b = enc.resolved_bin_size
        not_null = f"{q} IS NOT NULL"
        where_h = f"{where} AND {not_null}" if where else f" WHERE {not_null}"
        return (
            f"SELECT CAST(MIN(({q} - (SELECT MIN({q}) FROM {_TABLE})) * {b} / "
            f"NULLIF((SELECT MAX({q}) - MIN({q}) FROM {_TABLE}), 0), {b - 1}) "
            f"AS INTEGER) AS bucket, COUNT(*) AS count "
            f"FROM {_TABLE}{where_h} GROUP BY bucket ORDER BY bucket"
        )
    if spec.mark in ("point", "tick"):
        fields = [enc.field for enc in spec.encodings if enc.field]
        cols = ", ".join(_quote(f) for f in fields)
        return (
            f"SELECT {cols} FROM {_TABLE}{where} "
            f"LIMIT {config.max_scatter_points}"
        )
    if spec.mark in ("bar", "line", "area", "geoshape"):
        group_fields, value, alias, _ = grouped_parts(spec)
        gc = ", ".join(_quote(f) for f in group_fields)
        return (
            f"SELECT {gc}, {value} AS {_quote(alias)} "
            f"FROM {_TABLE}{where} GROUP BY {gc}"
        )
    if spec.mark == "rect":
        group_fields, value, alias, _ = rect_parts(spec)
        gc = ", ".join(_quote(f) for f in group_fields)
        return (
            f"SELECT {gc}, {value} AS {_quote(alias)} "
            f"FROM {_TABLE}{where} GROUP BY {gc}"
        )
    raise ExecutorError(f"no SQL translation for mark {spec.mark!r}")


def _drop_connection(key: int) -> None:
    """Weakref callback: the keyed frame died, so release its database."""
    with _CONN_LOCK:
        _CONN_CACHE.pop(key, None)


class SQLExecutor(Executor):
    """Executes visualization queries on an in-memory sqlite3 database."""

    name = "sql"

    def _connection(self, frame: DataFrame) -> sqlite3.Connection:
        # Identity key is weakref-validated on every read and dropped on
        # collection, so a recycled id never aliases.  check: ignore[unstable-key]
        key = id(frame)
        version = getattr(frame, "_data_version", 0)
        with _CONN_LOCK:
            cached = _CONN_CACHE.get(key)
            if cached is not None:
                ref, cached_version, conn = cached
                if ref() is frame and cached_version == version:
                    _CONN_CACHE.move_to_end(key)
                    return conn
                # Stale content version (or a recycled id): drop and
                # rebuild.  Never close — an in-flight query from before
                # the mutation may still hold the old connection.
                del _CONN_CACHE[key]
        # check_same_thread=False: connections outlive the thread that
        # built them (streamed actions run on pool workers); each query is
        # a single serialized conn.execute, which sqlite allows cross-thread.
        conn = sqlite3.connect(":memory:", check_same_thread=False)
        load_frame(conn, frame)
        try:
            ref = weakref.ref(frame, lambda _, key=key: _drop_connection(key))
        except TypeError:  # pragma: no cover - all repo frames weakref
            ref = lambda: frame  # noqa: E731 - keeps entry permanently live
        with _CONN_LOCK:
            raced = _CONN_CACHE.get(key)
            if raced is not None and raced[0]() is frame and raced[1] == version:
                # A concurrent builder won; use its connection and let ours
                # deallocate on return.
                _CONN_CACHE.move_to_end(key)
                return raced[2]
            _CONN_CACHE[key] = (ref, version, conn)
            _CONN_CACHE.move_to_end(key)
            while len(_CONN_CACHE) > _CACHE_LIMIT:
                _CONN_CACHE.popitem(last=False)
        return conn

    # ------------------------------------------------------------------
    def apply_filters(
        self, frame: DataFrame, filters: list[tuple[str, str, Any]]
    ) -> DataFrame:
        # Row filtering itself stays on the dataframe layer; SQL handles it
        # inside each translated query via WHERE.
        from .df_exec import DataFrameExecutor

        return DataFrameExecutor().apply_filters(frame, filters)

    def _execute_with_conn(
        self, spec: VisSpec, frame: DataFrame, conn: sqlite3.Connection
    ) -> list[dict[str, Any]]:
        """The per-spec path against an already-resolved connection."""
        if spec.mark == "histogram":
            # Delegate histograms to numpy binning for edge parity with the
            # dataframe executor (sqlite bucket arithmetic differs at edges).
            from .df_exec import DataFrameExecutor

            return DataFrameExecutor().execute(spec, frame)
        sql = translate_vis_to_sql(spec, frame)
        try:
            cursor = conn.execute(sql)
        except sqlite3.Error as exc:
            raise ExecutorError(f"SQL execution failed: {exc}\n{sql}") from exc
        names = [d[0] for d in cursor.description]
        records = [dict(zip(names, row)) for row in cursor.fetchall()]
        spec.data = records
        return records

    def execute(self, spec: VisSpec, frame: DataFrame) -> list[dict[str, Any]]:
        if spec.mark == "histogram":
            from .df_exec import DataFrameExecutor

            return DataFrameExecutor().execute(spec, frame)
        return self._execute_with_conn(spec, frame, self._connection(frame))

    def execute_many(
        self, specs: Sequence[VisSpec], frame: DataFrame
    ) -> list[list[dict[str, Any]]]:
        """Consolidated batch execution: one SQL pass per filter group.

        The frame's connection is resolved once for the whole batch (the
        per-spec path re-resolved it per call).  Each filter group
        compiles to one shared-WHERE CTE + ``UNION ALL`` statement (plus
        one MIN/MAX stats scan when the group bins histograms); specs the
        translator can't express run per spec on the same connection.
        Results and attached ``spec.data`` are bit-identical to the
        serial path.
        """
        if not specs:
            return []
        conn = self._connection(frame)
        if not config.sql_batch_execute:
            return [self._execute_with_conn(s, frame, conn) for s in specs]
        results: list[list[dict[str, Any]] | None] = [None] * len(specs)
        for indices in group_indices_by_filter(specs):
            plan = GroupPlan([(i, specs[i]) for i in indices], frame)
            rows_by_branch: dict[int, list[tuple]] = {}
            sql = plan.stats_sql
            try:
                stats_row = conn.execute(sql).fetchone() if sql is not None else None
                sql, decoders = plan.finish(stats_row)
                if sql is not None:
                    for row in conn.execute(sql):
                        rows_by_branch.setdefault(row[0], []).append(row[1:])
            except sqlite3.Error as exc:
                raise ExecutorError(
                    f"SQL batch execution failed: {exc}\n{sql}"
                ) from exc
            for i, bid, decode in decoders:
                records = decode(rows_by_branch.get(bid, []))
                specs[i].data = records
                results[i] = records
            for i in plan.fallback:
                results[i] = self._execute_with_conn(specs[i], frame, conn)
        return results  # type: ignore[return-value]
