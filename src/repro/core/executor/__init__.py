"""Execution engines: dataframe (columnar) and SQL (sqlite3) backends.

Both backends share the cross-visualization computation cache in
:mod:`.cache`, which memoizes relational primitives per
``(frame, _data_version)`` so one recommendation pass scans each input
column once (see the module docstring for the invalidation contract).
"""

from .base import Executor, get_executor
from .cache import ComputationCache, computation_cache
from .df_exec import DataFrameExecutor

__all__ = [
    "ComputationCache",
    "DataFrameExecutor",
    "Executor",
    "computation_cache",
    "get_executor",
]
