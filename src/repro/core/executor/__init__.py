"""Execution engines: dataframe (columnar) and SQL (sqlite3) backends."""

from .base import Executor, get_executor
from .df_exec import DataFrameExecutor

__all__ = ["DataFrameExecutor", "Executor", "get_executor"]
