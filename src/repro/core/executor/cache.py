"""Cross-visualization computation cache: the shared-scan optimization.

One recommendation pass executes dozens of candidate visualizations over
the *same* frame, and each candidate independently repeats the same
relational primitives: evaluating filter masks, factorizing group-key
columns, converting columns to float, and deriving histogram bin edges.
The :class:`ComputationCache` memoizes those primitives per frame so the
whole candidate set performs each scan exactly once — the in-process
analogue of the shared-scan execution in the HTAP literature (Polynesia,
arXiv:2103.00798).

Invalidation contract
---------------------
Entries are keyed on *(frame identity, content version)*:

- **Identity** is held through a ``weakref`` to the frame, never through a
  bare ``id()``.  A raw-id key is unsafe: once the frame is collected its
  id can be recycled by an unrelated frame, silently aliasing cached
  vectors onto the wrong data.  The weakref both proves the original
  object is still alive and evicts the slot the moment it dies.
- **Version** is the frame's ``_data_version`` counter.  Every in-place
  mutation bumps it (``DataFrame._notify_mutation`` on the substrate,
  ``LuxDataFrame._expire`` under the paper's *wflow* rules), so a slot
  recorded at version *v* is unreachable after any mutation.
  ``LuxDataFrame._expire`` additionally calls :meth:`ComputationCache.
  invalidate` with the mutation's column-level delta: when the row set is
  intact and the changed columns are known, the slot is *migrated* to the
  new version and only entries reading a changed column are evicted —
  everything keyed on untouched columns survives the bump (delta-aware
  invalidation).  Row-set changes, unknown deltas, and plain frames (which
  never call ``invalidate``) fall back to whole-slot drop/replacement.

Byte budget
-----------
The cache is bounded by **bytes**, not entry counts
(``config.computation_cache_budget_mb``): every cached vector accounts its
exact ``ndarray.nbytes`` (rows x dtype width), groupings account their
``group_ids`` + ``valid`` arrays (~9 bytes/row).  When an insertion pushes
the total over budget, entries are evicted least-recently-used first,
cheapest-to-recompute sections first, coldest frame slots first — so on a
10M-row frame the cache degrades to fewer memoized scans instead of
pinning gigabytes the way a fixed 64-masks bound would.

Derived-frame links
-------------------
:meth:`link_sample` registers a row sample cut by ``get_sample`` together
with its parent frame and row indices.  While both stay unmutated, the
sample's floats, factorizations, and filter masks are *derived* from the
parent's cached vectors by fancy indexing — so the approximate scoring
pass (pass 1, on the sample) performs its scans on the parent and thereby
pre-warms the exact pass (pass 2, on the full frame).  Derived values are
bit-identical to direct computation for floats and masks; factorizations
reuse the parent's label table (a valid factorization with the parent's
label order), which downstream groupings compact to observed groups.

:meth:`link_derived` generalizes the mechanism to any filtered / sampled /
sliced child (``LuxDataFrame._init_derived`` registers one per row-subset
derivation): floats and masks derive from the parent so children start
warm, while factorize/grouping derivation stays off to keep grouped record
order byte-identical to an unlinked child.  Links are *delta-aware*: a
column-scoped parent mutation migrates its children's links (the changed
columns go stale, everything else keeps deriving) instead of severing
them — see :meth:`_migrate`.

All public methods honor ``config.computation_cache``: when the toggle is
off they compute the requested primitive directly without reading or
writing the store, so ablation benchmarks measure the true uncached cost.

Thread safety: the slot map is guarded by a cache-wide lock, but each
frame slot carries **its own lock** so concurrent filter groups fanned out
by ``DataFrameExecutor.execute_many`` contend per-frame, not globally.
Primitives are computed outside any lock with an insert-time recheck, so
concurrent workers may occasionally duplicate a computation but can never
observe a torn entry; lock order is always cache lock -> slot lock.
Cached arrays are marked read-only before they are shared.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Any, Callable, TYPE_CHECKING

import numpy as np

from ...dataframe.groupby import _Grouping
from ...vis.spec import filter_signature
from ..config import config

if TYPE_CHECKING:  # pragma: no cover
    from ...dataframe import DataFrame

__all__ = ["ComputationCache", "computation_cache", "filter_signature"]


def _grouping_nbytes(grouping: _Grouping) -> int:
    return int(grouping.group_ids.nbytes + grouping.valid.nbytes)


def _factorized_nbytes(entry: tuple[np.ndarray, list[Any]]) -> int:
    codes, labels = entry
    return int(codes.nbytes) + 8 * len(labels)


def _array_nbytes(value: np.ndarray | None) -> int:
    return 0 if value is None else int(value.nbytes)


class _FrameSlot:
    """All memoized primitives for one (frame, version) pair.

    Every section is an LRU ``OrderedDict`` and every entry is byte-
    accounted in ``nbytes``; the slot's own ``lock`` guards all of it, so
    two frames never contend on one another's bookkeeping.
    """

    #: Eviction order under byte pressure: cheapest to recompute first.
    #: A mask is one vectorized comparison, edges are O(1) after the float
    #: view exists; groupings (a full factorize + unique pass) go last.
    SECTIONS = ("masks", "edges", "standardized", "floats", "factorized", "groupings")

    _SIZERS: dict[str, Callable[[Any], int]] = {
        "masks": _array_nbytes,
        "edges": _array_nbytes,
        "standardized": _array_nbytes,
        "floats": _array_nbytes,
        "factorized": _factorized_nbytes,
        "groupings": _grouping_nbytes,
    }

    __slots__ = (
        "ref",
        "version",
        "lock",
        "nbytes",
        "hits",
        "misses",
        "floats",
        "factorized",
        "groupings",
        "standardized",
        "edges",
        "masks",
    )

    def __init__(self, ref: "weakref.ref", version: int) -> None:
        self.ref = ref
        self.version = version
        self.lock = threading.Lock()
        self.nbytes = 0  # guarded-by: lock
        self.hits = 0  # guarded-by: lock
        self.misses = 0  # guarded-by: lock
        #: column name -> read-only float64 view (NaN at missing slots)
        self.floats: "OrderedDict[str, np.ndarray]" = OrderedDict()  # guarded-by: lock
        #: column name -> (codes, labels) from factorize()
        self.factorized: "OrderedDict[str, tuple[np.ndarray, list[Any]]]" = (  # guarded-by: lock
            OrderedDict()
        )
        #: key tuple -> prepared _Grouping (the group-by's expensive half)
        self.groupings: "OrderedDict[tuple[str, ...], _Grouping]" = OrderedDict()  # guarded-by: lock
        #: column name -> standardized vector (or None when unusable)
        self.standardized: "OrderedDict[str, np.ndarray | None]" = OrderedDict()  # guarded-by: lock
        #: (column name, bin count) -> histogram bin edges
        self.edges: "OrderedDict[tuple[str, int], np.ndarray]" = OrderedDict()  # guarded-by: lock
        #: filter signature -> boolean row mask
        self.masks: "OrderedDict[tuple, np.ndarray]" = OrderedDict()  # guarded-by: lock

    # The caller holds ``self.lock`` for all three helpers below.
    def _get(self, section: str, key: Any) -> Any:  # requires-lock: lock
        store: OrderedDict = getattr(self, section)
        if key in store:
            store.move_to_end(key)
            self.hits += 1
            return store[key]
        self.misses += 1
        return _MISSING

    def _put(self, section: str, key: Any, value: Any) -> Any:  # requires-lock: lock
        """Insert unless a concurrent worker won the race; returns winner."""
        store: OrderedDict = getattr(self, section)
        existing = store.get(key, _MISSING)
        if existing is not _MISSING:
            # The winner's entry is in active use right now: refresh its
            # recency so byte pressure doesn't evict it from the LRU front.
            store.move_to_end(key)
            return existing
        store[key] = value
        self.nbytes += self._SIZERS[section](value)
        return value

    def _evict_one(self) -> bool:  # requires-lock: lock
        """Drop the LRU entry of the first non-empty section; False if empty."""
        for section in self.SECTIONS:
            store: OrderedDict = getattr(self, section)
            if store:
                _, value = store.popitem(last=False)
                self.nbytes -= self._SIZERS[section](value)
                return True
        return False


class _DerivedLink:
    """A registered child -> parent row-subset relationship.

    ``stale`` names parent columns that mutated *after* registration with a
    column-scoped delta: the link survives the parent's version bump
    (``parent_version`` is advanced in step) but those columns must no
    longer be derived — the child's snapshot predates the mutation.

    ``derive_groupings`` gates factorize/grouping derivation.  Deriving a
    factorization reuses the parent's label table, whose order can differ
    from the child's own first-occurrence order; that is valid for scoring
    (the sample-link path) but would reorder grouped display records, so
    generic derived-frame links keep it off and derive only the
    order-insensitive primitives (floats, masks).
    """

    __slots__ = (
        "sample_ref",
        "parent_ref",
        "indices",
        "sample_version",
        "parent_version",
        "stale",
        "derive_groupings",
    )

    def __init__(
        self,
        sample_ref: "weakref.ref",
        parent_ref: "weakref.ref",
        indices: np.ndarray,
        sample_version: int,
        parent_version: int,
        derive_groupings: bool = True,
    ) -> None:
        self.sample_ref = sample_ref
        self.parent_ref = parent_ref
        self.indices = indices
        self.sample_version = sample_version
        self.parent_version = parent_version
        self.stale: set[str] = set()  # guarded-by: cache _lock
        self.derive_groupings = derive_groupings


class ComputationCache:
    """Memoizes per-frame relational primitives across a candidate set."""

    def __init__(self, max_frames: int = 8, budget_bytes: int | None = None) -> None:
        self._slots: "OrderedDict[int, _FrameSlot]" = OrderedDict()  # guarded-by: _lock
        self._links: dict[int, _DerivedLink] = {}  # guarded-by: _lock
        self._lock = threading.RLock()
        self._max_frames = max_frames
        self._budget_override = budget_bytes

    # ------------------------------------------------------------------
    # Slot bookkeeping
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return bool(config.computation_cache)

    def budget_bytes(self) -> int:
        """The active byte budget; 0 means unbounded."""
        if self._budget_override is not None:
            return self._budget_override
        return max(int(config.computation_cache_budget_mb), 0) << 20

    def _slot(self, frame: "DataFrame") -> _FrameSlot | None:
        """The live slot for ``frame``, creating/replacing as needed."""
        # Identity key is weakref-validated on every read and evicted on
        # collection, so a recycled id can never alias.  check: ignore[unstable-key]
        key = id(frame)
        version = getattr(frame, "_data_version", 0)
        with self._lock:
            slot = self._slots.get(key)
            if slot is not None and slot.ref() is frame and slot.version == version:
                self._slots.move_to_end(key)
                return slot
            try:
                ref = weakref.ref(frame, lambda _, key=key: self._evict(key))
            except TypeError:  # pragma: no cover - all repo frames weakref
                return None
            slot = _FrameSlot(ref, version)
            self._slots[key] = slot
            self._slots.move_to_end(key)
            while len(self._slots) > self._max_frames:
                self._slots.popitem(last=False)
            return slot

    def _evict(self, key: int) -> None:
        with self._lock:
            self._slots.pop(key, None)
            self._links.pop(key, None)

    def invalidate(self, frame: "DataFrame", delta: Any = None) -> None:
        """Invalidate ``frame``'s slot after a ``_data_version`` bump.

        Without a delta (or when the delta says the row set moved or the
        changed columns are unknown) the whole slot is dropped, as before.
        With a column-level delta the slot is *migrated* instead: it is
        re-keyed to the frame's new version and only the entries that read
        a changed column are evicted — floats, factorizations,
        standardized vectors, and bin edges keyed on untouched columns,
        groupings whose key columns are all untouched, and masks whose
        filter columns are all untouched survive the bump.  Intent-only
        deltas touch no data at all and keep the slot whole.
        """
        if delta is not None and getattr(delta, "intent_only", False):
            return
        if (
            delta is None
            or delta.columns_changed is None
            or delta.rows_changed
        ):
            self._evict(id(frame))
            return
        self._migrate(frame, delta.columns_changed)

    def _migrate(self, frame: "DataFrame", columns: frozenset) -> None:
        """Re-key ``frame``'s slot to its current version, evicting only
        the entries whose inputs intersect ``columns``.

        Safe because the caller guarantees the row set is unchanged: a
        cached vector over an untouched column is bit-identical at the new
        version.  Links from derived children to this frame are migrated
        with it: their ``parent_version`` advances in step and the changed
        columns join the link's ``stale`` set, so a child keeps deriving
        untouched columns instead of cold-starting after every parent
        mutation.  (A child's *own* mutation still kills its link: the
        child diverged from ``parent.iloc[indices]`` entirely.)
        """
        # Weakref-validated identity key (see _slot).  check: ignore[unstable-key]
        key = id(frame)
        version = getattr(frame, "_data_version", 0)
        with self._lock:
            for link in self._links.values():
                if (
                    link.parent_ref() is frame
                    and link.parent_version == version - 1
                ):
                    # Stale-first write order: a reader that observes the
                    # advanced parent_version is guaranteed to see the
                    # stale columns too (both writes are under _lock; the
                    # reader snapshots under _lock in _parent_view).
                    link.stale.update(columns)
                    link.parent_version = version
            slot = self._slots.get(key)
            if slot is None or slot.ref() is not frame:
                return
            with slot.lock:
                if slot.version == version:
                    return
                slot.version = version
                for section, affected in (
                    ("floats", lambda k: k in columns),
                    ("factorized", lambda k: k in columns),
                    ("standardized", lambda k: k in columns),
                    ("edges", lambda k: k[0] in columns),
                    ("groupings", lambda k: any(c in columns for c in k)),
                    (
                        "masks",
                        lambda k: any(attr in columns for attr, _, _ in k),
                    ),
                ):
                    store: OrderedDict = getattr(slot, section)
                    for entry_key in [k for k in store if affected(k)]:
                        value = store.pop(entry_key)
                        slot.nbytes -= _FrameSlot._SIZERS[section](value)

    def clear(self) -> None:
        with self._lock:
            self._slots.clear()
            self._links.clear()

    def stats(self) -> dict[str, int]:
        """Occupancy / traffic counters, summed across slots (introspection)."""
        with self._lock:
            slots = list(self._slots.values())
            links = len(self._links)
        return {
            "frames": len(slots),
            "floats": sum(len(s.floats) for s in slots),
            "groupings": sum(len(s.groupings) for s in slots),
            "masks": sum(len(s.masks) for s in slots),
            "bytes": sum(s.nbytes for s in slots),
            "hits": sum(s.hits for s in slots),
            "misses": sum(s.misses for s in slots),
            "links": links,
        }

    def _store(self, slot: _FrameSlot, section: str, key: Any, value: Any) -> Any:
        """Insert ``value`` and enforce the budget; returns the cached winner.

        Entries whose size alone exceeds the whole budget are handed back
        *uncached*: storing one would evict every smaller entry and then be
        evicted itself, degrading the cache to zero hits (the 10M-row case,
        where one float64 view is 80MB against the 64MiB default budget).
        """
        budget = self.budget_bytes()
        if budget and _FrameSlot._SIZERS[section](value) > budget:
            return value
        with slot.lock:
            value = slot._put(section, key, value)
        self._enforce_budget()
        return value

    def _enforce_budget(self) -> None:
        """Evict LRU entries until total bytes fit the configured budget.

        Walks frame slots coldest-first; within a slot, sections are
        evicted cheapest-to-recompute first (``_FrameSlot.SECTIONS``).  A
        slot emptied by eviction is dropped unless it is the hottest one
        (the slot serving the current pass keeps its identity so in-flight
        lookups re-fill it rather than recreate it).
        """
        budget = self.budget_bytes()
        if budget <= 0:
            return
        with self._lock:
            total = sum(s.nbytes for s in self._slots.values())
            if total <= budget:
                return
            for key in list(self._slots):
                slot = self._slots.get(key)
                if slot is None:  # pragma: no cover - concurrent weakref death
                    continue
                with slot.lock:
                    while total > budget and slot._evict_one():
                        total = sum(s.nbytes for s in self._slots.values())
                    if slot.nbytes == 0 and key != next(reversed(self._slots)):
                        self._slots.pop(key, None)
                if total <= budget:
                    return

    # ------------------------------------------------------------------
    # Sample links (pre-warming the parent frame's slot)
    # ------------------------------------------------------------------
    def link_sample(
        self, sample: "DataFrame", parent: "DataFrame", indices: np.ndarray
    ) -> None:
        """Register ``sample`` as ``parent.iloc[indices]``, immutably cut.

        While both frames stay at their registration versions, primitives
        requested on the sample are derived from the parent's cached
        vectors (computing them on the parent first), so a sampled ranking
        pass pre-warms the full-frame pass that follows it.
        """
        self._link(sample, parent, indices, derive_groupings=True)

    def link_derived(
        self, child: "DataFrame", parent: "DataFrame", indices: np.ndarray
    ) -> None:
        """Register a filtered/sampled/sliced child as ``parent.iloc[indices]``.

        The generic derived-frame link: the child's floats and filter
        masks are sliced from the parent's cached vectors instead of
        rescanning the child's copied columns, so derived frames start
        warm.  Factorizations and groupings are *not* derived (see
        :class:`_DerivedLink.derive_groupings`) so grouped record order is
        byte-identical to an unlinked child.
        """
        self._link(child, parent, indices, derive_groupings=False)

    def _link(
        self,
        child: "DataFrame",
        parent: "DataFrame",
        indices: np.ndarray,
        derive_groupings: bool,
    ) -> None:
        if child is parent:
            return
        # Weakref-validated identity key (see _slot).  check: ignore[unstable-key]
        key = id(child)
        try:
            sample_ref = weakref.ref(child, lambda _, k=key: self._unlink(k))
            parent_ref = weakref.ref(parent)
        except TypeError:  # pragma: no cover - all repo frames weakref
            return
        indices = np.asarray(indices, dtype=np.int64)
        indices.setflags(write=False)
        link = _DerivedLink(
            sample_ref,
            parent_ref,
            indices,
            getattr(child, "_data_version", 0),
            getattr(parent, "_data_version", 0),
            derive_groupings=derive_groupings,
        )
        with self._lock:
            self._links[key] = link

    def _unlink(self, key: int) -> None:
        with self._lock:
            self._links.pop(key, None)

    def _parent_view(
        self,
        frame: "DataFrame",
        columns: "tuple[str, ...]" = (),
        grouping: bool = False,
    ) -> "tuple[DataFrame, np.ndarray] | None":
        """(parent, row indices) when ``frame`` is a still-valid derived cut.

        ``columns`` are the parent columns the caller wants to derive from;
        the view is refused when any of them went stale (the parent mutated
        that column after the link was cut).  ``grouping`` marks an
        order-sensitive derivation (factorize/grouping), refused on links
        registered with ``derive_groupings=False``.
        """
        with self._lock:
            # Weakref-validated identity key (see _slot).  check: ignore[unstable-key]
            link = self._links.get(id(frame))
            if link is None:
                return None
            if link.stale and any(c in link.stale for c in columns):
                return None
            parent_version = link.parent_version
        if link.sample_ref() is not frame:
            return None
        if grouping and not link.derive_groupings:
            return None
        parent = link.parent_ref()
        if parent is None:
            return None
        if getattr(frame, "_data_version", 0) != link.sample_version:
            return None
        if getattr(parent, "_data_version", 0) != parent_version:
            return None
        return parent, link.indices

    # ------------------------------------------------------------------
    # Memoized primitives
    # ------------------------------------------------------------------
    def to_float(self, frame: "DataFrame", name: str) -> np.ndarray:
        """``frame.column(name).to_float()``, computed once per version.

        The returned array is shared and read-only; fancy indexing (the way
        every caller consumes it) copies, so downstream code is unaffected.
        """
        slot = self._slot(frame) if self.enabled else None
        if slot is None:
            return frame.column(name).to_float()
        with slot.lock:
            out = slot._get("floats", name)
        if out is not _MISSING:
            return out
        view = self._parent_view(frame, (name,))
        if view is not None:
            parent, idx = view
            out = self.to_float(parent, name)[idx]
        else:
            out = frame.column(name).to_float()
        out.setflags(write=False)
        return self._store(slot, "floats", name, out)

    def factorize(
        self, frame: "DataFrame", name: str
    ) -> tuple[np.ndarray, list[Any]]:
        """``frame.column(name).factorize()``, computed once per version.

        For a linked sample the codes are sliced from the parent's
        factorization (reusing its label table), so the scan happens on —
        and stays cached for — the parent.
        """
        slot = self._slot(frame) if self.enabled else None
        if slot is None:
            return frame.column(name).factorize()
        with slot.lock:
            out = slot._get("factorized", name)
        if out is not _MISSING:
            return out
        view = self._parent_view(frame, (name,), grouping=True)
        if view is not None:
            parent, idx = view
            parent_codes, labels = self.factorize(parent, name)
            codes = parent_codes[idx]
        else:
            codes, labels = frame.column(name).factorize()
        codes.setflags(write=False)
        return self._store(slot, "factorized", name, (codes, labels))

    def grouping(self, frame: "DataFrame", keys: tuple[str, ...]) -> _Grouping:
        """A prepared :class:`_Grouping` (factorized + combined group ids).

        This is the expensive half of every group-by; per-key factorizations
        route through :meth:`factorize` so single-column and multi-column
        groupings over the same key share one scan.

        For a linked sample the whole prepared grouping is *derived* from
        the parent's (slice ``group_ids``, recompact observed codes — see
        :meth:`_Grouping.from_parent`), so pass 1 builds — and pass 2 then
        reuses — the full-frame grouping without the sample refactorizing
        or re-uniquing anything.
        """
        keys = tuple(keys)
        slot = self._slot(frame) if self.enabled else None
        if slot is None:
            return _Grouping(frame, keys)
        with slot.lock:
            out = slot._get("groupings", keys)
        if out is not _MISSING:
            return out
        view = self._parent_view(frame, keys, grouping=True)
        if view is not None:
            parent, idx = view
            out = _Grouping.from_parent(self.grouping(parent, keys), idx)
        else:
            out = _Grouping(
                frame, keys, factorize=lambda name: self.factorize(frame, name)
            )
        return self._store(slot, "groupings", keys, out)

    def standardized(self, frame: "DataFrame", name: str) -> np.ndarray | None:
        """Zero-mean vector scaled so pairwise Pearson is a dot product.

        Returns None when NaNs or zero variance make the fast path invalid
        (callers fall back to pairwise-complete correlation).  Never
        derived from a sample link: standardization constants (mean, std)
        differ between a sample and its parent.
        """
        slot = self._slot(frame) if self.enabled else None
        if slot is None:
            return self._compute_standardized(frame, name)
        with slot.lock:
            out = slot._get("standardized", name)
        if out is not _MISSING:
            return out
        out = self._compute_standardized(frame, name)
        if out is not None:
            out.setflags(write=False)
        return self._store(slot, "standardized", name, out)

    def _compute_standardized(
        self, frame: "DataFrame", name: str
    ) -> np.ndarray | None:
        v = self.to_float(frame, name)
        if np.isnan(v).any():
            return None
        std = v.std()
        if std == 0 or len(v) < 3:
            return None
        return (v - v.mean()) / (std * np.sqrt(len(v)))

    def bin_edges(
        self,
        frame: "DataFrame",
        name: str,
        bins: int,
        valid_values: np.ndarray | None = None,
    ) -> np.ndarray:
        """Histogram bin edges over the column's valid values.

        Callers that already hold the NaN-filtered values pass them via
        ``valid_values`` so the uncached path converts the column once,
        not twice.  Never derived from a sample link: edges depend on the
        subset's min/max, not just its rows.
        """
        slot = self._slot(frame) if self.enabled else None
        if slot is None:
            return self._compute_edges(frame, name, bins, valid_values)
        key = (name, int(bins))
        with slot.lock:
            out = slot._get("edges", key)
        if out is not _MISSING:
            return out
        out = self._compute_edges(frame, name, bins, valid_values)
        out.setflags(write=False)
        return self._store(slot, "edges", key, out)

    def _compute_edges(
        self,
        frame: "DataFrame",
        name: str,
        bins: int,
        valid_values: np.ndarray | None = None,
    ) -> np.ndarray:
        if valid_values is None:
            valid_values = self.to_float(frame, name)
            valid_values = valid_values[~np.isnan(valid_values)]
        return np.histogram_bin_edges(valid_values, bins=bins)

    def filter_mask(
        self,
        frame: "DataFrame",
        filters: Any,
        compute: Callable[["DataFrame"], np.ndarray],
    ) -> np.ndarray:
        """The boolean row mask for a filter clause list.

        ``compute`` receives the frame to evaluate against: for a linked
        sample the mask is computed on the *parent* and sliced down, so
        pass 1 leaves the full-frame mask warm for pass 2.

        Only the mask is stored, never the materialized subframe: a
        subframe is a full row copy and pinning it process-wide would
        retain GBs on large static frames.  Batch executors that want
        subframe sharing hold the subframe locally for the duration of
        their batch (see ``DataFrameExecutor.execute_many``).
        """
        slot = self._slot(frame) if self.enabled else None
        if slot is None:
            return compute(frame)
        sig = filter_signature(filters)
        with slot.lock:
            out = slot._get("masks", sig)
        if out is not _MISSING:
            return out
        view = self._parent_view(frame, tuple(attr for attr, _, _ in sig))
        if view is not None:
            parent, idx = view
            out = self.filter_mask(parent, filters, compute)[idx]
        else:
            out = compute(frame)
        out.setflags(write=False)
        return self._store(slot, "masks", sig, out)


#: Sentinel distinguishing "not cached yet" from a cached None.
_MISSING = object()

#: The process-wide cache shared by executors, scoring, and the optimizer.
computation_cache = ComputationCache()
