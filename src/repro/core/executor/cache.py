"""Cross-visualization computation cache: the shared-scan optimization.

One recommendation pass executes dozens of candidate visualizations over
the *same* frame, and each candidate independently repeats the same
relational primitives: evaluating filter masks, factorizing group-key
columns, converting columns to float, and deriving histogram bin edges.
The :class:`ComputationCache` memoizes those primitives per frame so the
whole candidate set performs each scan exactly once — the in-process
analogue of the shared-scan execution in the HTAP literature (Polynesia,
arXiv:2103.00798).

Invalidation contract
---------------------
Entries are keyed on *(frame identity, content version)*:

- **Identity** is held through a ``weakref`` to the frame, never through a
  bare ``id()``.  A raw-id key is unsafe: once the frame is collected its
  id can be recycled by an unrelated frame, silently aliasing cached
  vectors onto the wrong data.  The weakref both proves the original
  object is still alive and evicts the slot the moment it dies.
- **Version** is the frame's ``_data_version`` counter.  Every in-place
  mutation bumps it (``DataFrame._notify_mutation`` on the substrate,
  ``LuxDataFrame._expire`` under the paper's *wflow* rules), so a slot
  recorded at version *v* is unreachable after any mutation.
  ``LuxDataFrame._expire`` additionally calls :meth:`ComputationCache.
  invalidate` to free the slot's memory eagerly rather than waiting for
  LRU pressure.

All public methods honor ``config.computation_cache``: when the toggle is
off they compute the requested primitive directly without reading or
writing the store, so ablation benchmarks measure the true uncached cost.

Thread safety: slot bookkeeping runs under an ``RLock``; the primitives
themselves are computed outside the lock, so concurrent streaming actions
may occasionally duplicate a computation but can never observe a torn
entry.  Cached arrays are marked read-only before they are shared.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Any, Callable, TYPE_CHECKING

import numpy as np

from ...dataframe.groupby import _Grouping
from ...vis.spec import filter_signature
from ..config import config

if TYPE_CHECKING:  # pragma: no cover
    from ...dataframe import DataFrame

__all__ = ["ComputationCache", "computation_cache", "filter_signature"]


class _FrameSlot:
    """All memoized primitives for one (frame, version) pair."""

    __slots__ = (
        "ref",
        "version",
        "floats",
        "factorized",
        "groupings",
        "standardized",
        "edges",
        "masks",
    )

    def __init__(self, ref: "weakref.ref", version: int) -> None:
        self.ref = ref
        self.version = version
        #: column name -> read-only float64 view (NaN at missing slots)
        self.floats: dict[str, np.ndarray] = {}
        #: column name -> (codes, labels) from factorize()
        self.factorized: dict[str, tuple[np.ndarray, list[Any]]] = {}
        #: key tuple -> prepared _Grouping (the group-by's expensive half);
        #: LRU-bounded: each entry pins ~9 bytes per frame row and distinct
        #: key tuples grow with every new intent, unlike the per-column dicts
        self.groupings: "OrderedDict[tuple[str, ...], _Grouping]" = OrderedDict()
        #: column name -> standardized vector (or None when unusable)
        self.standardized: dict[str, np.ndarray | None] = {}
        #: (column name, bin count) -> histogram bin edges
        self.edges: dict[tuple[str, int], np.ndarray] = {}
        #: filter signature -> boolean row mask (LRU-bounded)
        self.masks: "OrderedDict[tuple, np.ndarray]" = OrderedDict()


class ComputationCache:
    """Memoizes per-frame relational primitives across a candidate set."""

    def __init__(
        self, max_frames: int = 8, max_masks: int = 64, max_groupings: int = 32
    ) -> None:
        self._slots: "OrderedDict[int, _FrameSlot]" = OrderedDict()
        self._lock = threading.RLock()
        self._max_frames = max_frames
        self._max_masks = max_masks
        self._max_groupings = max_groupings

    # ------------------------------------------------------------------
    # Slot bookkeeping
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return bool(config.computation_cache)

    def _slot(self, frame: "DataFrame") -> _FrameSlot | None:
        """The live slot for ``frame``, creating/replacing as needed."""
        key = id(frame)
        version = getattr(frame, "_data_version", 0)
        with self._lock:
            slot = self._slots.get(key)
            if slot is not None and slot.ref() is frame and slot.version == version:
                self._slots.move_to_end(key)
                return slot
            try:
                ref = weakref.ref(frame, lambda _, key=key: self._evict(key))
            except TypeError:  # pragma: no cover - all repo frames weakref
                return None
            slot = _FrameSlot(ref, version)
            self._slots[key] = slot
            self._slots.move_to_end(key)
            while len(self._slots) > self._max_frames:
                self._slots.popitem(last=False)
            return slot

    def _evict(self, key: int) -> None:
        with self._lock:
            self._slots.pop(key, None)

    def invalidate(self, frame: "DataFrame") -> None:
        """Eagerly drop ``frame``'s slot (called on ``_data_version`` bumps)."""
        self._evict(id(frame))

    def clear(self) -> None:
        with self._lock:
            self._slots.clear()

    def stats(self) -> dict[str, int]:
        """Rough occupancy counters, summed across slots (introspection)."""
        with self._lock:
            return {
                "frames": len(self._slots),
                "floats": sum(len(s.floats) for s in self._slots.values()),
                "groupings": sum(len(s.groupings) for s in self._slots.values()),
                "masks": sum(len(s.masks) for s in self._slots.values()),
            }

    # ------------------------------------------------------------------
    # Memoized primitives
    # ------------------------------------------------------------------
    def to_float(self, frame: "DataFrame", name: str) -> np.ndarray:
        """``frame.column(name).to_float()``, computed once per version.

        The returned array is shared and read-only; fancy indexing (the way
        every caller consumes it) copies, so downstream code is unaffected.
        """
        slot = self._slot(frame) if self.enabled else None
        if slot is None:
            return frame.column(name).to_float()
        out = slot.floats.get(name)
        if out is None:
            out = frame.column(name).to_float()
            out.setflags(write=False)
            slot.floats[name] = out
        return out

    def factorize(
        self, frame: "DataFrame", name: str
    ) -> tuple[np.ndarray, list[Any]]:
        """``frame.column(name).factorize()``, computed once per version."""
        slot = self._slot(frame) if self.enabled else None
        if slot is None:
            return frame.column(name).factorize()
        out = slot.factorized.get(name)
        if out is None:
            codes, labels = frame.column(name).factorize()
            codes.setflags(write=False)
            out = (codes, labels)
            slot.factorized[name] = out
        return out

    def grouping(self, frame: "DataFrame", keys: tuple[str, ...]) -> _Grouping:
        """A prepared :class:`_Grouping` (factorized + combined group ids).

        This is the expensive half of every group-by; per-key factorizations
        route through :meth:`factorize` so single-column and multi-column
        groupings over the same key share one scan.
        """
        keys = tuple(keys)
        slot = self._slot(frame) if self.enabled else None
        if slot is None:
            return _Grouping(frame, keys)
        with self._lock:
            out = slot.groupings.get(keys)
            if out is not None:
                slot.groupings.move_to_end(keys)
                return out
        out = _Grouping(
            frame, keys, factorize=lambda name: self.factorize(frame, name)
        )
        with self._lock:
            existing = slot.groupings.get(keys)
            if existing is not None:
                return existing
            slot.groupings[keys] = out
            while len(slot.groupings) > self._max_groupings:
                slot.groupings.popitem(last=False)
        return out

    def standardized(self, frame: "DataFrame", name: str) -> np.ndarray | None:
        """Zero-mean vector scaled so pairwise Pearson is a dot product.

        Returns None when NaNs or zero variance make the fast path invalid
        (callers fall back to pairwise-complete correlation).
        """
        slot = self._slot(frame) if self.enabled else None
        if slot is None:
            return self._compute_standardized(frame, name)
        marker = slot.standardized.get(name, _MISSING)
        if marker is _MISSING:
            marker = self._compute_standardized(frame, name)
            if marker is not None:
                marker.setflags(write=False)
            slot.standardized[name] = marker
        return marker

    def _compute_standardized(
        self, frame: "DataFrame", name: str
    ) -> np.ndarray | None:
        v = self.to_float(frame, name)
        if np.isnan(v).any():
            return None
        std = v.std()
        if std == 0 or len(v) < 3:
            return None
        return (v - v.mean()) / (std * np.sqrt(len(v)))

    def bin_edges(
        self,
        frame: "DataFrame",
        name: str,
        bins: int,
        valid_values: np.ndarray | None = None,
    ) -> np.ndarray:
        """Histogram bin edges over the column's valid values.

        Callers that already hold the NaN-filtered values pass them via
        ``valid_values`` so the uncached path converts the column once,
        not twice.
        """
        slot = self._slot(frame) if self.enabled else None
        if slot is None:
            return self._compute_edges(frame, name, bins, valid_values)
        key = (name, int(bins))
        out = slot.edges.get(key)
        if out is None:
            out = self._compute_edges(frame, name, bins, valid_values)
            out.setflags(write=False)
            slot.edges[key] = out
        return out

    def _compute_edges(
        self,
        frame: "DataFrame",
        name: str,
        bins: int,
        valid_values: np.ndarray | None = None,
    ) -> np.ndarray:
        if valid_values is None:
            valid_values = self.to_float(frame, name)
            valid_values = valid_values[~np.isnan(valid_values)]
        return np.histogram_bin_edges(valid_values, bins=bins)

    def filter_mask(
        self,
        frame: "DataFrame",
        filters: Any,
        compute: Callable[[], np.ndarray],
    ) -> np.ndarray:
        """The boolean row mask for a filter clause list.

        Only the mask is stored, never the materialized subframe: a
        subframe is a full row copy and pinning it process-wide would
        retain GBs on large static frames.  Batch executors that want
        subframe sharing hold the subframe locally for the duration of
        their batch (see ``DataFrameExecutor.execute_many``).
        """
        slot = self._slot(frame) if self.enabled else None
        if slot is None:
            return compute()
        sig = filter_signature(filters)
        # Unlike the plain-dict sections, the LRU bookkeeping here is a
        # structural mutation (move_to_end / popitem), so reads and writes
        # both run under the lock; only the mask evaluation runs outside.
        # The bound matters: a long session generates unboundedly many
        # distinct signatures, each costing one byte per frame row.
        with self._lock:
            out = slot.masks.get(sig)
            if out is not None:
                slot.masks.move_to_end(sig)
                return out
        out = compute()
        out.setflags(write=False)
        with self._lock:
            existing = slot.masks.get(sig)
            if existing is not None:
                return existing
            slot.masks[sig] = out
            while len(slot.masks) > self._max_masks:
                slot.masks.popitem(last=False)
        return out


#: Sentinel distinguishing "not cached yet" from a cached None.
_MISSING = object()

#: The process-wide cache shared by executors, scoring, and the optimizer.
computation_cache = ComputationCache()
