"""Intent compiler (§7.1.2): Expand -> Lookup -> Infer.

Turns validated, possibly-partial Clauses into complete ``VisSpec``s:

1. **Expand** unrolls unions and wildcards into the cross-product of
   alternatives, yielding one candidate clause-list per visualization.
2. **Lookup** fills omitted details (data types) from precomputed metadata
   and removes invalid or ineffective candidates (unknown columns, id
   columns, nominal axes beyond the cardinality cap).
3. **Infer** picks the mark, channels, aggregation, and binning via
   rule-based design heuristics, producing a renderer-ready spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..vis.encoding import Encoding
from ..vis.spec import VisSpec
from .clause import WILDCARD, Clause
from .config import config
from .metadata import Metadata

__all__ = ["CompiledVis", "compile_intent"]


@dataclass
class CompiledVis:
    """A fully specified visualization candidate."""

    clauses: list[Clause]
    spec: VisSpec

    @property
    def attributes(self) -> list[str]:
        return [str(c.attribute) for c in self.clauses if c.is_axis]

    @property
    def filters(self) -> list[Clause]:
        return [c for c in self.clauses if c.is_filter]


# ----------------------------------------------------------------------
# Stage 1: Expand
# ----------------------------------------------------------------------
def _axis_alternatives(clause: Clause, metadata: Metadata) -> list[Clause]:
    if isinstance(clause.attribute, list):
        return [clause._with_attribute(a) for a in clause.attribute]
    if clause.attribute == WILDCARD:
        names = []
        for attr in metadata:
            if attr.data_type == "id":
                continue
            if clause.data_type and attr.data_type != clause.data_type:
                continue
            names.append(attr.name)
        return [clause._with_attribute(n) for n in names]
    return [clause]


def _filter_alternatives(clause: Clause, metadata: Metadata) -> list[Clause]:
    attrs: list[str]
    if isinstance(clause.attribute, list):
        attrs = [str(a) for a in clause.attribute]
    elif clause.attribute == WILDCARD:
        attrs = metadata.columns_of_type("nominal", "geographic")
    else:
        attrs = [str(clause.attribute)]
    out: list[Clause] = []
    for attr in attrs:
        values: list[Any]
        if clause.value == WILDCARD:
            if attr not in metadata:
                continue
            values = list(metadata[attr].unique_values)
        elif isinstance(clause.value, list):
            values = list(clause.value)
        else:
            values = [clause.value]
        for value in values:
            c = clause.copy()
            c.attribute = attr
            c.value = value
            out.append(c)
    return out


def expand(clauses: Sequence[Clause], metadata: Metadata) -> list[list[Clause]]:
    """Cross-product expansion of unions/wildcards (§5.1's n1 x ... x nk)."""
    per_clause: list[list[Clause]] = []
    for clause in clauses:
        alts = (
            _filter_alternatives(clause, metadata)
            if clause.is_filter
            else _axis_alternatives(clause, metadata)
        )
        if not alts:
            return []
        per_clause.append(alts)

    combos: list[list[Clause]] = [[]]
    for alts in per_clause:
        combos = [combo + [alt] for combo in combos for alt in alts]

    # Drop degenerate candidates where one attribute fills two axis slots.
    out = []
    for combo in combos:
        axis_attrs = [str(c.attribute) for c in combo if c.is_axis]
        if len(axis_attrs) == len(set(axis_attrs)):
            out.append(combo)
    return out


# ----------------------------------------------------------------------
# Stage 2: Lookup
# ----------------------------------------------------------------------
def lookup(combo: list[Clause], metadata: Metadata) -> list[Clause] | None:
    """Fill metadata-derived details; None when the candidate is invalid."""
    filled: list[Clause] = []
    for clause in combo:
        attr = str(clause.attribute)
        if attr not in metadata:
            return None
        meta = metadata[attr]
        c = clause.copy()
        if not c.data_type:
            c.data_type = meta.data_type
        if c.is_axis:
            if meta.data_type == "id":
                return None
            if (
                meta.data_type in ("nominal", "geographic")
                and meta.cardinality > config.max_cardinality_for_axis
            ):
                return None
        filled.append(c)
    return filled


# ----------------------------------------------------------------------
# Stage 3: Infer
# ----------------------------------------------------------------------
def infer_spec(combo: list[Clause], metadata: Metadata) -> VisSpec | None:
    """Infer mark, channels, and transforms for one complete clause list."""
    axes = [c for c in combo if c.is_axis]
    filters = [
        (str(c.attribute), c.filter_op, c.value) for c in combo if c.is_filter
    ]
    if len(axes) == 0:
        return None
    if len(axes) > 3:
        return None

    if len(axes) == 1:
        return _infer_univariate(axes[0], filters)
    if len(axes) == 2:
        return _infer_bivariate(axes[0], axes[1], filters, metadata)
    return _infer_trivariate(axes, filters, metadata)


def _infer_univariate(axis: Clause, filters: list) -> VisSpec:
    attr = str(axis.attribute)
    if axis.data_type == "quantitative" and not axis.aggregation_specified:
        # 0 when the clause left it unset: consumers resolve the sentinel
        # lazily through Encoding.resolved_bin_size against the config.
        encs = [
            Encoding("x", attr, "quantitative", bin=True, bin_size=axis.bin_size),
            Encoding("y", "", "quantitative", aggregate="count"),
        ]
        return VisSpec("histogram", encs, filters=filters)
    if axis.data_type == "temporal":
        encs = [
            Encoding("x", attr, "temporal"),
            Encoding("y", "", "quantitative", aggregate="count"),
        ]
        return VisSpec("line", encs, filters=filters)
    if axis.data_type == "geographic":
        encs = [
            Encoding("x", attr, "geographic"),
            Encoding("color", "", "quantitative", aggregate="count"),
        ]
        return VisSpec("geoshape", encs, filters=filters)
    if axis.data_type == "quantitative" and axis.aggregation_specified:
        # Aggregated single measure, e.g. Clause("Age", aggregation="mean").
        encs = [
            Encoding("x", attr, "quantitative", aggregate=axis.aggregation),
        ]
        return VisSpec("bar", encs, filters=filters)
    encs = [
        Encoding("y", attr, "nominal", sort="-x"),
        Encoding("x", "", "quantitative", aggregate="count"),
    ]
    return VisSpec("bar", encs, filters=filters)


def _swap_for_channels(a: Clause, b: Clause) -> tuple[Clause, Clause]:
    """Honor explicit channel requests; default order otherwise."""
    if a.channel == "y" or b.channel == "x":
        return b, a
    return a, b


def _infer_bivariate(
    a: Clause, b: Clause, filters: list, metadata: Metadata
) -> VisSpec | None:
    ta, tb = a.data_type, b.data_type
    # Measure x measure -> scatter.
    if ta == "quantitative" and tb == "quantitative":
        x, y = _swap_for_channels(a, b)
        encs = [
            Encoding("x", str(x.attribute), "quantitative"),
            Encoding("y", str(y.attribute), "quantitative"),
        ]
        return VisSpec("point", encs, filters=filters)
    # Dimension x measure -> aggregated bar/line/map.
    if ta == "quantitative" or tb == "quantitative":
        measure, dim = (a, b) if ta == "quantitative" else (b, a)
        agg = measure.aggregation if measure.aggregation_specified else "mean"
        m_attr, d_attr = str(measure.attribute), str(dim.attribute)
        if dim.data_type == "temporal":
            encs = [
                Encoding("x", d_attr, "temporal"),
                Encoding("y", m_attr, "quantitative", aggregate=agg),
            ]
            return VisSpec("line", encs, filters=filters)
        if dim.data_type == "geographic":
            encs = [
                Encoding("x", d_attr, "geographic"),
                Encoding("color", m_attr, "quantitative", aggregate=agg),
            ]
            return VisSpec("geoshape", encs, filters=filters)
        encs = [
            Encoding("y", d_attr, dim.data_type, sort="-x"),
            Encoding("x", m_attr, "quantitative", aggregate=agg),
        ]
        return VisSpec("bar", encs, filters=filters)
    # Dimension x dimension -> count heatmap.
    x, y = _swap_for_channels(a, b)
    encs = [
        Encoding("x", str(x.attribute), x.data_type),
        Encoding("y", str(y.attribute), y.data_type),
        Encoding("color", "", "quantitative", aggregate="count"),
    ]
    return VisSpec("rect", encs, filters=filters)


def _infer_trivariate(
    axes: list[Clause], filters: list, metadata: Metadata
) -> VisSpec | None:
    measures = [c for c in axes if c.data_type == "quantitative"]
    dims = [c for c in axes if c.data_type != "quantitative"]
    if len(measures) == 2 and len(dims) == 1:
        dim = dims[0]
        attr = str(dim.attribute)
        if (
            attr in metadata
            and metadata[attr].cardinality > config.max_cardinality_for_color
        ):
            return None
        encs = [
            Encoding("x", str(measures[0].attribute), "quantitative"),
            Encoding("y", str(measures[1].attribute), "quantitative"),
            Encoding("color", attr, dim.data_type),
        ]
        return VisSpec("point", encs, filters=filters)
    if len(measures) == 1 and len(dims) == 2:
        measure = measures[0]
        agg = measure.aggregation if measure.aggregation_specified else "mean"
        d1, d2 = dims
        c1 = metadata[str(d1.attribute)].cardinality if str(d1.attribute) in metadata else 0
        c2 = metadata[str(d2.attribute)].cardinality if str(d2.attribute) in metadata else 0
        # Lower-cardinality dimension takes the color channel.
        bar_dim, color_dim = (d1, d2) if c2 <= c1 else (d2, d1)
        color_attr = str(color_dim.attribute)
        if (
            color_attr in metadata
            and metadata[color_attr].cardinality > config.max_cardinality_for_color
        ):
            return None
        if bar_dim.data_type == "temporal":
            encs = [
                Encoding("x", str(bar_dim.attribute), "temporal"),
                Encoding("y", str(measure.attribute), "quantitative", aggregate=agg),
                Encoding("color", color_attr, color_dim.data_type),
            ]
            return VisSpec("line", encs, filters=filters)
        encs = [
            Encoding("y", str(bar_dim.attribute), bar_dim.data_type),
            Encoding("x", str(measure.attribute), "quantitative", aggregate=agg),
            Encoding("color", color_attr, color_dim.data_type),
        ]
        return VisSpec("bar", encs, filters=filters)
    if len(measures) == 3:
        encs = [
            Encoding("x", str(measures[0].attribute), "quantitative"),
            Encoding("y", str(measures[1].attribute), "quantitative"),
            Encoding("color", str(measures[2].attribute), "quantitative"),
        ]
        return VisSpec("point", encs, filters=filters)
    # Three dimensions: colored count heatmap.
    d1, d2, d3 = axes
    encs = [
        Encoding("x", str(d1.attribute), d1.data_type),
        Encoding("y", str(d2.attribute), d2.data_type),
        Encoding("color", "", "quantitative", aggregate="count"),
        Encoding("column", str(d3.attribute), d3.data_type),
    ]
    return VisSpec("rect", encs, filters=filters)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def compile_intent(
    clauses: Sequence[Clause], metadata: Metadata
) -> list[CompiledVis]:
    """Run all three stages; returns one CompiledVis per valid candidate."""
    out: list[CompiledVis] = []
    seen: set[tuple] = set()
    for combo in expand(clauses, metadata):
        filled = lookup(combo, metadata)
        if filled is None:
            continue
        spec = infer_spec(filled, metadata)
        if spec is None:
            continue
        sig = spec.signature()
        if sig in seen:
            continue
        seen.add(sig)
        out.append(CompiledVis(clauses=filled, spec=spec))
    return out
