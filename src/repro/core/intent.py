"""The intent parser (§7.1.1): shorthand strings -> Clause objects.

Accepted shorthands::

    "Age"                       axis
    "Age|Weight"                axis union
    "?"                         wildcard axis
    "Department=Sales"          filter
    "Department=Sales|Support"  filter with value union
    "Country=?"                 filter value wildcard
    "price>=100"                numeric filter
    ["HourlyRate", "DailyRate"] (as a *list element* of the intent) union

An intent is a list whose elements are strings, Clauses, or lists of
strings (a union clause).
"""

from __future__ import annotations

import re
from typing import Any

from .clause import Clause, FILTER_OPS

__all__ = ["parse_intent", "parse_clause"]

# Longest operators first so ">=" wins over ">".
_OP_PATTERN = re.compile(r"(>=|<=|!=|=|>|<)")


def _parse_scalar(text: str) -> Any:
    """Filter values: try int, then float, else keep the string."""
    t = text.strip()
    try:
        return int(t)
    except ValueError:
        pass
    try:
        return float(t)
    except ValueError:
        pass
    return t


def parse_clause(item: Any) -> Clause:
    """Convert one intent element (string / Clause / union list) to a Clause."""
    if isinstance(item, Clause):
        return item.copy()
    if isinstance(item, (list, tuple)):
        parts = [str(p) for p in item]
        return Clause(attribute=parts)
    if not isinstance(item, str):
        raise TypeError(
            f"intent elements must be strings, Clauses, or lists; got {type(item).__name__}"
        )
    text = item.strip()
    if not text:
        raise ValueError("empty intent string")
    match = _OP_PATTERN.search(text)
    if match:
        op = match.group(0)
        attr = text[: match.start()].strip()
        value_text = text[match.end() :].strip()
        if not attr:
            raise ValueError(f"filter missing attribute: {item!r}")
        if op not in FILTER_OPS:
            raise ValueError(f"unsupported filter operation {op!r}")
        if value_text == "?":
            value: Any = "?"
        elif "|" in value_text:
            value = [_parse_scalar(v) for v in value_text.split("|")]
        else:
            value = _parse_scalar(value_text)
        return Clause(attribute=attr, filter_op=op, value=value)
    if "|" in text:
        return Clause(attribute=[a.strip() for a in text.split("|")])
    return Clause(attribute=text)


def parse_intent(intent: Any) -> list[Clause]:
    """Parse a user intent (a single element or a list) into Clauses."""
    if intent is None:
        return []
    if isinstance(intent, (str, Clause)):
        intent = [intent]
    if not isinstance(intent, (list, tuple)):
        raise TypeError(
            f"intent must be a list of clauses/strings, got {type(intent).__name__}"
        )
    return [parse_clause(item) for item in intent]
