"""Usage logging — the reproduction of the paper's ``lux-logger`` (§9/§10).

The paper instruments the widget to log user interactions (514 collected
logs inform the async design: users skim the table a median of 2.8 s
before toggling).  This module records the analogous programmatic events —
prints, intent changes, recommendation computations, exports — with
timestamps, and can replay summary statistics such as the think-time
distribution.

Logging is off by default; enable with :func:`enable`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any

from . import telemetry

__all__ = ["UsageLog", "disable", "enable", "get_log", "record"]


@dataclass(frozen=True)
class UsageEvent:
    """One logged interaction."""

    kind: str  # print | intent | recommend | export | toggle
    timestamp: float
    detail: dict[str, Any] = field(default_factory=dict)


class UsageLog:
    """Thread-safe, bounded, in-memory event log with JSONL export."""

    MAX_EVENTS = 10_000

    def __init__(self) -> None:
        self._events: list[UsageEvent] = []  # guarded-by: _lock
        self._lock = threading.Lock()
        self.enabled = False

    # ------------------------------------------------------------------
    def record(self, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        # Route through the structured logger so usage events land in the
        # same correlated JSON stream as service logs; the emitted record
        # carries trace/span ids when recording happened inside a span,
        # and we fold the trace id back into the stored event so JSONL
        # exports can be joined against traces offline.
        record = telemetry.get_logger("usage").info(kind, **detail)
        trace_id = record.get("trace_id")
        if trace_id:
            detail = dict(detail, trace_id=trace_id)
        event = UsageEvent(kind=kind, timestamp=time.time(), detail=detail)
        with self._lock:
            self._events.append(event)
            if len(self._events) > self.MAX_EVENTS:
                del self._events[: len(self._events) - self.MAX_EVENTS]

    def events(self, kind: str | None = None) -> list[UsageEvent]:
        with self._lock:
            return [e for e in self._events if kind in (None, e.kind)]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # ------------------------------------------------------------------
    def think_times(self) -> list[float]:
        """Gaps between consecutive print events (the §8.2 statistic)."""
        prints = self.events("print")
        return [
            b.timestamp - a.timestamp for a, b in zip(prints, prints[1:])
        ]

    def summary(self) -> dict[str, Any]:
        """Counts per event kind plus think-time statistics."""
        counts: dict[str, int] = {}
        for event in self.events():
            counts[event.kind] = counts.get(event.kind, 0) + 1
        gaps = self.think_times()
        gaps_sorted = sorted(gaps)
        median = gaps_sorted[len(gaps_sorted) // 2] if gaps_sorted else None
        return {"counts": counts, "median_think_time": median, "n_gaps": len(gaps)}

    def to_jsonl(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events():
                handle.write(json.dumps(asdict(event)) + "\n")
        return path

    @classmethod
    def from_jsonl(cls, path: str) -> "UsageLog":
        log = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                raw = json.loads(line)
                log._events.append(
                    UsageEvent(
                        kind=raw["kind"],
                        timestamp=raw["timestamp"],
                        detail=raw.get("detail", {}),
                    )
                )
        return log


_GLOBAL = UsageLog()


def get_log() -> UsageLog:
    """The process-wide usage log."""
    return _GLOBAL


def enable() -> None:
    _GLOBAL.enabled = True


def disable() -> None:
    _GLOBAL.enabled = False


def record(kind: str, **detail: Any) -> None:
    """Record an event on the global log (no-op unless enabled)."""
    _GLOBAL.record(kind, **detail)
