"""Dataframe metadata: attribute statistics and semantic type inference (§8.1).

For every column the engine computes unique values (capped), cardinality,
min/max, and null counts, then infers one of Lux's semantic data types:
``quantitative``, ``nominal``, ``temporal``, ``geographic``, or ``id``.
Misclassifications can be overridden via ``LuxDataFrame.set_data_type``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..dataframe import DataFrame

__all__ = ["AttributeMeta", "Metadata", "compute_metadata", "refresh_metadata"]

#: Column-name cues for geographic attributes.
_GEO_NAMES = {
    "country",
    "countries",
    "nation",
    "state",
    "states",
    "province",
    "county",
    "city",
    "cities",
    "region",
    "continent",
    "iso2",
    "iso3",
    "iso_code",
    "country_code",
    "zip",
    "zipcode",
    "postal_code",
    "neighbourhood",
    "neighborhood",
    "neighbourhood_group",
}

#: Column-name cues for temporal attributes stored as numbers/strings.
_TEMPORAL_NAMES = {"date", "year", "month", "day", "time", "timestamp", "datetime"}

#: A small gazetteer for value-based geographic detection.
_KNOWN_PLACES = {
    # countries
    "united states", "china", "india", "brazil", "russia", "japan", "germany",
    "france", "italy", "canada", "mexico", "spain", "australia", "argentina",
    "nigeria", "egypt", "pakistan", "indonesia", "turkey", "iran", "thailand",
    "south africa", "colombia", "kenya", "ukraine", "poland", "afghanistan",
    "rwanda", "norway", "sweden", "denmark", "finland", "switzerland",
    "netherlands", "belgium", "austria", "portugal", "greece", "chile",
    "peru", "vietnam", "philippines", "malaysia", "singapore", "new zealand",
    "south korea", "united kingdom", "ireland", "israel", "saudi arabia",
    # US states
    "california", "texas", "florida", "new york", "illinois", "ohio",
    "washington", "oregon", "georgia", "virginia", "michigan", "arizona",
    "alabama", "colorado", "nevada", "utah", "massachusetts", "maryland",
}

#: Unique-value lists are capped to bound metadata cost on huge columns.
UNIQUE_CAP = 1000


@dataclass
class AttributeMeta:
    """Statistics and inferred semantics for one column."""

    name: str
    dtype: str
    data_type: str  # quantitative | nominal | temporal | geographic | id
    cardinality: int
    unique_values: list[Any] = field(default_factory=list)
    unique_truncated: bool = False
    min: Any = None
    max: Any = None
    null_count: int = 0

    @property
    def is_measure(self) -> bool:
        return self.data_type == "quantitative"

    @property
    def is_dimension(self) -> bool:
        return self.data_type in ("nominal", "temporal", "geographic")


class Metadata:
    """Container mapping column name -> :class:`AttributeMeta`.

    ``column_versions`` maps each column to the frame ``_data_version`` its
    :class:`AttributeMeta` was computed at.  Partial recomputes (a delta
    naming the changed columns) re-stamp only those columns; untouched
    columns keep their old stamp, making staleness observable per column
    rather than per frame.
    """

    def __init__(
        self,
        attributes: dict[str, AttributeMeta],
        n_rows: int,
        column_versions: dict[str, int] | None = None,
    ) -> None:
        self.attributes = attributes
        self.n_rows = n_rows
        if column_versions is None:
            column_versions = {name: 0 for name in attributes}
        self.column_versions = column_versions

    def __getitem__(self, name: str) -> AttributeMeta:
        return self.attributes[name]

    def __contains__(self, name: str) -> bool:
        return name in self.attributes

    def __iter__(self):
        return iter(self.attributes.values())

    def columns_of_type(self, *data_types: str) -> list[str]:
        return [a.name for a in self if a.data_type in data_types]

    @property
    def measures(self) -> list[str]:
        return self.columns_of_type("quantitative")

    @property
    def dimensions(self) -> list[str]:
        return self.columns_of_type("nominal", "temporal", "geographic")

    def override(self, name: str, data_type: str) -> None:
        """User correction of a misclassified column (§8.1)."""
        valid = ("quantitative", "nominal", "temporal", "geographic", "id")
        if data_type not in valid:
            raise ValueError(f"data_type must be one of {valid}")
        self.attributes[name].data_type = data_type


def _looks_geographic(name: str, meta_values: list[Any]) -> bool:
    base = name.lower().strip().replace(" ", "_")
    if base in _GEO_NAMES:
        return True
    if meta_values:
        sample = [str(v).lower() for v in meta_values[:50] if v is not None]
        if sample:
            hits = sum(1 for v in sample if v in _KNOWN_PLACES)
            return hits / len(sample) > 0.5
    return False


def _looks_temporal_name(name: str) -> bool:
    base = name.lower().strip()
    return base in _TEMPORAL_NAMES or base.endswith(("_date", "_time", "_year"))


def _looks_like_id(name: str, cardinality: int, n_rows: int, dtype: str) -> bool:
    base = name.lower().strip()
    if not (base == "id" or base.endswith(("_id", " id", "id_")) or base.endswith("id")):
        return False
    if dtype in ("int64", "string") and n_rows > 0:
        return cardinality > 0.95 * n_rows and n_rows >= 10
    return False


def infer_data_type(
    name: str,
    dtype: str,
    cardinality: int,
    n_rows: int,
    unique_values: list[Any],
) -> str:
    """Apply Lux's type-inference rules (internal dtype + cardinality)."""
    if dtype == "datetime":
        return "temporal"
    if _looks_like_id(name, cardinality, n_rows, dtype):
        return "id"
    if dtype == "string":
        if _looks_geographic(name, unique_values):
            return "geographic"
        return "nominal"
    if dtype == "bool":
        return "nominal"
    if dtype in ("int64", "float64"):
        if _looks_temporal_name(name) and dtype == "int64":
            # Integer years etc. behave temporally.
            return "temporal"
        # Low-cardinality integers act as categories (e.g. ratings 1-5).
        if dtype == "int64" and cardinality <= 12 and cardinality < max(n_rows, 1):
            return "nominal"
        return "quantitative"
    return "nominal"


def compute_attribute_meta(frame: DataFrame, name: str) -> AttributeMeta:
    col = frame.column(name)
    uniques = col.unique()
    truncated = len(uniques) > UNIQUE_CAP
    cardinality = len(uniques)
    stored = uniques[:UNIQUE_CAP]
    dtype = col.dtype.name
    data_type = infer_data_type(name, dtype, cardinality, len(frame), stored)
    is_orderable = dtype != "string"
    return AttributeMeta(
        name=name,
        dtype=dtype,
        data_type=data_type,
        cardinality=cardinality,
        unique_values=stored,
        unique_truncated=truncated,
        min=col.min() if is_orderable else None,
        max=col.max() if is_orderable else None,
        null_count=col.null_count(),
    )


def compute_metadata(frame: DataFrame, version: int = 0) -> Metadata:
    """Compute full metadata for a frame (the expensive, cacheable step)."""
    attributes = {name: compute_attribute_meta(frame, name) for name in frame.columns}
    versions = {name: version for name in attributes}
    return Metadata(attributes, n_rows=len(frame), column_versions=versions)


def refresh_metadata(
    frame: DataFrame,
    previous: Metadata,
    columns: frozenset[str],
    version: int,
) -> Metadata:
    """Recompute metadata for ``columns`` only, reusing ``previous`` for the
    rest.

    Callers must have established that the row set and schema are unchanged
    (``len(frame)`` equals ``previous.n_rows`` and ``frame.columns`` equals
    the previous attribute set) — only then is carrying an old
    :class:`AttributeMeta` sound.  The rebuilt attribute dict preserves
    ``frame.columns`` order so a partial refresh is indistinguishable from
    a full one apart from the per-column version stamps.
    """
    attributes: dict[str, AttributeMeta] = {}
    versions: dict[str, int] = {}
    for name in frame.columns:
        if name in columns or name not in previous.attributes:
            attributes[name] = compute_attribute_meta(frame, name)
            versions[name] = version
        else:
            attributes[name] = previous.attributes[name]
            versions[name] = previous.column_versions.get(name, 0)
    return Metadata(attributes, n_rows=len(frame), column_versions=versions)
