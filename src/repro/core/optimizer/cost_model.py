"""Cost model for visualization processing (§8.2, Table 2).

Estimates the relational-operation cost of processing one visualization in
abstract "row operation" units.  The absolute scale is irrelevant; the model
is used for *ordering* (async scheduling of cheap actions first) and for the
prune guard inequality ``N * t_exact >> N * t_approx + k * t_exact``.
"""

from __future__ import annotations

from typing import Iterable

from ...vis.spec import VisSpec
from ..metadata import Metadata

__all__ = ["estimate_vis_cost", "estimate_action_cost", "prune_is_beneficial"]

#: Fixed per-visualization overhead (compilation, record assembly).
_BASE_COST = 50.0


def _cardinality(metadata: Metadata, field: str) -> int:
    if field and field in metadata:
        return max(metadata[field].cardinality, 1)
    return 1


def estimate_vis_cost(spec: VisSpec, metadata: Metadata, n_rows: int | None = None) -> float:
    """Predicted cost of processing ``spec`` on a frame of ``n_rows``.

    The per-mark terms follow Table 2:

    - scatter: selection on 2 (3 when colored) columns -> ``cols * n``
    - bar/line: group-by aggregation -> ``n + c`` (``n + c1*c2`` colored)
    - histogram: bin + count -> ``n + b``
    - heatmap: 2-D bin + count -> ``n + b^2`` (+ group-by when colored)
    """
    n = float(n_rows if n_rows is not None else metadata.n_rows)
    # Filters require one selection pass each.
    cost = _BASE_COST + len(spec.filters) * n

    x, y, color = spec.x, spec.y, spec.color
    if spec.mark in ("point", "tick"):
        cols = sum(1 for enc in (x, y, color) if enc is not None and enc.field)
        return cost + max(cols, 1) * n
    if spec.mark == "histogram":
        enc = x if x is not None and x.bin else y
        bins = enc.resolved_bin_size if enc is not None else 10
        return cost + n + bins
    if spec.mark in ("bar", "line", "area", "geoshape"):
        dim = None
        for enc in (x, y):
            if enc is not None and not enc.aggregate:
                dim = enc
        c1 = _cardinality(metadata, dim.field if dim is not None else "")
        if color is not None and color.field and color.field_type != "quantitative":
            c2 = _cardinality(metadata, color.field)
            return cost + n + c1 * c2
        return cost + n + c1
    if spec.mark == "rect":
        if (
            x is not None
            and y is not None
            and x.field_type == "quantitative"
            and y.field_type == "quantitative"
        ):
            # Matches the executor: the numeric 2-D binning path only runs
            # when BOTH axes are quantitative; otherwise it's a group-by.
            extra = x.resolved_bin_size * y.resolved_bin_size
        else:
            extra = _cardinality(metadata, x.field if x else "") * _cardinality(
                metadata, y.field if y else ""
            )
        if color is not None and color.field:
            extra *= 2  # extra aggregation pass
        return cost + n + extra
    return cost + n


def estimate_action_cost(
    specs: Iterable[VisSpec], metadata: Metadata, n_rows: int | None = None
) -> float:
    """Action cost = sum of its visualizations' costs (§8.2, async)."""
    return sum(estimate_vis_cost(s, metadata, n_rows) for s in specs)


def prune_is_beneficial(
    n_candidates: int,
    k: int,
    n_rows: int,
    sample_rows: int,
) -> bool:
    """Evaluate the paper's guard: ``N*t_exact > N*t_approx + k*t_exact``.

    With per-vis cost dominated by the row count, ``t_approx/t_exact``
    reduces to ``sample_rows / n_rows``.
    """
    if n_candidates <= k:
        return False
    if n_rows <= 0 or sample_rows >= n_rows:
        return False
    t_exact = float(n_rows)
    t_approx = float(sample_rows)
    return n_candidates * t_exact > n_candidates * t_approx + k * t_exact
