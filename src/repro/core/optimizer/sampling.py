"""Approximate early pruning of the visualization search space (§8.2, prune).

Two-pass ranking: a first pass scores every candidate on a cached random
sample of the dataframe, then the selected top-k are *recomputed exactly*
on the full data before display — so displayed charts are always exact, and
Recall@k against exact rankings is the quality metric (Fig. 12 right).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...dataframe import DataFrame
from ..compiler import CompiledVis
from ..config import config
from ..executor.base import get_executor
from ..executor.cache import computation_cache
from ..interestingness import needs_executed_data, score_vis
from ..vis import Vis
from ..vislist import VisList
from .cost_model import prune_is_beneficial

__all__ = ["get_sample", "rank_candidates"]


def get_sample(frame: DataFrame) -> DataFrame:
    """The cached row sample used for approximate scoring.

    Frames at or below ``config.sampling_start`` rows are returned as-is.
    The sample is cached as ``(_data_version, sample)`` and is only reused
    while both the length cap and the content version still match: a plain
    DataFrame has no ``_sample_cache``-clearing hook (unlike LuxDataFrame's
    wflow expiry), so without the version key a same-length in-place
    mutation would silently keep scoring on stale rows.

    The cut is registered with the computation cache as a *sample link*
    (row indices + both content versions), so pass-1 scoring on the sample
    derives its scans from — and thereby pre-warms — the parent frame's
    cache slot for the exact pass that follows.
    """
    n = len(frame)
    if not config.sampling or n <= config.sampling_start:
        return frame
    cap = min(config.sampling_cap, n)
    version = getattr(frame, "_data_version", 0)
    cached = getattr(frame, "_sample_cache", None)
    if cached is not None:
        cached_version, sample = cached
        if cached_version == version and len(sample) == cap:
            return sample
    # Same draw as DataFrame.sample (rng.choice without replacement, rows
    # kept in frame order), done here so the chosen indices are available
    # to register the sample link.
    rng = np.random.default_rng(config.random_seed)
    indices = np.sort(rng.choice(n, size=cap, replace=False))
    sample = frame.iloc[indices]
    computation_cache.link_sample(sample, frame, indices)
    try:
        frame._sample_cache = (version, sample)
    except AttributeError:
        pass
    return sample


def _prefetch_for_scoring(
    candidates: Sequence[CompiledVis], frame: DataFrame, executor
) -> None:
    """Batch-execute the specs whose scores need processed records.

    One ``execute_many`` call lets same-filter candidates share a single
    materialized subframe (and every candidate share factorizations etc.).
    The entry point is backend-agnostic: under ``config.executor = "sql"``
    the same call compiles each filter group into one consolidated
    CTE + UNION ALL pass instead of per-candidate queries, so both ranking
    passes get shared scans on either backend.
    Failures fall through silently: ``score_vis`` executes lazily with its
    own per-spec failproofing, so one broken spec cannot sink the batch.
    """
    pending = [
        c.spec
        for c in candidates
        if c.spec.data is None and needs_executed_data(c.spec)
    ]
    if not pending:
        return
    try:
        executor.execute_many(pending, frame)
    except Exception:
        pass


def _exact_scored(
    candidates: Sequence[CompiledVis], frame: DataFrame
) -> list[tuple[float, CompiledVis]]:
    executor = get_executor()
    for cand in candidates:
        cand.spec.data = None
    _prefetch_for_scoring(candidates, frame, executor)
    scored = []
    for cand in candidates:
        score = score_vis(cand.spec, frame, executor)
        scored.append((score, cand))
    return scored


def rank_candidates(
    candidates: Sequence[CompiledVis],
    frame: DataFrame,
    k: int | None = None,
) -> VisList:
    """Rank candidates by interestingness and return the processed top-k.

    When ``config.early_pruning`` holds and the cost-model guard passes,
    scores are approximated on the sample first (pass 1) and only the
    survivors are recomputed exactly (pass 2).
    """
    k = k if k is not None else config.top_k
    executor = get_executor()
    n = len(frame)
    sample = get_sample(frame)

    use_prune = (
        config.early_pruning
        and len(candidates) > k
        and prune_is_beneficial(len(candidates), k, n, len(sample))
    )

    if use_prune:
        # Pass 1 (approximate, on the sample) is batched exactly like pass
        # 2: one execute_many shares each scan across the candidate set.
        for cand in candidates:
            cand.spec.data = None
        _prefetch_for_scoring(candidates, sample, executor)
        approx: list[tuple[float, CompiledVis]] = []
        for cand in candidates:
            approx.append((score_vis(cand.spec, sample, executor), cand))
        approx.sort(key=lambda sc: -sc[0])
        survivors = [cand for _, cand in approx[:k]]
        scored = _exact_scored(survivors, frame)
    else:
        scored = _exact_scored(candidates, frame)

    scored.sort(key=lambda sc: -sc[0])
    top = scored[:k]
    # Exact display data for everything shown (pass 2 guarantee), computed
    # as one shared-scan batch so the top-k repeat no filter/group-by work.
    pending = [cand.spec for _, cand in top if cand.spec.data is None]
    if pending:
        executor.execute_many(pending, frame)
    visualizations = [
        Vis.from_compiled(cand, source=frame, score=score, process=False)
        for score, cand in top
    ]
    return VisList(visualizations=visualizations, source=frame)
