"""Approximate early pruning of the visualization search space (§8.2, prune).

Two-pass ranking: a first pass scores every candidate on a cached random
sample of the dataframe, then the selected top-k are *recomputed exactly*
on the full data before display — so displayed charts are always exact, and
Recall@k against exact rankings is the quality metric (Fig. 12 right).
"""

from __future__ import annotations

from typing import Sequence

from ...dataframe import DataFrame
from ..compiler import CompiledVis
from ..config import config
from ..executor.base import get_executor
from ..interestingness import score_vis
from ..vis import Vis
from ..vislist import VisList
from .cost_model import prune_is_beneficial

__all__ = ["get_sample", "rank_candidates"]


def get_sample(frame: DataFrame) -> DataFrame:
    """The cached row sample used for approximate scoring.

    Frames at or below ``config.sampling_start`` rows are returned as-is.
    LuxDataFrames cache the sample until their next mutation.
    """
    n = len(frame)
    if not config.sampling or n <= config.sampling_start:
        return frame
    cap = min(config.sampling_cap, n)
    cached = getattr(frame, "_sample_cache", None)
    if cached is not None and len(cached) == cap:
        return cached
    sample = frame.sample(n=cap, random_state=config.random_seed)
    try:
        frame._sample_cache = sample
    except AttributeError:
        pass
    return sample


def _exact_scored(
    candidates: Sequence[CompiledVis], frame: DataFrame
) -> list[tuple[float, CompiledVis]]:
    executor = get_executor()
    scored = []
    for cand in candidates:
        cand.spec.data = None
        score = score_vis(cand.spec, frame, executor)
        scored.append((score, cand))
    return scored


def rank_candidates(
    candidates: Sequence[CompiledVis],
    frame: DataFrame,
    k: int | None = None,
) -> VisList:
    """Rank candidates by interestingness and return the processed top-k.

    When ``config.early_pruning`` holds and the cost-model guard passes,
    scores are approximated on the sample first (pass 1) and only the
    survivors are recomputed exactly (pass 2).
    """
    k = k if k is not None else config.top_k
    executor = get_executor()
    n = len(frame)
    sample = get_sample(frame)

    use_prune = (
        config.early_pruning
        and len(candidates) > k
        and prune_is_beneficial(len(candidates), k, n, len(sample))
    )

    if use_prune:
        approx: list[tuple[float, CompiledVis]] = []
        for cand in candidates:
            cand.spec.data = None
            approx.append((score_vis(cand.spec, sample, executor), cand))
        approx.sort(key=lambda sc: -sc[0])
        survivors = [cand for _, cand in approx[:k]]
        scored = _exact_scored(survivors, frame)
    else:
        scored = _exact_scored(candidates, frame)

    scored.sort(key=lambda sc: -sc[0])
    visualizations = []
    for score, cand in scored[:k]:
        # Exact display data for everything shown (pass 2 guarantee).
        if cand.spec.data is None:
            executor.execute(cand.spec, frame)
        visualizations.append(
            Vis.from_compiled(cand, source=frame, score=score, process=False)
        )
    return VisList(visualizations=visualizations, source=frame)
