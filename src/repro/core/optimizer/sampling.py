"""Approximate early pruning of the visualization search space (§8.2, prune).

Two-pass ranking: a first pass scores every candidate on a cached random
sample of the dataframe, then the selected top-k are *recomputed exactly*
on the full data before display — so displayed charts are always exact, and
Recall@k against exact rankings is the quality metric (Fig. 12 right).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...dataframe import DataFrame
from ...vis.spec import candidate_key
from ..compiler import CompiledVis
from ..config import config
from ..executor.base import get_executor
from ..executor.cache import computation_cache
from ..interestingness import needs_executed_data, score_vis
from ..vis import Vis
from ..vislist import VisList
from .cost_model import prune_is_beneficial

__all__ = ["CandidatePrior", "get_sample", "rank_candidates"]


class CandidatePrior:
    """Carried state for one candidate vis from the previous ranking pass.

    ``approx`` is the pass-1 sample score, ``score`` the pass-2 exact
    score, ``vis`` the displayed Vis (with processed data attached) when
    the candidate made the previous top-k and its live object is still
    available.  Any field may be None — a missing value simply means that
    piece is recomputed, so a partial prior is always safe.

    Bit-identity contract: callers may only supply priors for candidates
    whose input columns are untouched since the prior pass, with the row
    set intact.  The ranking sample's row indices are a pure function of
    (row count, cap, seed), so an untouched candidate's sample score and
    exact score are float-identical to what a cold pass would recompute —
    carrying them changes nothing but the work performed.
    """

    __slots__ = ("approx", "score", "vis")

    def __init__(
        self,
        approx: float | None = None,
        score: float | None = None,
        vis: "Vis | None" = None,
    ) -> None:
        self.approx = approx
        self.score = score
        self.vis = vis

    def display_vis(self) -> "Vis | None":
        """The carried Vis, only if it still holds processed data."""
        vis = self.vis
        if vis is not None and vis.spec is not None and vis.spec.data is not None:
            return vis
        return None


def get_sample(frame: DataFrame) -> DataFrame:
    """The cached row sample used for approximate scoring.

    Frames at or below ``config.sampling_start`` rows are returned as-is.
    The sample is cached as ``(_data_version, sample)`` and is only reused
    while both the length cap and the content version still match: a plain
    DataFrame has no ``_sample_cache``-clearing hook (unlike LuxDataFrame's
    wflow expiry), so without the version key a same-length in-place
    mutation would silently keep scoring on stale rows.

    The cut is registered with the computation cache as a *sample link*
    (row indices + both content versions), so pass-1 scoring on the sample
    derives its scans from — and thereby pre-warms — the parent frame's
    cache slot for the exact pass that follows.
    """
    n = len(frame)
    if not config.sampling or n <= config.sampling_start:
        return frame
    cap = min(config.sampling_cap, n)
    version = getattr(frame, "_data_version", 0)
    cached = getattr(frame, "_sample_cache", None)
    if cached is not None:
        cached_version, sample = cached
        if cached_version == version and len(sample) == cap:
            return sample
    # Same draw as DataFrame.sample (rng.choice without replacement, rows
    # kept in frame order), done here so the chosen indices are available
    # to register the sample link.
    rng = np.random.default_rng(config.random_seed)
    indices = np.sort(rng.choice(n, size=cap, replace=False))
    sample = frame.iloc[indices]
    computation_cache.link_sample(sample, frame, indices)
    try:
        frame._sample_cache = (version, sample)
    except AttributeError:
        pass
    return sample


def _prefetch_for_scoring(
    candidates: Sequence[CompiledVis], frame: DataFrame, executor
) -> None:
    """Batch-execute the specs whose scores need processed records.

    One ``execute_many`` call lets same-filter candidates share a single
    materialized subframe (and every candidate share factorizations etc.).
    The entry point is backend-agnostic: under ``config.executor = "sql"``
    the same call compiles each filter group into one consolidated
    CTE + UNION ALL pass instead of per-candidate queries, so both ranking
    passes get shared scans on either backend.
    Failures fall through silently: ``score_vis`` executes lazily with its
    own per-spec failproofing, so one broken spec cannot sink the batch.
    """
    pending = [
        c.spec
        for c in candidates
        if c.spec.data is None and needs_executed_data(c.spec)
    ]
    if not pending:
        return
    try:
        executor.execute_many(pending, frame)
    except Exception:
        pass


def _exact_scored(
    candidates: Sequence[CompiledVis],
    frame: DataFrame,
    prior_of=None,
    exact_out: dict[int, float] | None = None,
) -> list[tuple[float, CompiledVis]]:
    """Exact pass-2 scores, in candidate order.

    ``prior_of`` (candidate -> CandidatePrior | None) supplies carried
    exact scores; candidates without one are recomputed on the full frame,
    exactly as a cold pass would.  ``exact_out`` collects the per-candidate
    scores by ``id(cand)`` for record emission.
    """
    executor = get_executor()
    exact: dict[int, float] = {}
    fresh: list[CompiledVis] = []
    for cand in candidates:
        p = prior_of(cand) if prior_of is not None else None
        if p is not None and p.score is not None:
            exact[id(cand)] = p.score  # check: ignore[unstable-key]
        else:
            cand.spec.data = None
            fresh.append(cand)
    _prefetch_for_scoring(fresh, frame, executor)
    for cand in fresh:
        exact[id(cand)] = score_vis(cand.spec, frame, executor)  # check: ignore[unstable-key]
    if exact_out is not None:
        exact_out.update(exact)
    return [(exact[id(cand)], cand) for cand in candidates]  # check: ignore[unstable-key]


def rank_candidates(
    candidates: Sequence[CompiledVis],
    frame: DataFrame,
    k: int | None = None,
    prior: "dict[str, CandidatePrior] | None" = None,
    records: "dict[str, dict] | None" = None,
) -> VisList:
    """Rank candidates by interestingness and return the processed top-k.

    When ``config.early_pruning`` holds and the cost-model guard passes,
    scores are approximated on the sample first (pass 1) and only the
    survivors are recomputed exactly (pass 2).

    ``prior`` maps ``candidate_key(spec)`` to carried state for candidates
    the caller has proven untouched since the previous pass (see
    ``CandidatePrior``); their scores — and, for the displayed top-k, their
    processed Vis objects — are reused instead of recomputed.  Carried
    values are merged with freshly computed ones in enumeration order, so
    the two-pass algorithm (including stable-sort tie behavior) is
    bit-identical to a cold run.  ``records``, when given, is filled with
    one ``{"approx", "score", "displayed"}`` dict per candidate key so the
    caller can seed the next pass's prior.
    """
    k = k if k is not None else config.top_k
    executor = get_executor()
    n = len(frame)
    sample = get_sample(frame)

    keys: list[str] | None = None
    if prior is not None or records is not None:
        keys = [candidate_key(cand.spec) for cand in candidates]
    prior_map = prior or {}
    prior_by_id: dict[int, CandidatePrior] = {}
    if keys is not None and prior_map:
        for key, cand in zip(keys, candidates):
            p = prior_map.get(key)
            if p is not None:
                prior_by_id[id(cand)] = p  # check: ignore[unstable-key]

    def prior_of(cand: CompiledVis) -> CandidatePrior | None:
        return prior_by_id.get(id(cand))  # check: ignore[unstable-key]

    use_prune = (
        config.early_pruning
        and len(candidates) > k
        and prune_is_beneficial(len(candidates), k, n, len(sample))
    )

    approx_by_id: dict[int, float] = {}
    exact_by_id: dict[int, float] = {}
    if use_prune:
        # Pass 1 (approximate, on the sample) is batched exactly like pass
        # 2: one execute_many shares each scan across the candidate set.
        fresh: list[CompiledVis] = []
        for cand in candidates:
            p = prior_of(cand)
            if p is not None and p.approx is not None:
                approx_by_id[id(cand)] = p.approx  # check: ignore[unstable-key]
            else:
                cand.spec.data = None
                fresh.append(cand)
        _prefetch_for_scoring(fresh, sample, executor)
        for cand in fresh:
            approx_by_id[id(cand)] = score_vis(cand.spec, sample, executor)  # check: ignore[unstable-key]
        approx: list[tuple[float, CompiledVis]] = [
            (approx_by_id[id(cand)], cand) for cand in candidates  # check: ignore[unstable-key]
        ]
        approx.sort(key=lambda sc: -sc[0])
        survivors = [cand for _, cand in approx[:k]]
        scored = _exact_scored(survivors, frame, prior_of, exact_by_id)
    else:
        scored = _exact_scored(candidates, frame, prior_of, exact_by_id)

    scored.sort(key=lambda sc: -sc[0])
    top = scored[:k]
    # Carried top-k candidates whose previous Vis still holds processed
    # data are displayed as-is — the display data of an untouched vis over
    # unchanged rows is exactly what re-execution would produce.
    carried_vis: dict[int, Vis] = {}
    for _, cand in top:
        p = prior_of(cand)
        vis = p.display_vis() if p is not None else None
        if vis is not None:
            carried_vis[id(cand)] = vis  # check: ignore[unstable-key]
    # Exact display data for everything shown (pass 2 guarantee), computed
    # as one shared-scan batch so the top-k repeat no filter/group-by work.
    pending = [
        cand.spec
        for _, cand in top
        if id(cand) not in carried_vis and cand.spec.data is None  # check: ignore[unstable-key]
    ]
    if pending:
        executor.execute_many(pending, frame)
    visualizations: list[Vis] = []
    for score, cand in top:
        vis = carried_vis.get(id(cand))  # check: ignore[unstable-key]
        if vis is not None:
            vis.score = score
        else:
            vis = Vis.from_compiled(cand, source=frame, score=score, process=False)
        visualizations.append(vis)

    if records is not None and keys is not None:
        displayed = {id(cand) for _, cand in top}  # check: ignore[unstable-key]
        for key, cand in zip(keys, candidates):
            records[key] = {
                "approx": approx_by_id.get(id(cand)),  # check: ignore[unstable-key]
                "score": exact_by_id.get(id(cand)),  # check: ignore[unstable-key]
                "displayed": id(cand) in displayed,  # check: ignore[unstable-key]
            }
    return VisList(visualizations=visualizations, source=frame)
