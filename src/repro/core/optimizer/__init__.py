"""The paper's three optimizations: wflow (lazy+memo, lives in core.frame),
prune (sampling), and async (scheduler)."""

from .cost_model import estimate_action_cost, estimate_vis_cost, prune_is_beneficial
from .sampling import get_sample, rank_candidates
from .scheduler import RecommendationSet, run_actions, schedule_actions

__all__ = [
    "RecommendationSet",
    "estimate_action_cost",
    "estimate_vis_cost",
    "get_sample",
    "prune_is_beneficial",
    "rank_candidates",
    "run_actions",
    "schedule_actions",
]
