"""Cost-based action scheduling (§8.2, async).

Actions are ordered cheapest-first using the cost model, so early results
reach the user quickly; with ``config.streaming`` the remaining (laggard)
actions run on a background thread pool and stream into the result object
as they complete.
"""

from __future__ import annotations

import threading
import weakref
from typing import TYPE_CHECKING, Callable

from .. import pool
from ..config import config
from ..errors import PassCancelled
from ..metadata import Metadata

if TYPE_CHECKING:  # pragma: no cover
    from ..actions.base import Action
    from ..vislist import VisList

__all__ = ["RecommendationSet", "drain_all", "schedule_actions"]

#: Live streaming result sets; ``drain_all`` blocks until they finish so
#: benchmarks can fence background work between measured conditions.
_LIVE: "weakref.WeakSet[RecommendationSet]" = weakref.WeakSet()

# Laggard actions run on the process-wide shared pool (``repro.core.pool``),
# the same pool ``execute_many`` fans out on — one global bound on
# background parallelism instead of one per subsystem.  The pool's
# resize hand-off guarantees a submitted action always runs, so a
# RecommendationSet can never be stranded short of its expected put count.


def drain_all(timeout: float | None = 120.0) -> None:
    """Block until every in-flight streaming recommendation completes."""
    for result in list(_LIVE):
        result.wait(timeout)


class RecommendationSet:
    """Ordered action name -> VisList mapping that may fill in over time.

    Synchronous runs are complete on construction; streaming runs expose
    ``ready`` (names computed so far), ``wait()`` (block until done), and
    ``time_to_first`` measurements are possible by polling ``ready``.
    """

    def __init__(self) -> None:
        self._results: dict[str, "VisList"] = {}  # guarded-by: _lock
        self._order: list[str] = []  # guarded-by: _lock
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._expected = 0  # guarded-by: _lock
        self._received = 0  # guarded-by: _lock

    def _put(self, name: str, vislist: "VisList") -> None:
        # Completion counts *puts*, not dict entries: two actions sharing a
        # name dedupe in ``_results``, and a size check would leave ``_done``
        # unset forever, hanging every ``wait()``-backed accessor.
        with self._lock:
            self._results[name] = vislist
            if name not in self._order:
                self._order.append(name)
            self._received += 1
            if self._received >= self._expected:
                self._done.set()

    # Mapping-style access -------------------------------------------------
    # ``wait()`` orders these reads after the last expected ``_put``, but a
    # straggler put (a superseded streaming action completing late) can
    # still be writing — reads take the lock, not just the event.
    def __getitem__(self, name: str) -> "VisList":
        self.wait()
        with self._lock:
            return self._results[name]

    def __contains__(self, name: str) -> bool:
        self.wait()
        with self._lock:
            return name in self._results

    def __iter__(self):
        self.wait()
        with self._lock:
            return iter(list(self._order))

    def __len__(self) -> int:
        self.wait()
        with self._lock:
            return len(self._results)

    def keys(self) -> list[str]:
        self.wait()
        with self._lock:
            return list(self._order)

    def items(self):
        self.wait()
        with self._lock:
            return [(k, self._results[k]) for k in self._order]

    @property
    def ready(self) -> list[str]:
        """Actions whose results are available right now (non-blocking)."""
        with self._lock:
            return list(self._order)

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    def __repr__(self) -> str:
        state = "complete" if self._done.is_set() else "streaming"
        return f"<RecommendationSet {self.ready} [{state}]>"


def schedule_actions(
    actions: list["Action"],
    metadata: Metadata,
    cost_of: Callable[["Action"], float] | None = None,
) -> list["Action"]:
    """Order actions cheapest-first when cost-based scheduling is enabled."""
    if not config.cost_based_scheduling:
        return list(actions)
    def cost(action: "Action") -> float:
        if cost_of is not None:
            return cost_of(action)
        return action.estimated_cost(metadata)

    return sorted(actions, key=cost)


def run_actions(
    actions: list["Action"],
    ldf,
    metadata: Metadata,
    cancel: "threading.Event | None" = None,
    priors: "dict[str, dict] | None" = None,
    records: "dict[str, dict] | None" = None,
) -> RecommendationSet:
    """Execute actions in scheduled order, synchronously or streaming.

    ``cancel`` makes the synchronous path cooperatively cancellable: the
    event is polled between actions and :class:`~repro.core.errors.
    PassCancelled` is raised the moment it is set, so a background pass
    whose data version moved on stops after its current action instead of
    finishing a whole stale pass.  Streaming runs ignore it (their whole
    point is returning control immediately; staleness is handled by the
    version checks of whoever consumes the results).

    ``priors`` maps action name to a ``vis_key -> CandidatePrior`` carry
    map and ``records`` maps action name to an output dict of per-candidate
    score records — actions present in either run through
    :meth:`~repro.core.actions.base.Action.generate_cached` (bit-identical
    to ``generate``); absent actions run plainly.  Each per-action record
    dict is written by exactly one worker, so the streaming path needs no
    extra locking.
    """
    ordered = schedule_actions(actions, metadata)
    result = RecommendationSet()
    result._expected = len(ordered)
    if not ordered:
        result._done.set()
        return result

    def prior_of(action: "Action") -> "dict | None":
        return priors.get(action.name) if priors is not None else None

    def records_of(action: "Action") -> "dict | None":
        return records.get(action.name) if records is not None else None

    if not config.streaming:
        for action in ordered:
            if cancel is not None and cancel.is_set():
                raise PassCancelled(
                    f"recommendation pass cancelled before {action.name!r}"
                )
            result._put(
                action.name,
                _generate_safely(action, ldf, prior_of(action), records_of(action)),
            )
        return result

    # Streaming: run the cheapest action inline so something is ready when
    # control returns, then stream the rest from a background pool.
    _LIVE.add(result)
    first, rest = ordered[0], ordered[1:]
    result._put(first.name, _generate_safely(first, ldf, prior_of(first), records_of(first)))
    if not rest:
        return result
    for action in rest:
        pool.submit(
            lambda a=action: result._put(
                a.name, _generate_safely(a, ldf, prior_of(a), records_of(a))
            )
        )
    return result


def _generate_safely(
    action: "Action",
    ldf,
    prior: "dict | None" = None,
    records: "dict | None" = None,
) -> "VisList":
    """Run one action, containing failures (§10.3 failproofing).

    A broken action (most often a user UDF) yields an empty tab plus a
    warning instead of taking down the whole dashboard.  On failure any
    partially collected candidate records are discarded — they would
    otherwise seed the next pass's prior with state from an action whose
    published result is the empty tab.
    """
    try:
        if prior is not None or records is not None:
            return action.generate_cached(ldf, prior or {}, records)
        return action.generate(ldf)
    except Exception as exc:
        import warnings

        from ..errors import LuxWarning
        from ..vislist import VisList

        if records is not None:
            records.clear()
        warnings.warn(
            f"action {action.name!r} failed ({exc}); showing an empty tab.",
            LuxWarning,
        )
        return VisList(visualizations=[])
