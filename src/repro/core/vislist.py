"""VisList: an ordered collection of visualizations (§4.A).

Created either directly by users (wildcards/unions expand into one Vis per
alternative, e.g. Q5-Q7 in the paper) or internally by actions, which score
and rank their VisLists.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from ..dataframe import DataFrame
from .clause import Clause
from .compiler import compile_intent
from .errors import IntentError
from .executor.base import get_executor
from .intent import parse_intent
from .validator import validate_intent
from .vis import Vis, metadata_for

__all__ = ["VisList"]


class VisList:
    """A list of Vis objects sharing a common (expanded) intent."""

    def __init__(
        self,
        intent: Any = None,
        source: DataFrame | None = None,
        visualizations: Sequence[Vis] | None = None,
    ) -> None:
        if visualizations is not None:
            self._visualizations = list(visualizations)
            self._intent: list[Clause] = parse_intent(intent) if intent else []
            self.source = source
            return
        self._intent = parse_intent(intent)
        self._visualizations = []
        self.source = None
        if source is not None:
            self.refresh_source(source)

    # ------------------------------------------------------------------
    def refresh_source(self, frame: DataFrame) -> "VisList":
        metadata = metadata_for(frame)
        validate_intent(self._intent, metadata)
        candidates = compile_intent(self._intent, metadata)
        if not candidates:
            raise IntentError("intent did not compile to any valid visualization.")
        executor = get_executor()
        visualizations = []
        for compiled in candidates:
            executor.execute(compiled.spec, frame)
            visualizations.append(
                Vis.from_compiled(compiled, source=frame, process=False)
            )
        self._visualizations = visualizations
        self.source = frame
        return self

    # ------------------------------------------------------------------
    @property
    def intent(self) -> list[Clause]:
        return list(self._intent)

    def __len__(self) -> int:
        return len(self._visualizations)

    def __getitem__(self, i: int | slice) -> Vis | list[Vis]:
        return self._visualizations[i]

    def __iter__(self) -> Iterator[Vis]:
        return iter(self._visualizations)

    def append(self, vis: Vis) -> None:
        self._visualizations.append(vis)

    # ------------------------------------------------------------------
    def score(self) -> "VisList":
        """Compute interestingness for every Vis (idempotent)."""
        for vis in self._visualizations:
            vis.compute_score()
        return self

    def sort(self, descending: bool = True) -> "VisList":
        """Order by score; unscored Vis objects are scored first."""
        self.score()
        self._visualizations.sort(
            key=lambda v: v.score if v.score is not None else 0.0,
            reverse=descending,
        )
        return self

    def top_k(self, k: int) -> "VisList":
        self.sort()
        return VisList(
            visualizations=self._visualizations[:k], source=self.source
        )

    def specs(self) -> list[Any]:
        return [v.spec for v in self._visualizations if v.spec is not None]

    def __repr__(self) -> str:
        lines = [f"<VisList ({len(self)} visualizations)>"]
        for vis in self._visualizations[:15]:
            lines.append(f"  {vis!r}")
        if len(self) > 15:
            lines.append(f"  ... ({len(self) - 15} more)")
        return "\n".join(lines)
