"""Lux core: the paper's primary contribution.

Public entry points:

- :class:`LuxDataFrame` / :class:`LuxSeries` — always-on dataframes
- :class:`Clause`, :class:`Vis`, :class:`VisList` — the intent language
- :func:`read_csv` — load CSVs straight into LuxDataFrames
- :data:`config` — optimization and display knobs
- :func:`register_action` / :func:`remove_action` — custom actions
"""

from .clause import Clause
from .config import Config, config, config_overlay
from .errors import ExecutorError, IntentError, LuxError, LuxWarning
from .frame import LuxDataFrame, LuxSeries, read_csv
from .history import History
from .metadata import Metadata, compute_metadata
from .vis import Vis
from .vislist import VisList
from .actions.registry import register_action, remove_action
from . import usage_log

__all__ = [
    "Clause",
    "Config",
    "ExecutorError",
    "History",
    "IntentError",
    "LuxDataFrame",
    "LuxError",
    "LuxSeries",
    "LuxWarning",
    "Metadata",
    "Vis",
    "VisList",
    "compute_metadata",
    "usage_log",
    "config",
    "config_overlay",
    "read_csv",
    "register_action",
    "remove_action",
]
