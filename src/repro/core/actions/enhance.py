"""Enhance action: add one attribute to the current intent (Table 1)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..clause import Clause
from ..compiler import CompiledVis
from ..metadata import Metadata
from .base import Action, Footprint, intent_columns

if TYPE_CHECKING:  # pragma: no cover
    from ..frame import LuxDataFrame

__all__ = ["EnhanceAction"]


class EnhanceAction(Action):
    name = "Enhance"
    description = "Augment the current visualization with one more attribute."

    def applies_to(self, ldf: "LuxDataFrame") -> bool:
        axes = [c for c in ldf.intent if c.is_axis]
        return 1 <= len(axes) <= 2

    def candidates(self, ldf: "LuxDataFrame") -> list[CompiledVis]:
        metadata = ldf.metadata
        intent = ldf.intent
        used = {
            str(c.attribute) for c in intent if c.is_axis and not c.is_wildcard
        }
        out: list[CompiledVis] = []
        for attr in metadata:
            if attr.name in used or attr.data_type == "id":
                continue
            out.extend(
                self._compile(intent + [Clause(attribute=attr.name)], metadata)
            )
        return out

    def search_space_size(self, metadata: Metadata) -> int:
        return max(len(metadata.attributes) - 1, 0)

    def footprint(self, ldf: "LuxDataFrame", metadata: Metadata) -> Footprint:
        # Pairs the intent with every other attribute: any column change
        # can surface in a candidate, so the footprint is the whole frame —
        # but per-candidate entries confine a single-column change to the
        # candidates actually plotting it.
        intent = intent_columns(ldf)
        if intent is None:
            return Footprint(None, intent=True, candidates=None)
        return Footprint(
            set(metadata.attributes) | intent,
            intent=True,
            candidates=self.candidate_footprints(ldf, metadata, intent=True),
        )
