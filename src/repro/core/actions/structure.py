"""Structure-based recommendations (§6): dataframe shape as implicit intent.

The Index action visualizes pre-aggregated frames (groupby/pivot results)
by grouping values row- or column-wise — e.g. a pivot of COVID cases by
state and date turns into one time-series line per state (Fig. 7).
Series visualizations reuse the univariate machinery and live on LuxSeries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...vis.encoding import Encoding
from ...vis.spec import VisSpec
from ..compiler import CompiledVis
from ..config import config
from ..metadata import Metadata
from .base import Action, Footprint

if TYPE_CHECKING:  # pragma: no cover
    from ..frame import LuxDataFrame

__all__ = ["IndexAction"]


def _columns_look_temporal(names: list[str]) -> bool:
    """True when column labels parse as dates (a pivoted time axis)."""
    from ...dataframe.datetimes import parse_datetime_scalar

    if len(names) < 3:
        return False
    parsed = [parse_datetime_scalar(n) for n in names]
    return sum(p is not None for p in parsed) / len(names) > 0.8


class IndexAction(Action):
    """Visualize values grouped by row/column indexes (Table 1)."""

    name = "Index"
    description = "Visualize values grouped by the dataframe's index."
    ranked = False

    def applies_to(self, ldf: "LuxDataFrame") -> bool:
        if ldf.empty or ldf.index.is_default:
            return False
        numeric = [
            c for c in ldf.columns if ldf.column(c).dtype.name in ("int64", "float64")
        ]
        return bool(numeric) and len(ldf) <= 1000

    def candidates(self, ldf: "LuxDataFrame") -> list[CompiledVis]:
        numeric = [
            c for c in ldf.columns if ldf.column(c).dtype.name in ("int64", "float64")
        ]
        index_name = ldf.index.name or "index"
        labels = ldf.index.to_list()
        index_temporal = ldf.index.column.dtype.name == "datetime"
        wide_time = _columns_look_temporal(numeric)
        out: list[CompiledVis] = []

        if wide_time:
            # Row-wise: each row becomes a series over the column axis (Fig 7).
            for i in range(min(len(ldf), config.top_k)):
                records = [
                    {"column": c, "value": ldf.column(c)[i]} for c in numeric
                ]
                spec = VisSpec(
                    "line",
                    [
                        Encoding("x", "column", "temporal"),
                        Encoding("y", "value", "quantitative"),
                    ],
                    title=f"{index_name} = {labels[i]}",
                )
                spec.data = records
                out.append(CompiledVis(clauses=[], spec=spec))
            return out

        # Column-wise: each numeric column over the index labels.
        for col in numeric:
            records = [
                {index_name: label, col: value}
                for label, value in zip(labels, ldf.column(col).to_list())
            ]
            if index_temporal:
                encs = [
                    Encoding("x", index_name, "temporal"),
                    Encoding("y", col, "quantitative"),
                ]
                spec = VisSpec("line", encs, title=f"{col} by {index_name}")
            else:
                encs = [
                    Encoding("y", index_name, "nominal"),
                    Encoding("x", col, "quantitative"),
                ]
                spec = VisSpec("bar", encs, title=f"{col} by {index_name}")
            spec.data = records
            out.append(CompiledVis(clauses=[], spec=spec))
        return out

    def search_space_size(self, metadata: Metadata) -> int:
        return len(metadata.measures)

    def estimated_cost(self, metadata: Metadata) -> float:
        # Pre-aggregated frames are tiny; this action is always cheap.
        return float(len(metadata.measures)) * max(metadata.n_rows, 1)

    def footprint(self, ldf: "LuxDataFrame", metadata: Metadata) -> Footprint:
        # Plots every numeric storage column against the labelled index.
        # Candidate enumeration materializes records, but applies_to caps
        # the frame at 1000 rows so per-pass entry building stays cheap.
        numeric = [
            c
            for c in ldf.columns
            if ldf.column(c).dtype.name in ("int64", "float64")
        ]
        return Footprint(
            numeric,
            intent=False,
            candidates=self.candidate_footprints(ldf, metadata),
        )
