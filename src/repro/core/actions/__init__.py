"""Recommendation actions (Table 1) and the action registry."""

from .base import Action, CandidateFootprint, Footprint
from .correlation import CorrelationAction
from .current import CurrentVisAction
from .enhance import EnhanceAction
from .filter_action import FilterAction
from .generalize import GeneralizeAction
from .history_based import PreAggregateAction, PreFilterAction
from .registry import (
    ActionRegistry,
    CustomAction,
    default_registry,
    register_action,
    remove_action,
)
from .structure import IndexAction
from .univariate import (
    DistributionAction,
    GeographicAction,
    OccurrenceAction,
    TemporalAction,
)

__all__ = [
    "Action",
    "ActionRegistry",
    "CandidateFootprint",
    "CorrelationAction",
    "Footprint",
    "CurrentVisAction",
    "CustomAction",
    "DistributionAction",
    "EnhanceAction",
    "FilterAction",
    "GeneralizeAction",
    "GeographicAction",
    "IndexAction",
    "OccurrenceAction",
    "PreAggregateAction",
    "PreFilterAction",
    "TemporalAction",
    "default_registry",
    "register_action",
    "remove_action",
]
