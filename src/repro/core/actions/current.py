"""Current Vis action: render the user's intent itself (§6, Fig. 2 left)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..compiler import CompiledVis
from ..metadata import Metadata
from .base import Action, Footprint, intent_columns

if TYPE_CHECKING:  # pragma: no cover
    from ..frame import LuxDataFrame

__all__ = ["CurrentVisAction"]


class CurrentVisAction(Action):
    name = "Current Vis"
    description = "The visualization(s) specified by the current intent."
    ranked = False

    def applies_to(self, ldf: "LuxDataFrame") -> bool:
        return bool([c for c in ldf.intent if c.is_axis])

    def candidates(self, ldf: "LuxDataFrame") -> list[CompiledVis]:
        return self._compile(ldf.intent, ldf.metadata)

    def search_space_size(self, metadata: Metadata) -> int:
        return 1

    def estimated_cost(self, metadata: Metadata) -> float:
        # Always scheduled first: it is what the user explicitly asked for.
        return 0.0

    def footprint(self, ldf: "LuxDataFrame", metadata: Metadata) -> Footprint:
        # Reads exactly the intent's columns (unknown under wildcards).
        columns = intent_columns(ldf)
        if columns is None:
            return Footprint(None, intent=True, candidates=None)
        return Footprint(
            columns,
            intent=True,
            candidates=self.candidate_footprints(ldf, metadata, intent=True),
        )
