"""Action registry (§7.2): default actions plus user-defined UDF actions.

Custom actions are plain Python functions wrapped into :class:`CustomAction`
via :func:`register_action`, triggered whenever their condition holds::

    def top_correlates(ldf): ...
    register_action("Influence", top_correlates,
                    condition=lambda ldf: "target" in ldf.columns)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..vislist import VisList
from .base import Action
from .correlation import CorrelationAction
from .current import CurrentVisAction
from .enhance import EnhanceAction
from .filter_action import FilterAction
from .generalize import GeneralizeAction
from .history_based import PreAggregateAction, PreFilterAction
from .structure import IndexAction
from .univariate import (
    DistributionAction,
    GeographicAction,
    OccurrenceAction,
    TemporalAction,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..frame import LuxDataFrame

__all__ = [
    "ActionRegistry",
    "CustomAction",
    "default_registry",
    "register_action",
    "remove_action",
]


class CustomAction(Action):
    """Adapter turning a user UDF into an Action."""

    #: A UDF's inputs are opaque — it may read any column and the intent —
    #: so the incremental engine must rerun it on every change.  Stated
    #: explicitly rather than inherited silently (tools/check `footprint`).
    footprint_unknown = True

    def __init__(
        self,
        name: str,
        generate_fn: Callable[["LuxDataFrame"], VisList],
        condition: Callable[["LuxDataFrame"], bool] | None = None,
        description: str = "",
    ) -> None:
        self.name = name
        self.description = description or (generate_fn.__doc__ or "").strip()
        self._generate_fn = generate_fn
        self._condition = condition

    def applies_to(self, ldf: "LuxDataFrame") -> bool:
        if self._condition is None:
            return True
        return bool(self._condition(ldf))

    def candidates(self, ldf: "LuxDataFrame"):  # pragma: no cover - unused
        return []

    def generate(self, ldf: "LuxDataFrame") -> VisList:
        result = self._generate_fn(ldf)
        if not isinstance(result, VisList):
            raise TypeError(
                f"custom action {self.name!r} must return a VisList, "
                f"got {type(result).__name__}"
            )
        return result


class ActionRegistry:
    """Ordered collection of actions; order is the display (and FIFO) order."""

    def __init__(self, actions: list[Action] | None = None) -> None:
        self._actions: dict[str, Action] = {}
        for action in actions or []:
            self.register(action)

    def register(self, action: Action) -> None:
        self._actions[action.name] = action

    def register_udf(
        self,
        name: str,
        generate_fn: Callable[["LuxDataFrame"], VisList],
        condition: Callable[["LuxDataFrame"], bool] | None = None,
        description: str = "",
    ) -> None:
        self.register(CustomAction(name, generate_fn, condition, description))

    def remove(self, name: str) -> None:
        self._actions.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._actions

    def __iter__(self):
        return iter(self._actions.values())

    def __len__(self) -> int:
        return len(self._actions)

    def names(self) -> list[str]:
        return list(self._actions.keys())

    def applicable(self, ldf: "LuxDataFrame") -> list[Action]:
        out = []
        for action in self._actions.values():
            try:
                if action.applies_to(ldf):
                    out.append(action)
            except Exception:
                # A broken trigger must not take down the display (§10.3).
                continue
        return out


def _build_default_registry() -> ActionRegistry:
    return ActionRegistry(
        [
            CurrentVisAction(),
            CorrelationAction(),
            DistributionAction(),
            OccurrenceAction(),
            TemporalAction(),
            GeographicAction(),
            EnhanceAction(),
            FilterAction(),
            GeneralizeAction(),
            IndexAction(),
            PreAggregateAction(),
            PreFilterAction(),
        ]
    )


#: The process-wide registry used by every LuxDataFrame.
default_registry = _build_default_registry()


def register_action(
    name: str,
    generate_fn: Callable[["LuxDataFrame"], VisList],
    condition: Callable[["LuxDataFrame"], bool] | None = None,
    description: str = "",
) -> None:
    """Register a custom action globally (the paper's UDF mechanism)."""
    default_registry.register_udf(name, generate_fn, condition, description)


def remove_action(name: str) -> None:
    """Remove an action (default or custom) from the global registry."""
    default_registry.remove(name)
