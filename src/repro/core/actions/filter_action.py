"""Filter action: add one filter to the current vis, or swap its value.

Candidates enumerate over data subsets (one per candidate filter value), so
this action needs the largest samples to rank accurately — the effect seen
in the paper's Fig. 12 (right), where Filter's recall curve trails the
other actions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..clause import Clause
from ..compiler import CompiledVis
from ..metadata import Metadata
from .base import Action, Footprint, intent_columns

if TYPE_CHECKING:  # pragma: no cover
    from ..frame import LuxDataFrame

__all__ = ["FilterAction"]

#: Cap on candidate values per attribute so wide-domain columns do not
#: explode the search space.
MAX_VALUES_PER_ATTRIBUTE = 10


class FilterAction(Action):
    name = "Filter"
    description = "Apply a different filter to the current visualization."

    def applies_to(self, ldf: "LuxDataFrame") -> bool:
        return bool([c for c in ldf.intent if c.is_axis])

    def candidates(self, ldf: "LuxDataFrame") -> list[CompiledVis]:
        metadata = ldf.metadata
        intent = ldf.intent
        axes = [c for c in intent if c.is_axis]
        existing = [c for c in intent if c.is_filter]
        existing_attrs = {str(c.attribute) for c in existing}
        out: list[CompiledVis] = []

        if existing:
            # Swap the value of each existing filter.
            for i, filt in enumerate(existing):
                attr = str(filt.attribute)
                if attr not in metadata:
                    continue
                for value in metadata[attr].unique_values[:MAX_VALUES_PER_ATTRIBUTE]:
                    if value == filt.value:
                        continue
                    swapped = [c.copy() for c in intent]
                    for c in swapped:
                        if c.is_filter and str(c.attribute) == attr:
                            c.value = value
                    out.extend(self._compile(swapped, metadata))
        # Add one new filter on an unfiltered categorical attribute.
        for attr in metadata.columns_of_type("nominal", "geographic"):
            if attr in existing_attrs:
                continue
            for value in metadata[attr].unique_values[:MAX_VALUES_PER_ATTRIBUTE]:
                new_intent = axes + existing + [
                    Clause(attribute=attr, filter_op="=", value=value)
                ]
                out.extend(self._compile(new_intent, metadata))
        return out

    def search_space_size(self, metadata: Metadata) -> int:
        total = 0
        for attr in metadata.columns_of_type("nominal", "geographic"):
            total += min(metadata[attr].cardinality, MAX_VALUES_PER_ATTRIBUTE)
        return total

    def footprint(self, ldf: "LuxDataFrame", metadata: Metadata) -> Footprint:
        # Candidate filters enumerate every categorical attribute's values;
        # the charts themselves plot the intent's columns.  Per-candidate
        # entries name each clause's filter attribute, so a change to one
        # categorical column reruns only the clauses filtering on it.
        intent = intent_columns(ldf)
        if intent is None:
            return Footprint(None, intent=True, candidates=None)
        categorical = metadata.columns_of_type("nominal", "geographic")
        return Footprint(
            set(categorical) | intent,
            intent=True,
            candidates=self.candidate_footprints(ldf, metadata, intent=True),
        )
