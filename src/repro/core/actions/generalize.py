"""Generalize action: remove one attribute or filter from the intent."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..compiler import CompiledVis
from ..metadata import Metadata
from .base import Action, Footprint, intent_columns

if TYPE_CHECKING:  # pragma: no cover
    from ..frame import LuxDataFrame

__all__ = ["GeneralizeAction"]


class GeneralizeAction(Action):
    name = "Generalize"
    description = "Remove one attribute or filter to broaden the analysis."
    ranked = False  # displayed in removal order, mirroring the intent

    def applies_to(self, ldf: "LuxDataFrame") -> bool:
        intent = ldf.intent
        axes = [c for c in intent if c.is_axis]
        filters = [c for c in intent if c.is_filter]
        return len(axes) + len(filters) >= 2 or (len(axes) >= 1 and len(filters) >= 1)

    def candidates(self, ldf: "LuxDataFrame") -> list[CompiledVis]:
        metadata = ldf.metadata
        intent = ldf.intent
        out: list[CompiledVis] = []
        seen: set[tuple] = set()
        for i in range(len(intent)):
            reduced = [c.copy() for j, c in enumerate(intent) if j != i]
            if not any(c.is_axis for c in reduced):
                continue
            for compiled in self._compile(reduced, metadata):
                sig = compiled.spec.signature()
                if sig not in seen:
                    seen.add(sig)
                    out.append(compiled)
        return out

    def search_space_size(self, metadata: Metadata) -> int:
        return 3

    def footprint(self, ldf: "LuxDataFrame", metadata: Metadata) -> Footprint:
        # Drops clauses from the intent: only the intent's columns appear.
        columns = intent_columns(ldf)
        if columns is None:
            return Footprint(None, intent=True, candidates=None)
        return Footprint(
            columns,
            intent=True,
            candidates=self.candidate_footprints(ldf, metadata, intent=True),
        )
