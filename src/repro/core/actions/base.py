"""Action base class: a named, triggerable recommendation generator (§7.2).

An action (a) declares when it applies via :meth:`applies_to`, (b) produces
candidate visualizations, and (c) ranks them into a VisList.  Built-in
actions enumerate candidates through the intent compiler and rank through
the shared pruning-aware ranker; custom user actions may override
:meth:`generate` entirely with a Python UDF.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Sequence

from ...vis.spec import candidate_key
from ..compiler import CompiledVis, compile_intent
from ..clause import WILDCARD, Clause
from ..config import config
from ..metadata import Metadata
from ..optimizer.sampling import CandidatePrior, rank_candidates
from ..vislist import VisList

if TYPE_CHECKING:  # pragma: no cover
    from ..frame import LuxDataFrame

__all__ = ["Action", "CandidateFootprint", "Footprint", "intent_columns"]


class CandidateFootprint:
    """The input set of one candidate vis within an action's search space.

    ``vis_key`` is the stable identity from :func:`candidate_key`;
    ``columns`` are the columns that executing and scoring this one
    candidate reads (its axis fields plus its filter attributes);
    ``intent`` marks candidates whose membership in the search space
    depends on the frame's intent clauses.
    """

    __slots__ = ("vis_key", "columns", "intent")

    def __init__(
        self,
        vis_key: str,
        columns: "Iterable[str] | None",
        intent: bool = False,
    ) -> None:
        self.vis_key = vis_key
        self.columns: "frozenset[str] | None" = (
            None if columns is None else frozenset(str(c) for c in columns)
        )
        self.intent = bool(intent)

    def __repr__(self) -> str:
        cols = "?" if self.columns is None else sorted(self.columns)
        return (
            f"<CandidateFootprint {self.vis_key} columns={cols} "
            f"intent={self.intent}>"
        )


class Footprint:
    """An action's declared input set: which columns (and whether intent)
    its candidate generation and ranking read.

    ``columns=None`` means *unknown* — the incremental precompute engine
    treats the action as affected by every data change (the safe default
    for user UDF actions).  ``intent=True`` marks a dependence on the
    frame's intent clauses, so intent-only deltas rerun exactly the
    intent-reading actions.

    ``candidates`` optionally refines the declaration to per-vis
    granularity: a list of :class:`CandidateFootprint` entries, one per
    candidate in the action's search space, letting the engine rerun only
    the candidates a delta touches and carry the rest at vis granularity.
    ``candidates=None`` (the default) means the action cannot scope reruns
    below whole-action granularity.
    """

    __slots__ = ("columns", "intent", "_candidates")

    def __init__(
        self,
        columns: "Iterable[str] | None" = None,
        intent: bool = True,
        candidates: "Sequence[CandidateFootprint] | None" = None,
    ) -> None:
        self.columns: "frozenset[str] | None" = (
            None if columns is None else frozenset(str(c) for c in columns)
        )
        self.intent = bool(intent)
        self._candidates = None if candidates is None else tuple(candidates)

    def candidates(self) -> "tuple[CandidateFootprint, ...] | None":
        """Per-vis ``(vis_key, columns, intent)`` entries, or None when the
        action declares at whole-action granularity only."""
        return self._candidates

    def union(self, other: "Footprint") -> "Footprint":
        """The combined action-level input set (used across two passes'
        declarations).  Candidate entries are *not* unioned here — the
        engine merges them per ``vis_key`` (see ``PrecomputeEngine``),
        since entry sets from different passes describe different search
        spaces."""
        if self.columns is None or other.columns is None:
            columns = None
        else:
            columns = self.columns | other.columns
        return Footprint(columns, self.intent or other.intent)

    def __repr__(self) -> str:
        cols = "?" if self.columns is None else sorted(self.columns)
        n = "-" if self._candidates is None else len(self._candidates)
        return f"<Footprint columns={cols} intent={self.intent} candidates={n}>"


def intent_columns(ldf: "LuxDataFrame") -> "frozenset[str] | None":
    """Column names the current intent references; None on wildcards.

    A wildcard clause can bind to any column, so an intent containing one
    makes the footprint unknowable without enumerating the search space —
    callers degrade to "affected by everything".
    """
    columns: set[str] = set()
    for clause in ldf.intent:
        attr = clause.attribute
        attrs = list(attr) if isinstance(attr, (list, tuple)) else [attr]
        for name in attrs:
            if not name:
                continue
            if str(name) == WILDCARD:
                return None
            columns.add(str(name))
    return frozenset(columns)


class Action(ABC):
    """One tab of the recommendation dashboard."""

    #: Unique name displayed as the tab title.
    name: str = "Action"
    #: One-line description shown in the widget.
    description: str = ""
    #: Whether candidates are scored and ranked (vs natural order).
    ranked: bool = True

    # ------------------------------------------------------------------
    @abstractmethod
    def applies_to(self, ldf: "LuxDataFrame") -> bool:
        """Trigger condition: is this action relevant for ``ldf``?"""

    @abstractmethod
    def candidates(self, ldf: "LuxDataFrame") -> list[CompiledVis]:
        """Enumerate the search space of candidate visualizations."""

    def footprint(self, ldf: "LuxDataFrame", metadata: Metadata) -> Footprint:
        """The input set this action's generation reads, under ``metadata``.

        The incremental precompute engine partitions a dirty version into
        affected vs unaffected actions by intersecting footprints with the
        mutation delta; an action whose footprint (declared now, unioned
        with the one recorded at the previous pass) misses every changed
        column is carried forward instead of rerun.  The default is the
        conservative *unknown* footprint — always rerun — which is what
        user UDF actions get unless they override this.

        Concrete actions attach :meth:`candidate_footprints` so the engine
        can go one level finer and rerun individual candidates.
        """
        return Footprint(None, True)

    def candidate_footprints(
        self, ldf: "LuxDataFrame", metadata: Metadata, intent: bool = False
    ) -> "list[CandidateFootprint] | None":
        """Per-candidate entries built by enumerating the search space.

        Enumeration + compilation is pure Python over metadata — no data
        scans — so declaring at candidate granularity costs a fraction of
        one candidate's execution.  Each entry's columns are the
        candidate's true read set: its axis fields plus its filter
        attributes.  Returns None (degrade to whole-action granularity)
        when enumeration fails; duplicate keys are the engine's cue to
        degrade as well (it checks).
        """
        try:
            cands = self.candidates(ldf)
        except Exception:
            return None
        entries: list[CandidateFootprint] = []
        for cand in cands:
            spec = cand.spec
            columns = set(spec.fields())
            columns.update(attr for attr, _, _ in spec.filters)
            entries.append(
                CandidateFootprint(candidate_key(spec), columns, intent)
            )
        return entries

    # ------------------------------------------------------------------
    def generate(self, ldf: "LuxDataFrame") -> VisList:
        """Produce the ranked, processed VisList for display."""
        cands = self.candidates(ldf)
        if not cands:
            return VisList(visualizations=[], source=ldf)
        if self.ranked:
            return rank_candidates(cands, ldf, k=config.top_k)
        from ..executor.base import get_executor
        from ..vis import Vis

        executor = get_executor()
        chosen = cands[: config.top_k]
        pending = [c.spec for c in chosen if c.spec.data is None]
        if pending:
            # Batch the display pass so the candidates share scans.
            executor.execute_many(pending, ldf)
        out = [Vis.from_compiled(c, source=ldf, process=False) for c in chosen]
        return VisList(visualizations=out, source=ldf)

    def generate_cached(
        self,
        ldf: "LuxDataFrame",
        prior: "dict[str, CandidatePrior]",
        records: "dict[str, dict] | None" = None,
    ) -> VisList:
        """:meth:`generate` with candidate-level carry.

        ``prior`` maps ``candidate_key`` to :class:`CandidatePrior` state
        for candidates the caller (the precompute engine) has proven
        untouched by the mutation delta.  Those candidates reuse their
        previous scores and, when displayed, their previous processed Vis;
        everything else is recomputed.  The output is bit-identical to
        :meth:`generate` — carried values are exactly what a cold pass
        would recompute.  ``records`` collects per-candidate state for the
        next pass's prior.
        """
        cands = self.candidates(ldf)
        if not cands:
            return VisList(visualizations=[], source=ldf)
        if self.ranked:
            return rank_candidates(
                cands, ldf, k=config.top_k, prior=prior, records=records
            )
        from ..executor.base import get_executor
        from ..vis import Vis

        executor = get_executor()
        chosen = cands[: config.top_k]
        keys = [candidate_key(c.spec) for c in chosen]
        carried: dict[int, "Vis"] = {}
        pending = []
        for key, cand in zip(keys, chosen):
            p = prior.get(key)
            vis = p.display_vis() if p is not None else None
            if vis is not None:
                carried[id(cand)] = vis  # check: ignore[unstable-key]
            elif cand.spec.data is None:
                pending.append(cand.spec)
        if pending:
            executor.execute_many(pending, ldf)
        out = []
        for key, cand in zip(keys, chosen):
            vis = carried.get(id(cand))  # check: ignore[unstable-key]
            if vis is None:
                vis = Vis.from_compiled(cand, source=ldf, process=False)
            out.append(vis)
            if records is not None:
                records[key] = {"approx": None, "score": None, "displayed": True}
        return VisList(visualizations=out, source=ldf)

    def estimated_cost(self, metadata: Metadata) -> float:
        """Cost estimate used by the async scheduler (search-space sized)."""
        return float(self.search_space_size(metadata)) * max(metadata.n_rows, 1)

    def search_space_size(self, metadata: Metadata) -> int:
        """Rough candidate count; cheap to compute without enumeration."""
        return 1

    # ------------------------------------------------------------------
    def _compile(
        self, clauses: Sequence[Clause], metadata: Metadata
    ) -> list[CompiledVis]:
        """Helper: run the intent compiler for candidate construction."""
        return compile_intent(list(clauses), metadata)

    def __repr__(self) -> str:
        return f"<Action {self.name}>"
