"""Action base class: a named, triggerable recommendation generator (§7.2).

An action (a) declares when it applies via :meth:`applies_to`, (b) produces
candidate visualizations, and (c) ranks them into a VisList.  Built-in
actions enumerate candidates through the intent compiler and rank through
the shared pruning-aware ranker; custom user actions may override
:meth:`generate` entirely with a Python UDF.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

from ..compiler import CompiledVis, compile_intent
from ..clause import Clause
from ..config import config
from ..metadata import Metadata
from ..optimizer.sampling import rank_candidates
from ..vislist import VisList

if TYPE_CHECKING:  # pragma: no cover
    from ..frame import LuxDataFrame

__all__ = ["Action"]


class Action(ABC):
    """One tab of the recommendation dashboard."""

    #: Unique name displayed as the tab title.
    name: str = "Action"
    #: One-line description shown in the widget.
    description: str = ""
    #: Whether candidates are scored and ranked (vs natural order).
    ranked: bool = True

    # ------------------------------------------------------------------
    @abstractmethod
    def applies_to(self, ldf: "LuxDataFrame") -> bool:
        """Trigger condition: is this action relevant for ``ldf``?"""

    @abstractmethod
    def candidates(self, ldf: "LuxDataFrame") -> list[CompiledVis]:
        """Enumerate the search space of candidate visualizations."""

    # ------------------------------------------------------------------
    def generate(self, ldf: "LuxDataFrame") -> VisList:
        """Produce the ranked, processed VisList for display."""
        cands = self.candidates(ldf)
        if not cands:
            return VisList(visualizations=[], source=ldf)
        if self.ranked:
            return rank_candidates(cands, ldf, k=config.top_k)
        from ..executor.base import get_executor
        from ..vis import Vis

        executor = get_executor()
        chosen = cands[: config.top_k]
        pending = [c.spec for c in chosen if c.spec.data is None]
        if pending:
            # Batch the display pass so the candidates share scans.
            executor.execute_many(pending, ldf)
        out = [Vis.from_compiled(c, source=ldf, process=False) for c in chosen]
        return VisList(visualizations=out, source=ldf)

    def estimated_cost(self, metadata: Metadata) -> float:
        """Cost estimate used by the async scheduler (search-space sized)."""
        return float(self.search_space_size(metadata)) * max(metadata.n_rows, 1)

    def search_space_size(self, metadata: Metadata) -> int:
        """Rough candidate count; cheap to compute without enumeration."""
        return 1

    # ------------------------------------------------------------------
    def _compile(
        self, clauses: Sequence[Clause], metadata: Metadata
    ) -> list[CompiledVis]:
        """Helper: run the intent compiler for candidate construction."""
        return compile_intent(list(clauses), metadata)

    def __repr__(self) -> str:
        return f"<Action {self.name}>"
