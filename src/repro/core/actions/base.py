"""Action base class: a named, triggerable recommendation generator (§7.2).

An action (a) declares when it applies via :meth:`applies_to`, (b) produces
candidate visualizations, and (c) ranks them into a VisList.  Built-in
actions enumerate candidates through the intent compiler and rank through
the shared pruning-aware ranker; custom user actions may override
:meth:`generate` entirely with a Python UDF.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Sequence

from ..compiler import CompiledVis, compile_intent
from ..clause import WILDCARD, Clause
from ..config import config
from ..metadata import Metadata
from ..optimizer.sampling import rank_candidates
from ..vislist import VisList

if TYPE_CHECKING:  # pragma: no cover
    from ..frame import LuxDataFrame

__all__ = ["Action", "Footprint", "intent_columns"]


class Footprint:
    """An action's declared input set: which columns (and whether intent)
    its candidate generation and ranking read.

    ``columns=None`` means *unknown* — the incremental precompute engine
    treats the action as affected by every data change (the safe default
    for user UDF actions).  ``intent=True`` marks a dependence on the
    frame's intent clauses, so intent-only deltas rerun exactly the
    intent-reading actions.
    """

    __slots__ = ("columns", "intent")

    def __init__(
        self, columns: "Iterable[str] | None" = None, intent: bool = True
    ) -> None:
        self.columns: "frozenset[str] | None" = (
            None if columns is None else frozenset(str(c) for c in columns)
        )
        self.intent = bool(intent)

    def union(self, other: "Footprint") -> "Footprint":
        """The combined input set (used across two passes' declarations)."""
        if self.columns is None or other.columns is None:
            columns = None
        else:
            columns = self.columns | other.columns
        return Footprint(columns, self.intent or other.intent)

    def __repr__(self) -> str:
        cols = "?" if self.columns is None else sorted(self.columns)
        return f"<Footprint columns={cols} intent={self.intent}>"


def intent_columns(ldf: "LuxDataFrame") -> "frozenset[str] | None":
    """Column names the current intent references; None on wildcards.

    A wildcard clause can bind to any column, so an intent containing one
    makes the footprint unknowable without enumerating the search space —
    callers degrade to "affected by everything".
    """
    columns: set[str] = set()
    for clause in ldf.intent:
        attr = clause.attribute
        attrs = list(attr) if isinstance(attr, (list, tuple)) else [attr]
        for name in attrs:
            if not name:
                continue
            if str(name) == WILDCARD:
                return None
            columns.add(str(name))
    return frozenset(columns)


class Action(ABC):
    """One tab of the recommendation dashboard."""

    #: Unique name displayed as the tab title.
    name: str = "Action"
    #: One-line description shown in the widget.
    description: str = ""
    #: Whether candidates are scored and ranked (vs natural order).
    ranked: bool = True

    # ------------------------------------------------------------------
    @abstractmethod
    def applies_to(self, ldf: "LuxDataFrame") -> bool:
        """Trigger condition: is this action relevant for ``ldf``?"""

    @abstractmethod
    def candidates(self, ldf: "LuxDataFrame") -> list[CompiledVis]:
        """Enumerate the search space of candidate visualizations."""

    def footprint(self, ldf: "LuxDataFrame", metadata: Metadata) -> Footprint:
        """The input set this action's generation reads, under ``metadata``.

        The incremental precompute engine partitions a dirty version into
        affected vs unaffected actions by intersecting footprints with the
        mutation delta; an action whose footprint (declared now, unioned
        with the one recorded at the previous pass) misses every changed
        column is carried forward instead of rerun.  The default is the
        conservative *unknown* footprint — always rerun — which is what
        user UDF actions get unless they override this.
        """
        return Footprint(None, True)

    # ------------------------------------------------------------------
    def generate(self, ldf: "LuxDataFrame") -> VisList:
        """Produce the ranked, processed VisList for display."""
        cands = self.candidates(ldf)
        if not cands:
            return VisList(visualizations=[], source=ldf)
        if self.ranked:
            return rank_candidates(cands, ldf, k=config.top_k)
        from ..executor.base import get_executor
        from ..vis import Vis

        executor = get_executor()
        chosen = cands[: config.top_k]
        pending = [c.spec for c in chosen if c.spec.data is None]
        if pending:
            # Batch the display pass so the candidates share scans.
            executor.execute_many(pending, ldf)
        out = [Vis.from_compiled(c, source=ldf, process=False) for c in chosen]
        return VisList(visualizations=out, source=ldf)

    def estimated_cost(self, metadata: Metadata) -> float:
        """Cost estimate used by the async scheduler (search-space sized)."""
        return float(self.search_space_size(metadata)) * max(metadata.n_rows, 1)

    def search_space_size(self, metadata: Metadata) -> int:
        """Rough candidate count; cheap to compute without enumeration."""
        return 1

    # ------------------------------------------------------------------
    def _compile(
        self, clauses: Sequence[Clause], metadata: Metadata
    ) -> list[CompiledVis]:
        """Helper: run the intent compiler for candidate construction."""
        return compile_intent(list(clauses), metadata)

    def __repr__(self) -> str:
        return f"<Action {self.name}>"
