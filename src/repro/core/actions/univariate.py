"""Metadata-based univariate actions (Table 1, top block).

- Distribution: histograms of quantitative attributes, ranked by skewness.
- Occurrence: bar charts of nominal attributes, ranked by unevenness.
- Temporal: line charts of temporal attributes.
- Geographic: choropleth maps of geographic attributes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..clause import Clause
from ..compiler import CompiledVis
from ..metadata import Metadata
from .base import Action, Footprint

if TYPE_CHECKING:  # pragma: no cover
    from ..frame import LuxDataFrame

__all__ = [
    "DistributionAction",
    "GeographicAction",
    "OccurrenceAction",
    "TemporalAction",
]


class _UnivariateAction(Action):
    """Shared machinery: one candidate per column of the target type."""

    data_type = ""

    def _columns(self, metadata: Metadata) -> list[str]:
        return metadata.columns_of_type(self.data_type)

    def applies_to(self, ldf: "LuxDataFrame") -> bool:
        return bool(self._columns(ldf.metadata)) and not ldf.empty

    def candidates(self, ldf: "LuxDataFrame") -> list[CompiledVis]:
        metadata = ldf.metadata
        out: list[CompiledVis] = []
        for name in self._columns(metadata):
            out.extend(self._compile([Clause(attribute=name)], metadata))
        return out

    def search_space_size(self, metadata: Metadata) -> int:
        return len(self._columns(metadata))

    def footprint(self, ldf: "LuxDataFrame", metadata: Metadata) -> Footprint:
        # One chart per column of the target type; intent never enters.
        return Footprint(
            self._columns(metadata),
            intent=False,
            candidates=self.candidate_footprints(ldf, metadata),
        )


class DistributionAction(_UnivariateAction):
    name = "Distribution"
    description = "Show histograms of quantitative attributes."
    data_type = "quantitative"


class OccurrenceAction(_UnivariateAction):
    name = "Occurrence"
    description = "Show bar-chart frequencies of categorical attributes."
    data_type = "nominal"


class TemporalAction(_UnivariateAction):
    name = "Temporal"
    description = "Show counts of records over temporal attributes."
    data_type = "temporal"
    ranked = False  # chronological charts display in natural column order


class GeographicAction(_UnivariateAction):
    name = "Geographic"
    description = "Show choropleth maps of geographic attributes."
    data_type = "geographic"
    ranked = False
