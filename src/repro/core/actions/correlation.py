"""Correlation action: bivariate overviews of quantitative pairs (Table 1).

The search space is the set of unordered quantitative attribute pairs —
the paper's Q6: ``VisList([Clause("?", data_type="quantitative")] * 2)`` —
ranked by |Pearson's r|.  For wide frames this is the canonical "laggard"
action that prune and async target.
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING

from ..clause import Clause
from ..compiler import CompiledVis
from ..metadata import Metadata
from .base import Action, Footprint

if TYPE_CHECKING:  # pragma: no cover
    from ..frame import LuxDataFrame

__all__ = ["CorrelationAction"]


class CorrelationAction(Action):
    name = "Correlation"
    description = (
        "Show scatterplots between quantitative attributes, "
        "ranked by Pearson correlation."
    )

    def applies_to(self, ldf: "LuxDataFrame") -> bool:
        return len(ldf.metadata.measures) >= 2 and not ldf.empty

    def candidates(self, ldf: "LuxDataFrame") -> list[CompiledVis]:
        metadata = ldf.metadata
        out: list[CompiledVis] = []
        for a, b in combinations(metadata.measures, 2):
            out.extend(
                self._compile(
                    [Clause(attribute=a), Clause(attribute=b)], metadata
                )
            )
        return out

    def search_space_size(self, metadata: Metadata) -> int:
        m = len(metadata.measures)
        return m * (m - 1) // 2

    def footprint(self, ldf: "LuxDataFrame", metadata: Metadata) -> Footprint:
        # Pairs of quantitative attributes: intent never enters the space.
        # Candidate entries let a single-measure mutation re-score only
        # the pairs touching that measure.
        return Footprint(
            metadata.measures,
            intent=False,
            candidates=self.candidate_footprints(ldf, metadata),
        )
