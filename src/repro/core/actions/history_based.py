"""History-based recommendations (§6): the operation trace as implicit intent.

- Pre-aggregate: frames recently produced by an aggregation (multi-key
  groupby, melt) are visualized by their grouping keys.
- Pre-filter: when filtering leaves too few rows to recommend on (e.g.
  ``head()``), Lux visualizes the *previous, unfiltered* parent dataframe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..clause import Clause
from ..compiler import CompiledVis
from ..config import config
from ..metadata import Metadata
from ..vislist import VisList
from .base import Action, Footprint

if TYPE_CHECKING:  # pragma: no cover
    from ..frame import LuxDataFrame

__all__ = ["PreAggregateAction", "PreFilterAction"]

#: Frames at or below this many rows are "too small to recommend on".
SMALL_FRAME_ROWS = 5


class PreAggregateAction(Action):
    """Visualize already-aggregated frames by their grouping keys."""

    name = "Pre-aggregate"
    description = "Visualize the aggregate values produced by a recent groupby."
    ranked = False

    def applies_to(self, ldf: "LuxDataFrame") -> bool:
        if ldf.empty or not ldf.history.was_aggregated:
            return False
        if not ldf.index.is_default:
            return False  # labelled-index frames are covered by Index
        metadata = ldf.metadata
        return bool(metadata.dimensions) and bool(metadata.measures) and len(ldf) <= 1000

    def candidates(self, ldf: "LuxDataFrame") -> list[CompiledVis]:
        metadata = ldf.metadata
        key = metadata.dimensions[0]
        out: list[CompiledVis] = []
        for measure in metadata.measures[: config.top_k]:
            out.extend(
                self._compile(
                    [Clause(attribute=key), Clause(attribute=measure)], metadata
                )
            )
        return out

    def search_space_size(self, metadata: Metadata) -> int:
        return len(metadata.measures)

    def footprint(self, ldf: "LuxDataFrame", metadata: Metadata) -> Footprint:
        # First dimension (the grouping key) against every measure.
        columns = set(metadata.measures)
        if metadata.dimensions:
            columns.add(metadata.dimensions[0])
        return Footprint(
            columns,
            intent=False,
            candidates=self.candidate_footprints(ldf, metadata),
        )


class PreFilterAction(Action):
    """Visualize the unfiltered parent when the current frame is tiny."""

    name = "Pre-filter"
    description = (
        "The dataframe was filtered down to very few rows; showing an "
        "overview of the pre-filter dataframe instead."
    )
    ranked = True

    def applies_to(self, ldf: "LuxDataFrame") -> bool:
        if len(ldf) > SMALL_FRAME_ROWS or not ldf.history.was_filtered:
            return False
        parent = ldf.parent_frame
        return parent is not None and len(parent) > len(ldf)

    def candidates(self, ldf: "LuxDataFrame") -> list[CompiledVis]:
        parent = ldf.parent_frame
        if parent is None:
            return []
        metadata = parent.metadata
        out: list[CompiledVis] = []
        for name in metadata.measures + metadata.columns_of_type("nominal"):
            out.extend(self._compile([Clause(attribute=name)], metadata))
        return out

    def generate(self, ldf: "LuxDataFrame") -> VisList:
        # Candidates are built and ranked against the *parent* frame.
        from ..optimizer.sampling import rank_candidates

        parent = ldf.parent_frame
        if parent is None:
            return VisList(visualizations=[], source=ldf)
        cands = self.candidates(ldf)
        if not cands:
            return VisList(visualizations=[], source=parent)
        return rank_candidates(cands, parent, k=config.top_k)

    def search_space_size(self, metadata: Metadata) -> int:
        return len(metadata.attributes)

    def footprint(self, ldf: "LuxDataFrame", metadata: Metadata) -> Footprint:
        # Computed against the *parent* frame, whose mutations this
        # frame's delta stream cannot see: stay conservative, at whole-
        # action granularity (candidates=None — carrying individual vis
        # against an unobserved parent would serve stale charts).
        return Footprint(None, intent=False, candidates=None)
