"""Exceptions and warnings for the Lux core."""

from __future__ import annotations

__all__ = [
    "LuxError",
    "IntentError",
    "LuxWarning",
    "ExecutorError",
    "PassCancelled",
]


class LuxError(Exception):
    """Base class for all Lux-core errors."""


class IntentError(LuxError):
    """The user's intent does not validate against the dataframe.

    Carries optional suggestions (e.g. close attribute-name matches), which
    the validator surfaces as early warnings per §7.1.1.
    """

    def __init__(self, message: str, suggestions: list[str] | None = None) -> None:
        if suggestions:
            message = f"{message} Did you mean: {', '.join(suggestions)}?"
        super().__init__(message)
        self.suggestions = suggestions or []


class ExecutorError(LuxError):
    """A visualization could not be processed by the execution engine."""


class PassCancelled(LuxError):
    """A recommendation pass was cancelled before completing.

    Raised cooperatively between actions when a caller-supplied cancel
    event fires — the service's precompute engine uses it to abandon a
    pass whose underlying data version has already moved on.
    """


class LuxWarning(UserWarning):
    """Non-fatal issues: fallback to the plain table view, dirty data, etc."""
