"""Dataframe operation history (§6, "History-based recommendations").

Lux instruments every dataframe function and stores the trace *on the
dataframe itself* (not via program analysis, which the paper notes is
error-prone).  Histories propagate to derived frames so context is not lost
through intermediate objects.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["Event", "History"]

_clock = itertools.count()
_clock_lock = threading.Lock()


def _advance_clock(floor: int) -> None:
    """Ensure future :meth:`Event.new` timestamps are ``>= floor``."""
    with _clock_lock:
        global _clock
        current = next(_clock)
        _clock = itertools.count(max(current + 1, floor))

#: Ops that mark the frame as derived-by-filtering.
FILTER_OPS = {"filter", "head", "tail", "take", "slice", "dropna"}

#: Ops that mark the frame as derived-by-aggregation.
AGG_OPS = {"groupby_agg", "pivot", "describe", "corr", "melt"}

#: Ops that change content and therefore expire metadata/recommendations.
MUTATING_OPS = {
    "setitem",
    "delitem",
    "rename",
    "drop",
    "dropna",
    "fillna",
    "sort",
}


@dataclass(frozen=True)
class Event:
    """One recorded dataframe operation."""

    op: str
    #: Global logical timestamp; later events have larger values.
    time: int

    @staticmethod
    def new(op: str) -> "Event":
        return Event(op=op, time=next(_clock))


class History:
    """An append-only, propagating event log with derivation flags."""

    MAX_EVENTS = 200

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self._events: list[Event] = list(events)

    def append(self, op: str) -> None:
        self._events.append(Event.new(op))
        if len(self._events) > self.MAX_EVENTS:
            # Keep the newest events; old history has no recommendation value.
            del self._events[: len(self._events) - self.MAX_EVENTS]

    def extend_from(self, parent: "History") -> None:
        """Propagate a parent frame's history into this derived frame."""
        merged = sorted(
            {e.time: e for e in [*parent._events, *self._events]}.values(),
            key=lambda e: e.time,
        )
        self._events = list(merged)[-self.MAX_EVENTS :]

    def copy(self) -> "History":
        return History(self._events)

    # ------------------------------------------------------------------
    # Persistence (service snapshots)
    # ------------------------------------------------------------------
    def to_payload(self) -> list[list]:
        """JSON-safe event list (``[[op, time], ...]``) for snapshots."""
        return [[e.op, e.time] for e in self._events]

    @classmethod
    def from_payload(cls, payload: Iterable) -> "History":
        """Rebuild a history from :meth:`to_payload` output.

        The module clock is advanced past the largest restored timestamp
        so events appended after the restore still sort strictly later —
        ``extend_from`` orders by ``time``, and a freshly-counted event
        colliding with a restored one would scramble derived-frame
        histories.
        """
        events = [Event(op=str(op), time=int(t)) for op, t in payload]
        if events:
            _advance_clock(max(e.time for e in events) + 1)
        return cls(events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        ops = [e.op for e in self._events[-8:]]
        return f"History({' -> '.join(ops)})"

    # ------------------------------------------------------------------
    # Signals consumed by history-based actions
    # ------------------------------------------------------------------
    def ops(self) -> list[str]:
        return [e.op for e in self._events]

    def recently(self, op_set: set[str], window: int = 5) -> bool:
        """True when any op in ``op_set`` occurred in the last ``window`` events."""
        return any(e.op in op_set for e in self._events[-window:])

    @property
    def was_filtered(self) -> bool:
        return self.recently(FILTER_OPS)

    @property
    def was_aggregated(self) -> bool:
        return self.recently(AGG_OPS)

    @property
    def was_column_modified(self) -> bool:
        return self.recently({"setitem", "rename"})
