"""The process-wide worker pool shared by every parallel subsystem.

One resizable :class:`~concurrent.futures.ThreadPoolExecutor` serves both
consumers of background parallelism:

- the action scheduler streams laggard actions through it
  (``optimizer/scheduler.py``), and
- the batch executor fans ``execute_many`` out across filter groups
  (``executor/df_exec.py``).

Unifying them matters: two independent pools would multiply steady-state
thread count and let one subsystem oversubscribe the host while the other
idles.  The pool is sized by ``config.action_pool_workers`` and resized
lazily on the next submission after the knob changes.

Resize semantics
----------------
A resize retires the old pool without waiting, so already-running tasks
drain concurrently with the new pool (transient over-parallelism bounded
by the old pool's *running* tasks).  Queued-but-unstarted tasks are
cancelled and re-submitted to the new pool, so no caller is ever stranded
waiting on work that silently died with a retired pool.  Callers hold a
stable outer :class:`Future` whose identity survives the hand-off.

Deadlock rule
-------------
Code running *on* a pool thread must never block on pool futures: a
saturated pool would then wait on itself.  :func:`in_worker` lets nested
fan-out points (``execute_many`` called from a streamed action) detect
this and degrade to inline execution instead.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

from .config import config

__all__ = ["submit", "worker_count", "in_worker", "shutdown"]

#: Thread-name prefix identifying pool threads (see :func:`in_worker`).
_THREAD_PREFIX = "lux-worker"

_POOL: ThreadPoolExecutor | None = None
_POOL_SIZE: int = 0
_LOCK = threading.Lock()

#: Inner future -> wrapped task, for every task not yet started.  A resize
#: snapshots this map to re-submit whatever the retired pool cancelled.
_PENDING: dict[Future, Callable[[], None]] = {}


def worker_count() -> int:
    """The pool size the next submission will enforce."""
    return max(int(config.action_pool_workers), 1)


def in_worker() -> bool:
    """True when the calling thread belongs to the shared pool.

    Fan-out helpers use this to run inline rather than submit-and-wait
    from inside the pool, which could deadlock a saturated pool.
    """
    return threading.current_thread().name.startswith(_THREAD_PREFIX)


def submit(fn: Callable[[], Any]) -> "Future[Any]":
    """Run ``fn`` on the shared pool; returns a resize-stable future.

    The returned future is completed by whichever pool generation ends up
    running ``fn``; cancellation of the *inner* task during a resize is
    invisible to the caller.
    """
    outer: "Future[Any]" = Future()

    def run() -> None:
        if not outer.set_running_or_notify_cancel():  # pragma: no cover
            return
        try:
            outer.set_result(fn())
        except BaseException as exc:
            outer.set_exception(exc)

    with _LOCK:
        _submit_locked(run)
    return outer


def _submit_locked(run: Callable[[], None]) -> None:
    """Enqueue ``run`` on the current pool, resizing first if needed."""
    global _POOL, _POOL_SIZE
    workers = worker_count()
    if _POOL is not None and _POOL_SIZE != workers:
        _retire_locked()
    if _POOL is None:
        _POOL = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=_THREAD_PREFIX
        )
        _POOL_SIZE = workers
    inner = _POOL.submit(run)
    _PENDING[inner] = run
    inner.add_done_callback(lambda f: _PENDING.pop(f, None))


def _retire_locked() -> None:
    """Retire the current pool, handing unstarted tasks to the successor.

    ``cancel_futures`` stops the retired pool's queue cold — its workers
    exit as soon as their running task finishes — and the cancelled tasks
    are re-queued on the replacement pool by the caller.
    """
    global _POOL, _POOL_SIZE
    assert _POOL is not None
    snapshot = list(_PENDING.items())
    _POOL.shutdown(wait=False, cancel_futures=True)
    _POOL = None
    _POOL_SIZE = 0
    orphans = [run for inner, run in snapshot if inner.cancelled()]
    if orphans:
        _POOL = ThreadPoolExecutor(
            max_workers=worker_count(), thread_name_prefix=_THREAD_PREFIX
        )
        _POOL_SIZE = worker_count()
        for run in orphans:
            inner = _POOL.submit(run)
            _PENDING[inner] = run
            inner.add_done_callback(lambda f: _PENDING.pop(f, None))


def shutdown(wait: bool = True) -> None:
    """Tear the pool down (tests / interpreter exit); next submit recreates."""
    global _POOL, _POOL_SIZE
    with _LOCK:
        pool, _POOL, _POOL_SIZE = _POOL, None, 0
    if pool is not None:
        pool.shutdown(wait=wait)
