"""The process-wide worker pool shared by every parallel subsystem.

One resizable :class:`~concurrent.futures.ThreadPoolExecutor` serves every
consumer of background parallelism:

- the action scheduler streams laggard actions through it
  (``optimizer/scheduler.py``),
- the batch executor fans ``execute_many`` out across filter groups
  (``executor/df_exec.py``), and
- the service's precompute engine schedules whole recommendation passes
  (``service/precompute.py``).

Unifying them matters: independent pools would multiply steady-state
thread count and let one subsystem oversubscribe the host while the others
idle.  The pool is sized by ``config.action_pool_workers`` and resized
lazily on the next submission after the knob changes.

Fair-share admission
--------------------
Work is not handed to the executor's FIFO directly.  Each submission lands
in a two-band fair queue and workers run *dispatchers* that drain it:

- **Bands**: interactive (default) before background.  Background items —
  the service's always-on precompute passes — only run while no
  interactive work is queued, so a print or an API read is never stuck
  behind another session's speculative pass.
- **Tags**: within a band, queues are keyed by tag (the service uses the
  session id) and drained round-robin across tags, so one session
  enqueueing a hundred items cannot starve a session that enqueued one.

Nested submissions inherit the running item's tag and band through a
thread-local context, so a pass's internal fan-out stays attributed to its
session.  Submissions also capture the caller's config overlay
(:func:`repro.core.config.current_overlay`) and re-apply it on the worker,
so per-session config isolation survives fan-out.

Resize semantics
----------------
A resize retires the old pool without waiting, so already-running tasks
drain concurrently with the new pool (transient over-parallelism bounded
by the old pool's *running* tasks).  Queued-but-unstarted dispatchers are
cancelled and re-submitted to the new pool — dispatchers are
interchangeable (each drains exactly one queue item), so no caller is ever
stranded waiting on work that silently died with a retired pool.  Callers
hold a stable outer :class:`Future` whose identity survives the hand-off.

Deadlock rule
-------------
Code running *on* a pool thread must never block on pool futures: a
saturated pool would then wait on itself.  :func:`in_worker` lets nested
fan-out points (``execute_many`` called from a streamed action) detect
this and degrade to inline execution instead.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

from . import telemetry
from .config import config, current_overlay, thread_overlay

__all__ = ["submit", "worker_count", "in_worker", "shutdown", "stats"]

#: Thread-name prefix identifying pool threads (see :func:`in_worker`).
_THREAD_PREFIX = "lux-worker"

#: Band indices: interactive drains strictly before background.
INTERACTIVE, BACKGROUND = 0, 1

_POOL: ThreadPoolExecutor | None = None  # guarded-by: _LOCK
_POOL_SIZE: int = 0  # guarded-by: _LOCK

#: Reentrant because a done-callback can fire synchronously on the
#: submitting thread while it still holds the lock (see :func:`_forget`).
_LOCK = threading.RLock()

#: Inner future -> dispatcher, for every dispatcher not yet started.  A
#: resize snapshots this map to re-submit whatever the retired pool
#: cancelled.
_PENDING: dict[Future, Callable[[], None]] = {}  # guarded-by: _LOCK

#: The tag/band the *currently running* work item was submitted under;
#: nested submissions inherit it so fan-out stays attributed.
_CONTEXT = threading.local()


class _FairQueue:
    """Two priority bands of per-tag deques with round-robin drain."""

    def __init__(self) -> None:
        self._bands: tuple[
            "OrderedDict[str, deque[Callable[[], None]]]", ...
        ] = (OrderedDict(), OrderedDict())

    def push(self, band: int, tag: str, item: Callable[[], None]) -> None:
        ring = self._bands[band]
        bucket = ring.get(tag)
        if bucket is None:
            bucket = deque()
            ring[tag] = bucket
        bucket.append(item)

    def pop(self) -> Callable[[], None] | None:
        """Next item: interactive first; round-robin across tags in a band."""
        for ring in self._bands:
            while ring:
                tag, bucket = next(iter(ring.items()))
                if not bucket:
                    del ring[tag]
                    continue
                item = bucket.popleft()
                if bucket:
                    ring.move_to_end(tag)  # rotate: next tag gets a turn
                else:
                    del ring[tag]
                return item
        return None

    def counts(self) -> tuple[int, int]:
        return tuple(
            sum(len(b) for b in ring.values()) for ring in self._bands
        )  # type: ignore[return-value]

    def depths(self) -> tuple[dict[str, int], dict[str, int]]:
        """Per-tag queued-item counts, one dict per band (empty tags elided)."""
        return tuple(
            {tag: len(bucket) for tag, bucket in ring.items() if bucket}
            for ring in self._bands
        )  # type: ignore[return-value]

    def tags(self) -> list[str]:
        seen: list[str] = []
        for ring in self._bands:
            for tag in ring:
                if tag not in seen:
                    seen.append(tag)
        return seen


_QUEUE = _FairQueue()  # guarded-by: _LOCK


def worker_count() -> int:
    """The pool size the next submission will enforce."""
    return max(int(config.action_pool_workers), 1)


def in_worker() -> bool:
    """True when the calling thread belongs to the shared pool.

    Fan-out helpers use this to run inline rather than submit-and-wait
    from inside the pool, which could deadlock a saturated pool.
    """
    return threading.current_thread().name.startswith(_THREAD_PREFIX)


def current_tag() -> str:
    """The tag of the work item running on this thread ("" outside one)."""
    return getattr(_CONTEXT, "tag", "")


def submit(
    fn: Callable[[], Any],
    tag: str | None = None,
    background: bool | None = None,
) -> "Future[Any]":
    """Run ``fn`` on the shared pool; returns a resize-stable future.

    ``tag`` buckets the item for round-robin fair-share (the service
    passes the session id); ``background`` demotes it to the band drained
    only when no interactive work is queued.  Both default to the
    submitting work item's own values (thread-local context), so nested
    fan-out inherits its parent's attribution; outside the pool the
    defaults are ``""`` and interactive.

    The caller's config overlay is captured here and re-applied around
    ``fn`` on the worker, so per-session settings survive fan-out.  The
    returned future is completed by whichever pool generation ends up
    running ``fn``; cancellation of the *inner* dispatcher during a resize
    is invisible to the caller.  Cancelling the returned future before the
    item starts prevents ``fn`` from running at all.
    """
    if tag is None:
        tag = getattr(_CONTEXT, "tag", "")
    if background is None:
        background = bool(getattr(_CONTEXT, "background", False))
    overlay = current_overlay()
    # Trace context crosses the thread hand-off alongside the config
    # overlay, so spans opened inside pool work stitch to the submitter's
    # trace (a foreground read's pass shares the HTTP request's trace id).
    trace_ctx = telemetry.current_trace()
    band_label = "background" if background else "interactive"
    enqueued = time.perf_counter()
    outer: "Future[Any]" = Future()

    def run() -> None:
        if not outer.set_running_or_notify_cancel():
            return
        started = time.perf_counter()
        telemetry.histogram(
            "lux_pool_queue_wait_seconds",
            "pool queue wait (push to start) by band and tag",
            ("band", "tag"),
        ).observe(started - enqueued, (band_label, tag or "untagged"))
        prev_tag = getattr(_CONTEXT, "tag", "")
        prev_bg = getattr(_CONTEXT, "background", False)
        _CONTEXT.tag, _CONTEXT.background = tag, background
        try:
            with thread_overlay(overlay), telemetry.trace_context(trace_ctx):
                outer.set_result(fn())
        except BaseException as exc:
            outer.set_exception(exc)
        finally:
            _CONTEXT.tag, _CONTEXT.background = prev_tag, prev_bg
            telemetry.histogram(
                "lux_pool_run_seconds",
                "pool item run time by band and tag",
                ("band", "tag"),
            ).observe(time.perf_counter() - started, (band_label, tag or "untagged"))

    with _LOCK:
        _QUEUE.push(BACKGROUND if background else INTERACTIVE, tag, run)
        _submit_locked(_dispatch)
    return outer


def _dispatch() -> None:
    """Drain one item from the fair queue (runs on a pool worker).

    Dispatchers are interchangeable: each submission enqueues one item and
    one dispatcher, so counts always match and a dispatcher never races an
    empty queue except transiently during a resize hand-off (where the
    pop simply returns None and the re-submitted dispatcher finds the
    item).
    """
    with _LOCK:
        item = _QUEUE.pop()
    if item is not None:
        item()


def _forget(inner: "Future[None]") -> None:
    """Done-callback dropping a finished dispatcher from the pending map.

    Runs on whatever thread completes the inner future — usually a pool
    worker, but synchronously on the submitting thread when the future is
    already done at ``add_done_callback`` time.  That thread still holds
    ``_LOCK`` (hence the reentrant lock), and a worker-thread callback
    takes it here: ``_retire_locked`` snapshots ``_PENDING`` under the
    same lock, so an unlocked pop would race the resize hand-off.
    """
    with _LOCK:
        _PENDING.pop(inner, None)


def _submit_locked(run: Callable[[], None]) -> None:  # requires-lock: _LOCK
    """Enqueue ``run`` on the current pool, resizing first if needed."""
    global _POOL, _POOL_SIZE
    workers = worker_count()
    if _POOL is not None and _POOL_SIZE != workers:
        _retire_locked()
    if _POOL is None:
        _POOL = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=_THREAD_PREFIX
        )
        _POOL_SIZE = workers
    inner = _POOL.submit(run)
    _PENDING[inner] = run
    inner.add_done_callback(_forget)


def _retire_locked() -> None:  # requires-lock: _LOCK
    """Retire the current pool, handing unstarted tasks to the successor.

    ``cancel_futures`` stops the retired pool's queue cold — its workers
    exit as soon as their running task finishes — and the cancelled tasks
    are re-queued on the replacement pool by the caller.
    """
    global _POOL, _POOL_SIZE
    assert _POOL is not None
    snapshot = list(_PENDING.items())
    _POOL.shutdown(wait=False, cancel_futures=True)
    _POOL = None
    _POOL_SIZE = 0
    orphans = [run for inner, run in snapshot if inner.cancelled()]
    if orphans:
        _POOL = ThreadPoolExecutor(
            max_workers=worker_count(), thread_name_prefix=_THREAD_PREFIX
        )
        _POOL_SIZE = worker_count()
        for run in orphans:
            inner = _POOL.submit(run)
            _PENDING[inner] = run
            inner.add_done_callback(_forget)


def stats() -> dict[str, Any]:
    """Queue/pool introspection for the service's ``/healthz`` endpoint."""
    with _LOCK:
        interactive, background = _QUEUE.counts()
        depth_interactive, depth_background = _QUEUE.depths()
        return {
            "workers": _POOL_SIZE or worker_count(),
            "alive": _POOL is not None,
            "queued_interactive": interactive,
            "queued_background": background,
            "queued_tags": _QUEUE.tags(),
            # Per-band, per-tag queue depths: the operator's view of who
            # is waiting where (the service tags items with session ids).
            "queues": {
                "interactive": depth_interactive,
                "background": depth_background,
            },
        }


def shutdown(wait: bool = True) -> None:
    """Tear the pool down (tests / interpreter exit); next submit recreates."""
    global _POOL, _POOL_SIZE
    with _LOCK:
        pool, _POOL, _POOL_SIZE = _POOL, None, 0
    if pool is not None:
        pool.shutdown(wait=wait)
