"""LuxDataFrame: the always-on dataframe (§4, §7).

Subclasses the substrate DataFrame so *every* dataframe operation keeps
working unchanged, while two hooks implement the paper's machinery:

- ``_init_derived`` propagates intent + history to derived frames and marks
  derivation flags (filtered / aggregated);
- ``_notify_mutation`` expires metadata, recommendations, the cached
  sample, and the executor's shared computation cache whenever the frame's
  content changes (the *wflow* expiry rules: inplace ops, column updates
  via bracket/dot assignment, label changes), bumping ``_data_version`` so
  every version-keyed cache entry becomes unreachable.

Printing the frame (``repr``) triggers lazy recomputation of metadata and
recommendations; unmodified re-prints hit the memoized results.
"""

from __future__ import annotations

import warnings
import weakref
from typing import Any

import numpy as np

from ..dataframe import DataFrame, Series
from ..dataframe import observe
from ..dataframe.io import read_csv as _read_csv
from ..vis.html import render_widget
from .clause import Clause
from .config import config
from .errors import LuxWarning
from .executor.cache import computation_cache
from .history import History
from . import usage_log
from .intent import parse_intent
from .metadata import Metadata, compute_metadata, refresh_metadata
from .optimizer.scheduler import RecommendationSet, run_actions
from .validator import validate_intent
from .vis import Vis
from .vislist import VisList

__all__ = ["LuxDataFrame", "LuxSeries", "read_csv"]


def _selector_indices(rows: tuple) -> "np.ndarray | None":
    """Parent row indices for a ``_wrap`` row selector; None if unusable.

    Conversion is deferred to link time (the substrate passes the raw
    selector) so derivations that never link pay nothing.
    """
    try:
        tag = rows[0]
        if tag == "mask":
            return np.flatnonzero(np.asarray(rows[1], dtype=bool))
        if tag == "take":
            return np.asarray(rows[1], dtype=np.int64)
        if tag == "slice":
            sl, n = rows[1], rows[2]
            return np.arange(*sl.indices(n), dtype=np.int64)
    except Exception:
        return None
    return None


class LuxSeries(Series):
    """A Series that displays its univariate visualization when printed.

    Implements the paper's Series structure-based recommendation: printing a
    single column shows a histogram (quantitative) or bar chart (nominal)
    built through the same machinery as full dataframes.
    """

    def _wrap(self, column, index=None) -> "LuxSeries":
        return LuxSeries(
            column,
            name=self.name,
            index=index if index is not None else None,
        )

    def to_lux_frame(self) -> "LuxDataFrame":
        name = self.name or "value"
        frame = LuxDataFrame({name: self.column})
        return frame

    @property
    def visualization(self) -> Vis | None:
        """The univariate Vis for this series (None when not visualizable)."""
        name = self.name or "value"
        try:
            frame = self.to_lux_frame()
            return Vis([name], frame)
        except Exception:
            return None

    def __repr__(self) -> str:
        base = super().__repr__()
        if not config.always_on or len(self) == 0:
            return base
        vis = self.visualization
        if vis is None:
            return base
        try:
            return f"{base}\n\n{vis.to_ascii()}"
        except Exception:
            return base


class LuxDataFrame(DataFrame):
    """A DataFrame carrying intent, metadata, history, and recommendations."""

    _internal_names = DataFrame._internal_names | {
        "_intent_clauses",
        "_metadata_cache",
        "_metadata_fresh",
        "_metadata_version",
        "_recs_cache",
        "_recs_fresh",
        "_recs_version",
        "_history",
        "_parent_ref",
        "_sample_cache",
        "_exported",
        "_data_version",
        "_intent_epoch",
        "_restored_type_overrides",
        "_metadata_delta",
    }

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        self._setup_lux_state()
        super().__init__(*args, **kwargs)
        if isinstance(args[0] if args else None, LuxDataFrame):
            source = args[0]
            self._intent_clauses = [c.copy() for c in source._intent_clauses]
            self._history = source._history.copy()

    # ------------------------------------------------------------------
    # State plumbing
    # ------------------------------------------------------------------
    def _setup_lux_state(self) -> None:
        object.__setattr__(self, "_intent_clauses", [])
        object.__setattr__(self, "_metadata_cache", None)
        object.__setattr__(self, "_metadata_fresh", False)
        object.__setattr__(self, "_metadata_version", -1)
        object.__setattr__(self, "_recs_cache", None)
        object.__setattr__(self, "_recs_fresh", False)
        object.__setattr__(self, "_recs_version", (-1, -1))
        object.__setattr__(self, "_history", History())
        object.__setattr__(self, "_parent_ref", None)
        object.__setattr__(self, "_sample_cache", None)
        object.__setattr__(self, "_exported", [])
        object.__setattr__(self, "_data_version", 0)
        object.__setattr__(self, "_intent_epoch", 0)
        #: Explicit set_data_type overrides carried across a snapshot
        #: restore: the restored frame has no metadata cache yet, so the
        #: first _compute_metadata seeds its overrides from here.
        object.__setattr__(self, "_restored_type_overrides", {})
        #: Union of all data deltas since the last metadata computation.
        #: ``None`` means no mutation is pending; ``_compute_metadata``
        #: consumes it to rescan only the columns that actually changed.
        object.__setattr__(self, "_metadata_delta", None)

    def _init_derived(
        self,
        parent: DataFrame | None,
        op: str,
        rows: tuple | None = None,
    ) -> None:
        """Propagate Lux state from parent to derived frames (§6, history).

        When the derivation is a pure row subset (``rows`` carries the
        selector), the child is linked to the parent in the computation
        cache: its floats and filter masks derive from the parent's cached
        vectors instead of rescanning the copied columns, and the link
        *migrates* across column-scoped parent mutations (only the changed
        columns stop deriving) rather than cold-starting the child.
        """
        if not hasattr(self, "_history"):
            self._setup_lux_state()
        if isinstance(parent, LuxDataFrame):
            self._history = History()
            self._history.extend_from(parent._history)
            self._intent_clauses = [c.copy() for c in parent._intent_clauses]
            self._parent_ref = weakref.ref(parent)
            if (
                rows is not None
                and config.computation_cache
                and config.derived_cache_links
            ):
                indices = _selector_indices(rows)
                if indices is not None:
                    computation_cache.link_derived(self, parent, indices)
        if op and op not in ("copy", "select_columns"):
            self._history.append(op)

    def _notify_mutation(
        self, op: str, delta: "observe.Delta | None" = None
    ) -> None:
        if not hasattr(self, "_history"):
            self._setup_lux_state()
        self._history.append(op)
        self._expire(op, delta)
        if not config.lazy_maintain and config.always_on:
            # no-opt condition: recompute eagerly after every change.
            self._refresh_all()

    def _expire(self, op: str = "mutation", delta: "observe.Delta | None" = None) -> None:
        """Expire cached metadata/recommendations/sample (wflow rules).

        Bumping ``_data_version`` is what makes every version-keyed cache
        (the row sample, the executor's computation cache, its sample
        links, the SQL executor's connection cache) unreachable.  The
        explicit ``invalidate`` below frees the executor cache's memory
        eagerly — and, when ``delta`` names the changed columns with the
        row set intact, *migrates* the slot instead: primitives keyed on
        untouched columns survive the version bump (delta-aware
        invalidation), so a single-column edit does not throw away every
        other column's floats, factorizations, and masks.
        """
        self._metadata_fresh = False
        self._recs_fresh = False
        self._sample_cache = None
        self._data_version += 1
        pending = delta if delta is not None else observe.Delta.unknown()
        if self._metadata_delta is not None:
            pending = self._metadata_delta.union(pending)
        self._metadata_delta = pending
        computation_cache.invalidate(self, delta)
        observe.emit(self, op, delta)

    def expire_recommendations(self) -> None:
        self._recs_fresh = False

    def _refresh_all(self) -> None:
        self._compute_metadata()
        self._compute_recommendations()

    def _make_series(self, col, name: str) -> LuxSeries:
        return LuxSeries(col, name=name, index=self._index)

    # ------------------------------------------------------------------
    # Intent (§5)
    # ------------------------------------------------------------------
    @property
    def intent(self) -> list[Clause]:
        return list(self._intent_clauses)

    @intent.setter
    def intent(self, value: Any) -> None:
        clauses = parse_intent(value)
        validate_intent(clauses, self.metadata)
        self._intent_clauses = clauses
        # Intent changes expire recommendations but not metadata (§8.2).
        self._expire_recommendation_state()
        usage_log.record("intent", clauses=[repr(c) for c in clauses])

    def clear_intent(self) -> None:
        self._intent_clauses = []
        self._expire_recommendation_state()

    def _expire_recommendation_state(
        self, delta: "observe.Delta | None" = None
    ) -> None:
        """Expire recommendations (but not metadata) and signal observers.

        ``_intent_epoch`` is the recommendation-only sibling of
        ``_data_version``: the service's result store keys on both, so an
        intent change makes stored payloads unreachable without discarding
        data-level caches, and the emitted event lets the precompute
        engine refresh the store in the background.  The default delta is
        *intent-only* (no data dirty); callers that also shift semantics
        (``set_data_type``) pass a richer delta naming the columns.
        """
        self._recs_fresh = False
        self._intent_epoch += 1
        observe.emit(self, "intent", delta or observe.Delta.intent())

    @property
    def current_vis(self) -> VisList | None:
        """Visualization(s) of the user-specified intent itself."""
        if not self._intent_clauses:
            return None
        try:
            return VisList(self._intent_clauses, self)
        except Exception as exc:
            warnings.warn(f"could not render intent: {exc}", LuxWarning)
            return None

    # ------------------------------------------------------------------
    # Metadata (§8.1) — lazy + memoized under wflow
    # ------------------------------------------------------------------
    @property
    def metadata(self) -> Metadata:
        if (
            self._metadata_cache is None
            or not self._metadata_fresh
            or self._metadata_version != self._data_version
            or not config.lazy_maintain
        ):
            self._compute_metadata()
        return self._metadata_cache

    def _compute_metadata(self) -> None:
        # Version-stamp the computation: a background pass may race an
        # analyst mutating the frame, and without the stamp its late
        # ``_metadata_fresh = True`` write would resurrect metadata the
        # mutation already expired (served as current by the next pass).
        # Freshness holds only if the version never moved while computing.
        start_version = self._data_version
        # Snapshot-and-clear the accumulated delta: a mutation racing this
        # computation re-accumulates into a fresh delta AND moves the
        # version, so the freshness check below forces another pass that
        # rescans whatever the race touched.
        pending = self._metadata_delta
        self._metadata_delta = None
        previous = self._metadata_cache
        if previous is not None:
            # Preserve explicit user data-type overrides across refreshes.
            overrides = getattr(previous, "_overrides", {})
        else:
            # First computation after a snapshot restore: the overrides
            # live on the frame until a metadata cache exists to hold them.
            overrides = dict(getattr(self, "_restored_type_overrides", {}) or {})
        if (
            previous is not None
            and pending is not None
            and pending.columns_changed is not None
            and not pending.rows_changed
            and not pending.schema_changed
            and previous.n_rows == len(self)
        ):
            # Fine-grained path: the delta names exactly which columns
            # changed with the row set and schema intact, so only those
            # columns are rescanned; the rest keep their AttributeMeta and
            # per-column version stamp.
            meta = refresh_metadata(
                self, previous, pending.columns_changed, start_version
            )
        else:
            meta = compute_metadata(self, version=start_version)
        for name, data_type in overrides.items():
            if name in meta:
                meta.override(name, data_type)
        meta._overrides = dict(overrides)
        self._metadata_cache = meta
        self._metadata_version = start_version
        self._metadata_fresh = self._data_version == start_version

    def set_data_type(self, types: dict[str, str]) -> None:
        """Override inferred semantic data types (§8.1)."""
        meta = self.metadata
        for name, data_type in types.items():
            meta.override(name, data_type)
        stored = getattr(meta, "_overrides", {})
        stored.update(types)
        meta._overrides = stored
        # A type override changes what the named columns *mean* (action
        # footprints shift) without touching their data: the delta names
        # them so delta-aware consumers rerun exactly the affected actions.
        self._expire_recommendation_state(
            observe.Delta(
                columns_changed=frozenset(types),
                schema_changed=True,
                intent_changed=True,
            )
        )

    @property
    def data_types(self) -> dict[str, str]:
        return {a.name: a.data_type for a in self.metadata}

    @property
    def history(self) -> History:
        return self._history

    @property
    def parent_frame(self) -> "LuxDataFrame | None":
        if self._parent_ref is None:
            return None
        return self._parent_ref()

    # ------------------------------------------------------------------
    # Recommendations (§6, §7.2) — lazy + memoized under wflow
    # ------------------------------------------------------------------
    @property
    def recommendations(self) -> RecommendationSet:
        if (
            self._recs_cache is None
            or not self._recs_fresh
            or self._recs_version != (self._data_version, self._intent_epoch)
            or not config.lazy_maintain
        ):
            self._compute_recommendations()
        return self._recs_cache

    @property
    def recommendation(self) -> RecommendationSet:
        """Alias matching the Lux API (``df.recommendation``)."""
        return self.recommendations

    def _compute_recommendations(self) -> None:
        from .actions.registry import default_registry

        # Same version-stamping rationale as ``_compute_metadata``: a pass
        # racing a mutation must not mark its (possibly torn) result fresh.
        start_version = (self._data_version, self._intent_epoch)
        metadata = self.metadata
        try:
            applicable = default_registry.applicable(self)
            recs = run_actions(applicable, self, metadata)
        except Exception as exc:
            # Failproofing (§10.3): never break the display.
            warnings.warn(
                f"recommendation generation failed ({exc}); "
                "falling back to the plain table view.",
                LuxWarning,
            )
            recs = RecommendationSet()
            recs._done.set()
        self._recs_cache = recs
        self._recs_version = start_version
        self._recs_fresh = (
            self._data_version,
            self._intent_epoch,
        ) == start_version

    # ------------------------------------------------------------------
    # Widget export (§3)
    # ------------------------------------------------------------------
    def export(self, action: str, index: int = 0) -> Vis:
        """Export one recommended Vis (the widget's export button)."""
        vis = self.recommendations[action][index]
        self._exported.append(vis)
        usage_log.record("export", action=action, index=index)
        return vis

    @property
    def exported(self) -> VisList:
        return VisList(visualizations=list(self._exported), source=self)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        table = super().__repr__()
        usage_log.record(
            "print", rows=len(self), cols=len(self.columns),
            always_on=config.always_on,
        )
        if not config.always_on:
            return table
        try:
            recs = self.recommendations
            names = recs.keys() if not config.streaming else recs.ready
            summary = ", ".join(
                f"{name} ({len(recs._results[name])})" for name in names
            )
        except Exception as exc:  # failproof fallback to the table (§10.3)
            warnings.warn(f"Lux view unavailable: {exc}", LuxWarning)
            return table
        if config.default_display == "lux":
            return f"{table}\n\n{self._render_dashboard()}"
        hint = (
            f"\n[Lux] actions: {summary}"
            "\n      toggle with repro.config.default_display = 'lux'; "
            "df.show(); df.save_as_html('widget.html')"
        )
        return table + hint

    def _render_dashboard(self, charts_per_action: int = 2) -> str:
        recs = self.recommendations
        blocks = []
        for name in recs.keys():
            vislist = recs[name]
            blocks.append(f"=== {name} ({len(vislist)}) ===")
            for vis in list(vislist)[:charts_per_action]:
                try:
                    blocks.append(vis.to_ascii())
                except Exception:
                    blocks.append(f"  {vis!r}")
        return "\n".join(blocks)

    def show(self, charts_per_action: int = 2) -> None:
        """Print the ASCII dashboard (the terminal 'Lux view')."""
        print(self._render_dashboard(charts_per_action=charts_per_action))

    def to_report(self, path: str, title: str | None = None,
                  charts_per_action: int = 4) -> str:
        """Write a static, shareable HTML report of all recommendations.

        Reproduces the §10.3 downstream-reporting integration: unlike the
        per-frame widget, a report is a one-shot document (optionally
        combining several frames via :func:`repro.vis.render_report`).
        """
        from ..vis.report import render_report

        html = render_report(
            {title or f"Dataframe ({len(self)} rows)": self},
            title=title or "Lux report",
            charts_per_action=charts_per_action,
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(html)
        return path

    def save_as_html(self, path: str, max_table_rows: int = 20) -> str:
        """Write the interactive HTML widget; returns the path."""
        recs = self.recommendations
        actions = {name: recs[name].specs() for name in recs.keys()}
        html = render_widget(
            actions,
            table_records=self.head(max_table_rows).to_records(),
            table_columns=self.columns,
            title=f"LuxDataFrame ({len(self)} rows x {len(self.columns)} cols)",
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(html)
        return path


def read_csv(path_or_buffer: Any, **kwargs: Any) -> LuxDataFrame:
    """Load a CSV directly into a LuxDataFrame (``lux.read_csv`` analogue)."""
    return _read_csv(path_or_buffer, frame_cls=LuxDataFrame, **kwargs)
