"""Process-wide telemetry: metrics registry, tracing spans, structured logs.

Three cooperating facilities, all stdlib-only and safe to use from any
thread in any process of the service tier:

* **Metrics** — a process-global :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket latency histograms.  Bucket bounds are derived
  deterministically from ``config.telemetry_histogram_buckets``, so every
  process in a sharded deployment uses *identical* edges and merging
  histograms across processes is plain bucket-wise addition (associative
  and commutative — see ``service/metrics.py::merge_snapshots``).

* **Tracing** — ``span(name, **attrs)`` is a context manager producing
  parent-linked spans with monotonic timings.  Finished spans land in a
  per-process ring buffer (``collections.deque`` with ``maxlen``, whose
  ``append`` is atomic under the GIL — span ``__exit__`` never takes a
  lock; the ``telemetry-hygiene`` check rule enforces this).  Sampling is
  decided once per trace from a hash of the trace id, so the decision is
  deterministic and propagates across process boundaries together with
  the id itself (``current_trace()`` / ``trace_context()``).

* **Logging** — ``get_logger(name)`` returns a structured JSON logger
  whose records automatically carry the active trace id and session id,
  letting operators correlate log lines with spans and metrics.

Nothing here imports service code; the service layer builds exposition
and cross-process merging on top (``src/repro/service/metrics.py``).
"""

from __future__ import annotations

import bisect
import json
import os
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, TextIO, Tuple

from .config import config

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "bucket_bounds",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "span",
    "spans",
    "current_trace",
    "current_trace_id",
    "trace_context",
    "new_trace_id",
    "get_logger",
    "add_log_handler",
    "remove_log_handler",
    "configure_logging",
    "reset",
]

# Label values for one metric are capped at this many distinct tuples;
# further tuples collapse into a single overflow series so unbounded
# inputs (session ids as tags) cannot grow the registry without bound.
MAX_LABEL_SETS = 64
OVERFLOW_LABEL = "_other"

# Smallest histogram bucket upper bound, in seconds (0.5 ms).  Buckets
# grow by powers of two: 0.5ms, 1ms, 2ms, ... — with the default of 20
# buckets the largest finite bound is ~262s, far beyond any request.
BUCKET_BASE_S = 0.0005


def bucket_bounds(n: Optional[int] = None) -> Tuple[float, ...]:
    """Finite histogram bucket upper bounds (seconds), smallest first.

    Derived only from the bucket-count knob, so every process configured
    alike produces identical edges — the property that makes cross-process
    histogram merge exact.
    """

    if n is None:
        n = int(config.telemetry_histogram_buckets)
    n = max(1, int(n))
    return tuple(BUCKET_BASE_S * (2.0**i) for i in range(n))


def _label_key(labels: Iterable[Any]) -> Tuple[str, ...]:
    return tuple(str(v) for v in labels)


class Counter:
    """Monotonic counter, optionally labelled."""

    def __init__(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: Dict[Tuple[str, ...], float] = {}  # guarded-by: _lock

    def inc(self, amount: float = 1.0, labels: Iterable[Any] = ()) -> None:
        key = _label_key(labels)
        with self._lock:
            if key not in self._values and len(self._values) >= MAX_LABEL_SETS:
                key = (OVERFLOW_LABEL,) * len(self.labelnames)
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, labels: Iterable[Any] = ()) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            values = {"\x1f".join(k): v for k, v in self._values.items()}
        return {
            "type": "counter",
            "help": self.help,
            "labels": list(self.labelnames),
            "values": values,
        }


class Gauge:
    """Callback-backed gauge: evaluated at collection time.

    Callbacks must be lock-free reads of plain attributes (ints under the
    GIL are torn-free); the ``telemetry-hygiene`` rule rejects callbacks
    that acquire locks or perform I/O.  Re-registering the same label set
    replaces the callback, so long-lived registries don't pin dead
    objects after a server restart within one process.
    """

    def __init__(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._callbacks: Dict[Tuple[str, ...], Callable[[], float]] = {}  # guarded-by: _lock

    def set_function(self, fn: Callable[[], float], labels: Iterable[Any] = ()) -> None:
        key = _label_key(labels)
        with self._lock:
            if key not in self._callbacks and len(self._callbacks) >= MAX_LABEL_SETS:
                key = (OVERFLOW_LABEL,) * len(self.labelnames)
            self._callbacks[key] = fn

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            items = list(self._callbacks.items())
        values: Dict[str, float] = {}
        for key, fn in items:
            try:
                values["\x1f".join(key)] = float(fn())
            except Exception:
                continue
        return {
            "type": "gauge",
            "help": self.help,
            "labels": list(self.labelnames),
            "values": values,
        }


class Histogram:
    """Fixed-bucket latency histogram (seconds).

    Bucket bounds are frozen at creation from :func:`bucket_bounds`; the
    per-label state is ``(per-bucket counts, total count, sum)``.  Counts
    have one extra slot for observations above the largest finite bound
    (the implicit ``+Inf`` bucket).
    """

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Tuple[str, ...] = (),
        bounds: Optional[Iterable[float]] = None,
    ):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.bounds: Tuple[float, ...] = tuple(bounds) if bounds is not None else bucket_bounds()
        self._lock = threading.Lock()
        # label tuple -> [counts list, total count, sum]  guarded-by: _lock
        self._values: Dict[Tuple[str, ...], List[Any]] = {}

    def observe(self, value: float, labels: Iterable[Any] = ()) -> None:
        idx = bisect.bisect_left(self.bounds, value)
        key = _label_key(labels)
        with self._lock:
            row = self._values.get(key)
            if row is None:
                if len(self._values) >= MAX_LABEL_SETS:
                    key = (OVERFLOW_LABEL,) * len(self.labelnames)
                    row = self._values.get(key)
                if row is None:
                    row = [[0] * (len(self.bounds) + 1), 0, 0.0]
                    self._values[key] = row
            row[0][idx] += 1
            row[1] += 1
            row[2] += value

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            values = {
                "\x1f".join(k): {"counts": list(row[0]), "count": row[1], "sum": row[2]}
                for k, row in self._values.items()
            }
        return {
            "type": "histogram",
            "help": self.help,
            "labels": list(self.labelnames),
            "bounds": list(self.bounds),
            "values": values,
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics for one process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}  # guarded-by: _lock

    def _get_or_create(self, cls: type, name: str, help: str, labelnames: Tuple[str, ...]) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, tuple(labelnames))
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
            return metric

    def counter(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames)

    def collect(self) -> Dict[str, Dict[str, Any]]:
        """JSON-safe snapshot of every metric: ``{name: {type, help, ...}}``."""

        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY


def counter(name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> Counter:
    return _REGISTRY.counter(name, help, labelnames)


def gauge(name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> Gauge:
    return _REGISTRY.gauge(name, help, labelnames)


def histogram(name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> Histogram:
    return _REGISTRY.histogram(name, help, labelnames)


# --------------------------------------------------------------------------
# Tracing
# --------------------------------------------------------------------------

_ACTIVE = threading.local()  # .span: active Span; .remote: propagated trace ctx
_SPANS: Optional[deque] = None  # per-process ring; deque.append is GIL-atomic
_ID_COUNTER = [0]
_ID_LOCK = threading.Lock()


def new_trace_id() -> str:
    """16-hex-char id, unique per process and collision-resistant across."""

    with _ID_LOCK:
        _ID_COUNTER[0] += 1
        n = _ID_COUNTER[0]
    seed = os.urandom(4).hex()
    return f"{seed}{os.getpid() & 0xFFFF:04x}{n & 0xFFFFFFFF:08x}"


def _sampled(trace_id: str) -> bool:
    rate = float(config.telemetry_sample_rate)
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    # Deterministic in the trace id, so every process in a sharded tier
    # makes the same decision for the same trace.
    return (int(trace_id[:8], 16) & 0xFFFFFF) / float(0x1000000) < rate


def _ring() -> deque:
    global _SPANS
    ring = _SPANS
    if ring is None:
        ring = deque(maxlen=max(1, int(config.telemetry_span_buffer)))
        _SPANS = ring
    return ring


class Span:
    """One timed unit of work; used via the ``span()`` context manager.

    ``__exit__`` is deliberately lock-free: it computes the duration and
    appends a plain dict to the process ring buffer (atomic deque append).
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "sampled",
        "start",
        "duration_ms",
        "_t0",
        "_parent_span",
    )

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.trace_id = ""
        self.span_id = ""
        self.parent_id: Optional[str] = None
        self.sampled = True
        self.start = 0.0
        self.duration_ms = 0.0
        self._t0 = 0.0
        self._parent_span: Optional[Span] = None

    def __enter__(self) -> "Span":
        parent = getattr(_ACTIVE, "span", None)
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
            self.sampled = parent.sampled
        else:
            remote = getattr(_ACTIVE, "remote", None)
            if remote:
                self.trace_id = str(remote.get("id") or new_trace_id())
                self.parent_id = remote.get("span")
                self.sampled = bool(remote.get("sampled", True))
            else:
                self.trace_id = new_trace_id()
                self.sampled = _sampled(self.trace_id)
        self.span_id = new_trace_id()[:12]
        self._parent_span = parent
        self.start = time.time()
        self._t0 = time.perf_counter()
        _ACTIVE.span = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_ms = (time.perf_counter() - self._t0) * 1000.0
        _ACTIVE.span = self._parent_span
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if self.sampled:
            ring = _ring()
            ring.append(
                {
                    "trace_id": self.trace_id,
                    "span_id": self.span_id,
                    "parent_id": self.parent_id,
                    "name": self.name,
                    "start": self.start,
                    "duration_ms": self.duration_ms,
                    "attrs": self.attrs,
                }
            )


def span(name: str, **attrs: Any) -> Span:
    """Context manager: time a unit of work, linked to the active trace."""

    return Span(name, attrs)


def current_trace() -> Optional[Dict[str, Any]]:
    """Propagatable context of the active trace, or ``None``.

    The returned dict is JSON-safe and is what crosses process boundaries
    (inside the shard RPC request/response envelopes).
    """

    active = getattr(_ACTIVE, "span", None)
    if active is not None:
        return {"id": active.trace_id, "span": active.span_id, "sampled": active.sampled}
    remote = getattr(_ACTIVE, "remote", None)
    if remote:
        return dict(remote)
    return None


def current_trace_id() -> Optional[str]:
    ctx = current_trace()
    return str(ctx["id"]) if ctx and ctx.get("id") else None


class _TraceContext:
    """Adopt a propagated trace context for the current thread."""

    __slots__ = ("_ctx", "_prev")

    def __init__(self, ctx: Optional[Dict[str, Any]]):
        self._ctx = ctx
        self._prev: Any = None

    def __enter__(self) -> None:
        self._prev = getattr(_ACTIVE, "remote", None)
        _ACTIVE.remote = self._ctx

    def __exit__(self, exc_type, exc, tb) -> None:
        _ACTIVE.remote = self._prev


def trace_context(ctx: Optional[Dict[str, Any]]) -> _TraceContext:
    return _TraceContext(ctx)


def spans(
    session_id: Optional[str] = None,
    trace_id: Optional[str] = None,
    limit: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Most-recent-last snapshot of the span ring, optionally filtered."""

    ring = _SPANS
    if ring is None:
        return []
    records = list(ring)  # atomic snapshot under the GIL
    if session_id is not None:
        records = [r for r in records if r["attrs"].get("session") == session_id]
    if trace_id is not None:
        records = [r for r in records if r["trace_id"] == trace_id]
    if limit is not None and limit >= 0:
        records = records[-limit:]
    return records


# --------------------------------------------------------------------------
# Structured logging
# --------------------------------------------------------------------------

_LOG_LOCK = threading.Lock()
_LOG_STREAM: Optional[TextIO] = None  # guarded-by: _LOG_LOCK
_LOG_HANDLERS: List[Callable[[Dict[str, Any]], None]] = []
_LOGGERS: Dict[str, "JsonLogger"] = {}
_LOGGERS_LOCK = threading.Lock()


def configure_logging(stream: Optional[TextIO]) -> None:
    """Direct JSON log lines at ``stream`` (``None`` disables emission)."""

    global _LOG_STREAM
    with _LOG_LOCK:
        _LOG_STREAM = stream


def add_log_handler(fn: Callable[[Dict[str, Any]], None]) -> None:
    _LOG_HANDLERS.append(fn)


def remove_log_handler(fn: Callable[[Dict[str, Any]], None]) -> None:
    try:
        _LOG_HANDLERS.remove(fn)
    except ValueError:
        pass


class JsonLogger:
    """Structured logger: one JSON object per record, trace-correlated.

    ``info()`` et al. return the enriched record so callers (``usage_log``)
    can reuse the exact emitted payload.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _emit(self, level: str, event: str, fields: Dict[str, Any]) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "ts": time.time(),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        active = getattr(_ACTIVE, "span", None)
        if active is not None:
            record["trace_id"] = active.trace_id
            record["span_id"] = active.span_id
            node: Optional[Span] = active
            while node is not None:
                session = node.attrs.get("session")
                if session is not None:
                    record["session_id"] = session
                    break
                node = node._parent_span
        else:
            remote = getattr(_ACTIVE, "remote", None)
            if remote and remote.get("id"):
                record["trace_id"] = str(remote["id"])
        for key, value in fields.items():
            if key not in record:
                record[key] = value
        for handler in list(_LOG_HANDLERS):
            try:
                handler(record)
            except Exception:
                pass
        with _LOG_LOCK:
            stream = _LOG_STREAM
            if stream is not None:
                try:
                    stream.write(json.dumps(record, default=str) + "\n")
                    stream.flush()
                except Exception:
                    pass
        return record

    def debug(self, event: str, **fields: Any) -> Dict[str, Any]:
        return self._emit("debug", event, fields)

    def info(self, event: str, **fields: Any) -> Dict[str, Any]:
        return self._emit("info", event, fields)

    def warning(self, event: str, **fields: Any) -> Dict[str, Any]:
        return self._emit("warning", event, fields)

    def error(self, event: str, **fields: Any) -> Dict[str, Any]:
        return self._emit("error", event, fields)


def get_logger(name: str) -> JsonLogger:
    with _LOGGERS_LOCK:
        logger = _LOGGERS.get(name)
        if logger is None:
            logger = JsonLogger(name)
            _LOGGERS[name] = logger
        return logger


def reset() -> None:
    """Test hook: drop all metrics and spans, re-read config knobs."""

    global _SPANS
    _REGISTRY.clear()
    _SPANS = None
