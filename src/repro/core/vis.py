"""Vis: an intent applied to a specific dataframe instance (§4.A)."""

from __future__ import annotations

from typing import Any

from ..dataframe import DataFrame
from ..vis.spec import VisSpec
from .clause import Clause
from .compiler import CompiledVis, compile_intent
from .errors import IntentError
from .executor.base import get_executor
from .intent import parse_intent
from .metadata import Metadata, compute_metadata
from .validator import validate_intent

__all__ = ["Vis"]


def metadata_for(frame: DataFrame) -> Metadata:
    """Metadata for a frame, reusing the LuxDataFrame cache when present."""
    cached = getattr(frame, "metadata", None)
    if isinstance(cached, Metadata):
        return cached
    return compute_metadata(frame)


class Vis:
    """A single visualization: compiled spec + processed data + score.

    >>> Vis(["Age", "Education"], df)          # doctest: +SKIP

    The intent must compile to exactly one visualization — unions and
    wildcards belong in :class:`~repro.core.vislist.VisList`.
    """

    def __init__(
        self,
        intent: Any,
        source: DataFrame | None = None,
        title: str | None = None,
        score: float | None = None,
    ) -> None:
        self._intent: list[Clause] = parse_intent(intent)
        self._title_override = title
        self.score: float | None = score
        self.spec: VisSpec | None = None
        self.source: DataFrame | None = None
        if source is not None:
            self.refresh_source(source)

    # ------------------------------------------------------------------
    @classmethod
    def from_compiled(
        cls,
        compiled: CompiledVis,
        source: DataFrame | None = None,
        score: float | None = None,
        process: bool = True,
    ) -> "Vis":
        """Internal fast path used by VisList and the action generators."""
        vis = cls.__new__(cls)
        vis._intent = compiled.clauses
        vis._title_override = None
        vis.score = score
        vis.spec = compiled.spec
        vis.source = source
        if source is not None and process and compiled.spec.data is None:
            get_executor().execute(compiled.spec, source)
        return vis

    # ------------------------------------------------------------------
    @property
    def intent(self) -> list[Clause]:
        return list(self._intent)

    @property
    def mark(self) -> str | None:
        return self.spec.mark if self.spec is not None else None

    @property
    def title(self) -> str:
        if self._title_override:
            return self._title_override
        return self.spec.title if self.spec is not None else repr(self._intent)

    @property
    def data(self) -> list[dict[str, Any]] | None:
        return self.spec.data if self.spec is not None else None

    # ------------------------------------------------------------------
    def refresh_source(self, frame: DataFrame) -> "Vis":
        """(Re)compile and (re)process this Vis against ``frame``."""
        metadata = metadata_for(frame)
        validate_intent(self._intent, metadata)
        candidates = compile_intent(self._intent, metadata)
        if not candidates:
            raise IntentError(
                "intent did not compile to any valid visualization "
                "(check data types and cardinalities)."
            )
        if len(candidates) > 1:
            raise IntentError(
                f"intent specifies {len(candidates)} visualizations; "
                "use VisList for multi-visualization intents."
            )
        compiled = candidates[0]
        self._intent = compiled.clauses
        self.spec = compiled.spec
        self.source = frame
        get_executor().execute(self.spec, frame)
        return self

    def compute_score(self) -> float:
        """Interestingness of this Vis on its source (cached)."""
        from .interestingness import score_vis

        if self.score is None:
            if self.spec is None or self.source is None:
                raise IntentError("Vis has no source; call refresh_source first")
            self.score = score_vis(self.spec, self.source, get_executor())
        return self.score

    # ------------------------------------------------------------------
    # Renderers / export
    # ------------------------------------------------------------------
    def _require_spec(self) -> VisSpec:
        if self.spec is None:
            raise IntentError("Vis has no source; call refresh_source first")
        return self.spec

    def to_vegalite(self) -> dict[str, Any]:
        return self._require_spec().to_vegalite()

    def to_altair_code(self) -> str:
        return self._require_spec().to_altair_code()

    def to_matplotlib_code(self) -> str:
        return self._require_spec().to_matplotlib_code()

    def to_ascii(self, width: int = 60, height: int = 14) -> str:
        return self._require_spec().to_ascii(width=width, height=height)

    def __repr__(self) -> str:
        if self.spec is None:
            return f"<Vis {self._intent!r} (unattached)>"
        score = f", score={self.score:.3f}" if self.score is not None else ""
        return f"<Vis ({self.title}) mark={self.spec.mark}{score}>"
