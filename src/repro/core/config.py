"""Global configuration for the Lux reproduction.

The flags mirror the paper's evaluation conditions (§9.1): ``lazy_maintain``
is the *wflow* optimization, ``early_pruning`` is *prune*, and
``cost_based_scheduling`` is *async*.  The benchmark harness flips these to
realize the five measured conditions (no-opt / wflow / wflow+prune /
all-opt / pandas).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = ["Config", "config", "config_overlay", "current_overlay", "thread_overlay"]

#: Per-thread stack of overlay dicts consulted (top first) before the
#: singleton's own attributes.  Overlays are *reads-only* isolation: they
#: never touch the shared ``__dict__``, so two threads holding different
#: overlays see different effective configs concurrently — the mechanism
#: sessions use to stop clobbering one another's knobs.
_OVERLAYS = threading.local()


def _overlay_stack() -> list[dict[str, Any]]:
    stack = getattr(_OVERLAYS, "stack", None)
    if stack is None:
        stack = []
        _OVERLAYS.stack = stack
    return stack


@dataclass
class Config:
    """Runtime knobs; mutate the module-level :data:`config` singleton."""

    #: Number of recommendations kept per action (paper: k = 15).
    top_k: int = 15

    #: wflow — compute metadata/recommendations lazily on print and memoize.
    lazy_maintain: bool = True

    #: prune — approximate scoring on a cached sample with exact top-k
    #: recomputation.
    early_pruning: bool = True

    #: async — order actions cheapest-first using the cost model (and stream
    #: remaining ones in the background when ``streaming`` is set).
    cost_based_scheduling: bool = True

    #: Run laggard actions on a background thread (time-to-first-action
    #: optimisation); synchronous when False so results are deterministic.
    streaming: bool = False

    #: Worker count of the process-wide shared pool (``repro.core.pool``)
    #: that both streams laggard actions and fans out batch execution.
    #: Defaults to the host's core count so a recommendation pass can use
    #: all available hardware; resizes apply on the next submission.
    action_pool_workers: int = field(
        default_factory=lambda: max(2, os.cpu_count() or 1)
    )

    #: Shared-scan computation cache: memoize filter masks, group-key
    #: factorizations, float conversions, and histogram bin edges per
    #: (frame, ``_data_version``) so one recommendation pass performs each
    #: relational primitive once.  Disable for honest ablations
    #: (``benchmarks/bench_shared_scan.py`` measures both conditions).
    computation_cache: bool = True

    #: Byte budget for the computation cache, in mebibytes; 0 disables the
    #: bound.  Accounting is exact (``ndarray.nbytes`` per cached vector,
    #: i.e. rows x dtype width per entry), so on 10M-row frames the cache
    #: degrades to fewer memoized scans instead of pinning gigabytes.
    computation_cache_budget_mb: int = 64

    #: Register a computation-cache link for every filtered / sampled /
    #: sliced LuxDataFrame child, so its floats and filter masks derive
    #: from the parent's cached vectors (warm start) and survive
    #: column-scoped parent mutations via link migration.  Off, children
    #: cold-start and only the explicit ranking-sample link is kept.
    derived_cache_links: bool = True

    #: Fan ``DataFrameExecutor.execute_many`` out across the shared pool.
    #: Each filter group's subframe materializes once; specs then execute
    #: concurrently against the per-slot-locked computation cache.  The
    #: serial batch path is used when off, when the batch has a single
    #: spec, or from inside a pool worker (deadlock rule).
    parallel_execute: bool = True

    #: Frames smaller than this execute batches serially: thread fan-out
    #: overhead outweighs scan sharing on tiny frames.
    parallel_min_rows: int = 2_000

    #: Consolidate ``SQLExecutor.execute_many`` batches into one shared-WHERE
    #: CTE + UNION ALL statement per filter group (one scan per GROUP BY
    #: shape instead of one round-trip query per candidate).  Off, the batch
    #: still reuses a single connection but issues per-spec statements —
    #: the ablation condition ``benchmarks/bench_sql_scan.py`` measures.
    sql_batch_execute: bool = True

    #: Rows above which approximate scoring kicks in (paper samples when the
    #: dataframe exceeds the cache size).
    sampling_start: int = 10_000

    #: Cached-sample cap in rows (paper: 30k justified by Fig. 12 right).
    sampling_cap: int = 30_000

    #: Master switch for sampling (the RQ3 experiment sweeps this).
    sampling: bool = True

    #: Default bin count for histograms.
    default_bin_size: int = 10

    #: Nominal axes with more distinct values than this are deemed
    #: ineffective encodings and filtered by the compiler's Lookup stage.
    max_cardinality_for_axis: int = 50

    #: Color channels with more groups than this are dropped.
    max_cardinality_for_color: int = 20

    #: Scatterplots subsample their display data beyond this many points.
    max_scatter_points: int = 10_000

    #: "pandas" | "lux" — which view prints by default.
    default_display: str = "pandas"

    #: Executor backend: "dataframe" (in-process columnar engine) or "sql"
    #: (sqlite3).
    executor: str = "dataframe"

    #: When False, the always-on hook in ``__repr__`` is disabled entirely
    #: (the *pandas* benchmark condition).
    always_on: bool = True

    #: Seed for all sampling decisions, for reproducible experiments.
    random_seed: int = 0

    # ------------------------------------------------------------------
    # Service knobs (repro.service)
    # ------------------------------------------------------------------
    #: Byte budget (MiB) for the service's versioned result store; 0
    #: disables the bound.  Entries are serialized vega-lite payloads, so
    #: accounting is exact JSON bytes.
    service_store_budget_mb: int = 32

    #: Seconds the precompute engine waits after a mutation before
    #: scheduling a background pass, coalescing bursts of edits (a cell
    #: loop mutating row-by-row triggers one pass, not thousands).
    precompute_debounce_s: float = 0.05

    #: Master switch for background precomputation; off, the service
    #: computes recommendations only on demand (foreground).
    precompute: bool = True

    #: Bearer token required by the HTTP API on every route except
    #: ``/healthz``; empty disables authentication (local notebooks).
    service_auth_token: str = ""

    #: Backpressure bound on the precompute backlog (armed debounce timers
    #: plus queued/in-flight background passes, across all sessions).  At
    #: the limit the engine sheds superseded work first, defers what it
    #: cannot shed, and the HTTP API rejects further mutation-facing
    #: writes with 429 + ``Retry-After`` instead of queueing unboundedly.
    #: 0 disables the bound.
    precompute_queue_limit: int = 128

    #: Incremental recomputation: partition each background pass into the
    #: actions whose input footprint intersects the accumulated mutation
    #: delta (rerun) and the rest (carried forward from the previous
    #: stored pass, provenance ``carried``).  Off, every version bump
    #: reruns the full action set — the ablation condition
    #: ``benchmarks/bench_incremental.py`` measures.
    incremental_precompute: bool = True

    #: Worker-process count of the sharded service tier (sessions are
    #: routed by a consistent hash of the session id; one SessionManager
    #: + PrecomputeEngine per worker).  0 keeps the service single-process
    #: (no supervisor, the PR-4 architecture).
    service_shards: int = 0

    #: Directory for per-session snapshots (frame columns + intent +
    #: history + stored results), enabling warm recovery after a restart.
    #: Empty disables persistence.
    service_snapshot_dir: str = ""

    #: Minimum seconds between snapshot writes per session; a completed
    #: background pass inside the window skips its save (the next one
    #: outside the window, or a shutdown flush, persists it).  0.0 saves
    #: on every published pass.
    service_snapshot_interval_s: float = 0.0

    #: Per-request timeout on supervisor -> worker RPCs; a worker that
    #: does not answer inside the window is reported unreachable (HTTP
    #: 503) instead of hanging the router thread.  ``/healthz`` probes
    #: use the tighter ``min(2.0, this)`` so aggregation never blocks on
    #: a dead worker.
    service_rpc_timeout_s: float = 30.0

    # ------------------------------------------------------------------
    # Telemetry knobs (repro.core.telemetry)
    # ------------------------------------------------------------------
    #: Fraction of traces whose spans are recorded (decided once per
    #: trace from a deterministic hash of the trace id, so every process
    #: in a sharded tier samples the same traces).  Metrics are always
    #: recorded; this gates only span capture.
    telemetry_sample_rate: float = 1.0

    #: Capacity of the per-process span ring buffer (most recent spans
    #: win).  Applied when the ring is first created in a process or
    #: after ``telemetry.reset()``.
    telemetry_span_buffer: int = 512

    #: Number of finite latency-histogram buckets.  Bounds are powers of
    #: two starting at 0.5 ms, derived only from this knob, so every
    #: worker uses identical edges and cross-process merge is exact
    #: bucket-wise addition.
    telemetry_histogram_buckets: int = 20

    def __getattribute__(self, name: str) -> Any:
        # Thread-local overlays shadow instance attributes.  The guard
        # order keeps the common case (no overlay anywhere) at one
        # getattr + None test; method lookups fall through because
        # overlay layers only ever hold field names.
        if not name.startswith("_"):
            stack = getattr(_OVERLAYS, "stack", None)
            if stack:
                for layer in reversed(stack):
                    if name in layer:
                        return layer[name]
        return object.__getattribute__(self, name)

    def apply_condition(self, condition: str) -> None:
        """Set the flag combination for a named benchmark condition.

        Conditions follow §9.1: ``no-opt``, ``wflow``, ``wflow+prune``,
        ``all-opt``, ``pandas``.
        """
        presets: dict[str, dict[str, bool]] = {
            "no-opt": dict(
                always_on=True,
                lazy_maintain=False,
                early_pruning=False,
                cost_based_scheduling=False,
                streaming=False,
            ),
            "wflow": dict(
                always_on=True,
                lazy_maintain=True,
                early_pruning=False,
                cost_based_scheduling=False,
                streaming=False,
            ),
            "wflow+prune": dict(
                always_on=True,
                lazy_maintain=True,
                early_pruning=True,
                cost_based_scheduling=False,
                streaming=False,
            ),
            # async: cheapest action computed inline, laggards streamed from
            # a background pool — print returns control early (§8.2).
            "all-opt": dict(
                always_on=True,
                lazy_maintain=True,
                early_pruning=True,
                cost_based_scheduling=True,
                streaming=True,
            ),
            "pandas": dict(
                always_on=False,
                lazy_maintain=True,
                early_pruning=False,
                cost_based_scheduling=False,
                streaming=False,
            ),
        }
        try:
            values = presets[condition]
        except KeyError:
            raise ValueError(
                f"unknown condition {condition!r}; expected one of {sorted(presets)}"
            ) from None
        for key, value in values.items():
            setattr(self, key, value)

    def snapshot(self) -> dict[str, Any]:
        """Copy of the *base* settings (overlays excluded; save/restore)."""
        return dict(self.__dict__)

    def restore(self, snapshot: dict[str, Any]) -> None:
        for key, value in snapshot.items():
            setattr(self, key, value)

    def effective(self) -> dict[str, Any]:
        """All settings as this thread sees them (base + overlay layers)."""
        merged = dict(self.__dict__)
        for layer in _overlay_stack():
            merged.update(layer)
        return merged

    def validate_overrides(self, overrides: Mapping[str, Any]) -> dict[str, Any]:
        """Check override names against the known fields; returns a copy."""
        unknown = [k for k in overrides if k not in self.__dict__]
        if unknown:
            raise ValueError(
                f"unknown config field(s) {sorted(unknown)}; "
                f"valid fields: {sorted(self.__dict__)}"
            )
        return dict(overrides)


#: The process-wide configuration singleton.
config = Config()


def current_overlay() -> dict[str, Any]:
    """This thread's overlay layers merged into one dict ({} when none).

    The worker pool captures this at submission and re-applies it on the
    worker (:func:`thread_overlay`), so fan-out work inherits the
    submitting session's effective config.
    """
    merged: dict[str, Any] = {}
    for layer in _overlay_stack():
        merged.update(layer)
    return merged


@contextmanager
def thread_overlay(overrides: Mapping[str, Any]) -> Iterator[None]:
    """Push a raw overlay layer on this thread only; no global snapshot.

    This is the propagation primitive (pool workers, service passes):
    unlike :func:`config_overlay` it never reads or writes the singleton's
    base state, so it is safe on any thread at any time.
    """
    stack = _overlay_stack()
    stack.append(dict(overrides))
    try:
        yield
    finally:
        stack.pop()


@contextmanager
def config_overlay(**overrides: Any) -> Iterator[Config]:
    """Scoped config: overlay ``overrides`` and restore base state on exit.

    The one sanctioned way to run code under modified settings — replaces
    every hand-rolled ``snapshot()``/``restore()`` pair:

    - ``overrides`` are validated field names, visible only to this thread
      (and to pool work it submits) for the duration of the block;
    - direct ``config.field = ...`` mutations *inside* the block hit the
      shared base state as before, but are rolled back on exit, so tests
      and benchmarks cannot leak settings;
    - blocks nest; inner layers win.

    Mutating the base config concurrently from another thread while a
    block is active is unsupported (same contract the old save/restore
    idiom had, now stated).
    """
    base = config.snapshot()
    with thread_overlay(config.validate_overrides(overrides)):
        try:
            yield config
        finally:
            config.restore(base)
